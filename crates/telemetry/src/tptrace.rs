//! Re-exports a recorded timeline in the repo's own `*.tptrace` text
//! format (see `docs/TRACE_FORMATS.md`), closing the loop: a simulation's
//! telemetry can be fed back through `trace::ingest` and re-simulated.
//!
//! The export reconstructs the schedule from [`SimEvent::TaskFinished`]
//! events: each finished task becomes a `B:`/`E:` pair on its worker's
//! thread, ordered by simulated tick (ends before begins on ties, so
//! back-to-back tasks on one worker stay well-formed). The format has no
//! timestamps, but the event *order* is the timeline. Instruction bodies
//! are summarized — `I:` lines are emitted as a bounded placeholder body
//! (the ingest validator rejects empty tasks), with true instruction
//! counts preserved in a comment per task.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::SimEvent;
use crate::report::TelemetryReport;

/// Placeholder instruction lines emitted per task, capped so exports of
/// long runs stay small: `min(instructions, CAP).max(1)`.
const INST_LINE_CAP: u64 = 16;

/// Why a report could not be rendered as a tptrace timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimelineError {
    /// The report holds no finished-task events — there is no schedule to
    /// export (e.g. telemetry was disabled, or only counters were
    /// recorded).
    NoTasks,
}

impl std::fmt::Display for TimelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimelineError::NoTasks => {
                write!(f, "telemetry report contains no finished tasks to export")
            }
        }
    }
}

impl std::error::Error for TimelineError {}

/// Renders the finished-task schedule in `report` as a `*.tptrace` text
/// document parseable by the repo's own ingest pipeline.
///
/// # Errors
///
/// [`TimelineError::NoTasks`] if the report holds no
/// [`SimEvent::TaskFinished`] events.
pub fn tptrace_timeline(report: &TelemetryReport) -> Result<String, TimelineError> {
    struct Task {
        start: u64,
        end: u64,
        worker: u32,
        task: u64,
        type_id: u32,
        detailed: bool,
        instructions: u64,
    }

    let mut tasks: Vec<Task> = report
        .events
        .iter()
        .filter_map(|e| match e {
            SimEvent::TaskFinished {
                start,
                end,
                worker,
                task,
                type_id,
                detailed,
                instructions,
                ..
            } => Some(Task {
                start: *start,
                end: *end,
                worker: *worker,
                task: *task,
                type_id: *type_id,
                detailed: *detailed,
                instructions: *instructions,
            }),
            _ => None,
        })
        .collect();
    if tasks.is_empty() {
        return Err(TimelineError::NoTasks);
    }

    // Declare only the types the exported tasks actually use (the ingest
    // validator rejects unused declarations), with recorded names where a
    // TypeDecl was seen.
    let decl_names: BTreeMap<u32, &str> = report
        .events
        .iter()
        .filter_map(|e| match e {
            SimEvent::TypeDecl { id, name } => Some((*id, name.as_str())),
            _ => None,
        })
        .collect();
    let mut used: BTreeMap<u32, String> = BTreeMap::new();
    for t in &tasks {
        used.entry(t.type_id).or_insert_with(|| {
            decl_names
                .get(&t.type_id)
                .map(|n| sanitize_name(n))
                .filter(|n| !n.is_empty())
                .unwrap_or_else(|| format!("type{}", t.type_id))
        });
    }

    // A thread may hold only one open task, so per-worker spans must not
    // overlap in the edge ordering. The engine guarantees that for real
    // ticks, but zero-length bursts (end == start) would put a task's end
    // at its own begin tick; nudge such spans forward monotonically per
    // worker (order-preserving, ordering keys only — the exported format
    // carries no timestamps).
    tasks.sort_by_key(|t| (t.start, t.end, t.worker, t.task));
    let mut floor: BTreeMap<u32, u64> = BTreeMap::new();
    for t in &mut tasks {
        let at = floor.entry(t.worker).or_insert(0);
        t.start = t.start.max(*at);
        t.end = t.end.max(t.start + 1);
        *at = t.end;
    }

    // Interleave begins and ends by tick; on a tie, ends come first so a
    // worker's next task can begin on the tick its predecessor ended.
    #[derive(PartialEq, Eq, PartialOrd, Ord)]
    enum Edge {
        End,
        Begin,
    }
    let mut edges: Vec<(u64, Edge, usize)> = Vec::with_capacity(tasks.len() * 2);
    for (i, t) in tasks.iter().enumerate() {
        edges.push((t.start, Edge::Begin, i));
        edges.push((t.end, Edge::End, i));
    }
    edges.sort_by(|a, b| (a.0, &a.1, a.2).cmp(&(b.0, &b.1, b.2)));

    let mut out = String::new();
    out.push_str("%tptrace 1\n");
    out.push_str("# exported from telemetry: event order is the simulated schedule\n");
    for (id, name) in &used {
        let _ = writeln!(out, "T:{id}:{name}");
    }
    for (tick, edge, i) in edges {
        let t = &tasks[i];
        match edge {
            Edge::Begin => {
                let _ = writeln!(
                    out,
                    "# tick={} mode={} instr={}",
                    tick,
                    crate::event::mode_tag(t.detailed),
                    t.instructions
                );
                let _ = writeln!(out, "B:{}:{}:{}", t.worker, t.task, t.type_id);
                for _ in 0..t.instructions.clamp(1, INST_LINE_CAP) {
                    let _ = writeln!(out, "I:{}:int_alu", t.worker);
                }
            }
            Edge::End => {
                let _ = writeln!(out, "E:{}:{}", t.worker, t.task);
            }
        }
    }
    Ok(out)
}

/// Makes a recorded type name safe for the colon-separated text grammar.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| if c == ':' || c == '#' || c.is_whitespace() || c.is_control() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finish(start: u64, end: u64, worker: u32, task: u64, type_id: u32) -> SimEvent {
        SimEvent::TaskFinished {
            start,
            end,
            worker,
            task,
            type_id,
            detailed: true,
            instructions: 3,
            concurrency: 1,
        }
    }

    #[test]
    fn empty_report_is_an_error() {
        assert_eq!(tptrace_timeline(&TelemetryReport::default()), Err(TimelineError::NoTasks));
    }

    #[test]
    fn back_to_back_tasks_close_before_opening() {
        let report = TelemetryReport {
            events: vec![
                SimEvent::TypeDecl { id: 0, name: "gemm".into() },
                finish(0, 10, 0, 0, 0),
                finish(10, 20, 0, 1, 0),
            ],
            ..Default::default()
        };
        let text = tptrace_timeline(&report).unwrap();
        let e0 = text.find("E:0:0").unwrap();
        let b1 = text.find("B:0:1:0").unwrap();
        assert!(e0 < b1, "first task must end before the second begins:\n{text}");
        assert!(text.contains("T:0:gemm"));
    }

    #[test]
    fn only_used_types_are_declared_and_names_sanitized() {
        let report = TelemetryReport {
            events: vec![
                SimEvent::TypeDecl { id: 0, name: "a:b c".into() },
                SimEvent::TypeDecl { id: 9, name: "unused".into() },
                finish(0, 5, 1, 0, 0),
                finish(0, 5, 2, 1, 3),
            ],
            ..Default::default()
        };
        let text = tptrace_timeline(&report).unwrap();
        assert!(text.contains("T:0:a_b_c"));
        assert!(text.contains("T:3:type3"));
        assert!(!text.contains("unused"));
    }
}
