//! The finished artifact of a recording: events, counter snapshot, and
//! profiling spans, with the canonical text form that states the
//! determinism guarantee.

use crate::event::{ProfileSpan, SimEvent};
use crate::histogram::{Histogram, HistogramCell};

/// One counter cell in a [`TelemetryReport`] snapshot.
///
/// Counters are layered: a `name` identifies the quantity (e.g.
/// `"mem.private_hits"`) and `index` selects the layer instance (cache
/// level, core, core group). Scalar counters use index 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    /// Quantity name, dotted by subsystem (`scheduler.pops`,
    /// `mem.dram_accesses`, `group.busy_ticks`, ...).
    pub name: String,
    /// Layer index (cache level, component id, group id; 0 for scalars).
    pub index: u32,
    /// Accumulated value.
    pub value: u64,
}

/// Everything one recording captured.
///
/// `events` preserve emission order (which is deterministic for a
/// deterministic simulation); `counters` are sorted by `(name, index)`;
/// `profile` spans are wall-clock and excluded from the canonical text.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryReport {
    /// Simulation-channel events in emission order.
    pub events: Vec<SimEvent>,
    /// Counter snapshot, sorted by `(name, index)`.
    pub counters: Vec<Counter>,
    /// Histogram cells, sorted by `(name, index)` like `counters`.
    pub histograms: Vec<HistogramCell>,
    /// Wall-clock profiling spans (non-deterministic channel).
    pub profile: Vec<ProfileSpan>,
}

impl TelemetryReport {
    /// Looks up a counter value by name and layer index.
    pub fn counter(&self, name: &str, index: u32) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name && c.index == index).map(|c| c.value)
    }

    /// Sums a counter across all layer indices.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|c| c.name == name).map(|c| c.value).sum()
    }

    /// Looks up a histogram cell by name and layer index.
    pub fn histogram(&self, name: &str, index: u32) -> Option<&Histogram> {
        self.histograms.iter().find(|h| h.name == name && h.index == index).map(|h| &h.histogram)
    }

    /// The canonical text form of the deterministic channels: one line per
    /// event in emission order, then one `counter name[index]=value` line
    /// per counter in sorted order, then one `hist name[index] ...` line
    /// per histogram cell in sorted order. Two runs of the same
    /// deterministic simulation produce byte-identical canonical text;
    /// profiling spans are deliberately excluded.
    pub fn canonical_text(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.write_canonical(&mut out);
            out.push('\n');
        }
        for c in &self.counters {
            out.push_str(&format!("counter {}[{}]={}\n", c.name, c.index, c.value));
        }
        for h in &self.histograms {
            h.histogram.write_canonical(&h.name, h.index, &mut out);
            out.push('\n');
        }
        out
    }

    /// Renders the counters and histograms in the Prometheus text
    /// exposition format. See
    /// [`text_exposition`](crate::prometheus::text_exposition).
    pub fn text_exposition(&self) -> String {
        crate::prometheus::text_exposition(self)
    }

    /// FNV-1a 64-bit checksum of [`canonical_text`](Self::canonical_text)
    /// — a compact fingerprint for determinism assertions.
    pub fn fnv64(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical_text().as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Renders the report as Chrome trace-event JSON. See
    /// [`chrome_trace_json`](crate::chrome::chrome_trace_json).
    pub fn chrome_trace_json(&self) -> String {
        crate::chrome::chrome_trace_json(self)
    }

    /// Renders the finished-task timeline in the `*.tptrace` text format.
    /// See [`tptrace_timeline`](crate::tptrace::tptrace_timeline).
    pub fn tptrace_timeline(&self) -> Result<String, crate::tptrace::TimelineError> {
        crate::tptrace::tptrace_timeline(self)
    }

    /// Renders a textual Gantt chart `width` columns wide. See
    /// [`render_gantt`](crate::gantt::render_gantt).
    pub fn render_gantt(&self, width: usize) -> String {
        crate::gantt::render_gantt(self, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TelemetryReport {
        TelemetryReport {
            events: vec![
                SimEvent::TypeDecl { id: 0, name: "gemm".into() },
                SimEvent::TaskFinished {
                    start: 0,
                    end: 10,
                    worker: 0,
                    task: 0,
                    type_id: 0,
                    detailed: true,
                    instructions: 20,
                    concurrency: 1,
                },
            ],
            counters: vec![
                Counter { name: "mem.private_hits".into(), index: 0, value: 7 },
                Counter { name: "scheduler.pops".into(), index: 2, value: 3 },
            ],
            histograms: vec![HistogramCell {
                name: "task.latency".into(),
                index: 0,
                histogram: {
                    let mut h = Histogram::new();
                    h.record(10);
                    h
                },
            }],
            profile: vec![ProfileSpan {
                name: "cell.computed".into(),
                key: "abc".into(),
                worker: 0,
                wall_start_us: 1,
                wall_dur_us: 2,
            }],
        }
    }

    #[test]
    fn canonical_text_covers_events_and_counters_not_profile() {
        let text = sample().canonical_text();
        assert!(text.contains("type id=0 name=gemm\n"));
        assert!(text.contains("finish tick=10 start=0"));
        assert!(text.contains("counter mem.private_hits[0]=7\n"));
        assert!(text.contains("counter scheduler.pops[2]=3\n"));
        assert!(text.contains("hist task.latency[0] count=1 sum=10 min=10 max=10 buckets=4:1\n"));
        assert!(!text.contains("cell.computed"));
    }

    #[test]
    fn histogram_lookup_and_checksum_sensitivity() {
        let a = sample();
        assert_eq!(a.histogram("task.latency", 0).map(Histogram::count), Some(1));
        assert!(a.histogram("task.latency", 1).is_none());
        // Histogram contents are part of the determinism contract.
        let mut b = sample();
        b.histograms[0].histogram.record(11);
        assert_ne!(a.fnv64(), b.fnv64());
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        let a = sample();
        let mut b = sample();
        assert_eq!(a.fnv64(), b.fnv64());
        // Profiling spans do not affect the checksum...
        b.profile.clear();
        assert_eq!(a.fnv64(), b.fnv64());
        // ...but simulation events do.
        b.events.pop();
        assert_ne!(a.fnv64(), b.fnv64());
    }

    #[test]
    fn counter_lookup() {
        let r = sample();
        assert_eq!(r.counter("scheduler.pops", 2), Some(3));
        assert_eq!(r.counter("scheduler.pops", 0), None);
        assert_eq!(r.counter_total("scheduler.pops"), 3);
    }
}
