//! Mergeable log₂-bucketed histograms for distribution metrics.
//!
//! Scalar counters answer "how much in total"; the cycle-accounting layer
//! also needs "how is it distributed" — task latencies, ready-queue
//! depths, memory latencies. [`Histogram`] is the accumulator for those:
//! a fixed array of power-of-two buckets plus count/sum/min/max, updated
//! with plain adds (no allocation after construction) and mergeable
//! across partial streams exactly like
//! [`StreamingMoments`](https://docs.rs) merges moments — merging shards
//! yields the same histogram as accumulating the whole stream, which is
//! what keeps the telemetry determinism contract intact at any worker or
//! detail-thread count.
//!
//! Bucket `0` holds the value `0`; bucket `b ≥ 1` holds values in
//! `[2^(b-1), 2^b - 1]`. With `u64` samples that is 65 buckets total —
//! small enough to live inline in per-resource structs on the hot path.

/// Number of buckets: one for zero plus one per binary magnitude.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A mergeable log₂-bucketed histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// The bucket index a value falls into: `0` for the value zero,
    /// `floor(log2(v)) + 1` otherwise, so bucket `b ≥ 1` spans
    /// `[2^(b-1), 2^b - 1]`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Inclusive `(low, high)` value bounds of bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        assert!(index < HISTOGRAM_BUCKETS, "bucket index out of range");
        if index == 0 {
            (0, 0)
        } else {
            let low = 1u64 << (index - 1);
            let high = if index == 64 { u64::MAX } else { (1u64 << index) - 1 };
            (low, high)
        }
    }

    /// Records one sample — a handful of integer operations, no
    /// allocation, suitable for always-on hot-path accounting.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another histogram into this one. Associative and
    /// commutative; merging partial streams equals accumulating the whole
    /// stream (pinned by `tests/histogram_properties.rs`).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all samples (wrapping on overflow).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean of the samples; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Count in bucket `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= HISTOGRAM_BUCKETS`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Iterates the non-empty buckets as `(index, count)` in ascending
    /// index (= ascending value) order.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate().filter(|&(_, c)| c > 0)
    }

    /// The `n` most-populated buckets as `(index, count)`, ordered by
    /// descending count (ties broken by ascending index). Used by the
    /// textual timeline report.
    pub fn top_buckets(&self, n: usize) -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = self.nonzero_buckets().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// upper bound of the first bucket whose cumulative count reaches
    /// `q · count`, clamped to the observed maximum. `None` when empty.
    pub fn approx_quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= target {
                return Some(Self::bucket_bounds(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Appends the canonical one-line text form of this histogram under
    /// the cell name `name[index]` (no trailing newline). The format is
    /// stable: count, sum, min, max, then the non-empty buckets as
    /// `bucket_index:count` pairs in ascending order.
    pub fn write_canonical(&self, name: &str, index: u32, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(out, "hist {name}[{index}] count={} sum={}", self.count, self.sum);
        if self.count > 0 {
            let _ = write!(out, " min={} max={}", self.min, self.max);
        }
        out.push_str(" buckets=");
        let mut first = true;
        for (i, c) in self.nonzero_buckets() {
            if !first {
                out.push(',');
            }
            let _ = write!(out, "{i}:{c}");
            first = false;
        }
    }
}

/// One named histogram cell in a
/// [`TelemetryReport`](crate::TelemetryReport) — the distribution analog
/// of [`Counter`](crate::Counter), layered the same way by `(name,
/// index)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCell {
    /// Quantity name, dotted by subsystem (`task.latency`,
    /// `sched.ready_depth`, `mem.access_latency`).
    pub name: String,
    /// Layer index (core group, level; 0 for scalars).
    pub index: u32,
    /// The accumulated distribution.
    pub histogram: Histogram,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_shifted() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_bounds_partition_the_domain() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 0));
        assert_eq!(Histogram::bucket_bounds(1), (1, 1));
        assert_eq!(Histogram::bucket_bounds(2), (2, 3));
        assert_eq!(Histogram::bucket_bounds(64).1, u64::MAX);
        for i in 1..HISTOGRAM_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i);
            assert_eq!(Histogram::bucket_index(hi), i);
            if i > 1 {
                assert_eq!(lo, Histogram::bucket_bounds(i - 1).1 + 1);
            }
        }
    }

    #[test]
    fn record_tracks_summary_stats() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        for v in [5, 0, 17, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 27);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(17));
        assert!((h.mean() - 6.75).abs() < 1e-12);
        assert_eq!(h.bucket_count(0), 1);
        assert_eq!(h.bucket_count(3), 2, "two fives in [4,7]");
        assert_eq!(h.bucket_count(5), 1, "17 in [16,31]");
    }

    #[test]
    fn merge_equals_whole_stream() {
        let data: Vec<u64> = (0..200).map(|i| i * i % 977).collect();
        let mut whole = Histogram::new();
        for &v in &data {
            whole.record(v);
        }
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for &v in &data[..71] {
            left.record(v);
        }
        for &v in &data[71..] {
            right.record(v);
        }
        left.merge(&right);
        assert_eq!(left, whole);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let before = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, before);
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantiles_walk_the_buckets() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.approx_quantile(0.0), Some(1));
        // The true p50 is 50; its bucket [32,63] upper bound is 63.
        assert_eq!(h.approx_quantile(0.5), Some(63));
        assert_eq!(h.approx_quantile(1.0), Some(100), "clamped to the observed max");
        assert_eq!(Histogram::new().approx_quantile(0.5), None);
    }

    #[test]
    fn top_buckets_order_by_count() {
        let mut h = Histogram::new();
        for _ in 0..5 {
            h.record(10); // bucket 4
        }
        for _ in 0..3 {
            h.record(100); // bucket 7
        }
        h.record(1000); // bucket 10
        assert_eq!(h.top_buckets(2), vec![(4, 5), (7, 3)]);
        assert_eq!(h.top_buckets(10).len(), 3);
    }

    #[test]
    fn canonical_text_lists_nonzero_buckets() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(6);
        h.record(6);
        let mut out = String::new();
        h.write_canonical("task.latency", 2, &mut out);
        assert_eq!(out, "hist task.latency[2] count=3 sum=12 min=0 max=6 buckets=0:1,3:2");
        let mut empty = String::new();
        Histogram::new().write_canonical("x", 0, &mut empty);
        assert_eq!(empty, "hist x[0] count=0 sum=0 buckets=");
    }
}
