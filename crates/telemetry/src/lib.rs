//! # taskpoint-telemetry — simulation timelines and layered counters
//!
//! Observability substrate for the TaskPoint reproduction. The design has
//! three hard requirements, in priority order:
//!
//! 1. **Zero overhead when disabled.** Instrumented code is generic over
//!    [`Sink`]; the default [`NopSink`] has empty `#[inline(always)]`
//!    bodies, so a monomorphized hot path with telemetry off compiles to
//!    exactly the uninstrumented code. The simulator's golden
//!    bit-identity tests (`tests/block_equivalence.rs`) run through this
//!    path and gate it.
//! 2. **Deterministic when enabled.** Every event on the simulation
//!    channel is timestamped in **simulated ticks**, never wall clock, so
//!    two runs of a deterministic simulation produce byte-identical
//!    telemetry streams ([`TelemetryReport::canonical_text`] /
//!    [`TelemetryReport::fnv64`]). Host wall-clock measurements are
//!    confined to the separate profiling channel ([`ProfileSpan`]).
//! 3. **Exportable.** A finished [`TelemetryReport`] renders as a Chrome
//!    trace-event JSON (`chrome://tracing` / Perfetto), as a `*.tptrace`
//!    text timeline the repro's own ingest pipeline parses back, and as a
//!    textual Gantt chart for terminals.
//!
//! # Quickstart
//!
//! ```
//! use taskpoint_telemetry::{SimEvent, Sink, Telemetry};
//!
//! let telemetry = Telemetry::recording();
//! telemetry.event(SimEvent::TypeDecl { id: 0, name: "gemm".into() });
//! telemetry.event(SimEvent::TaskFinished {
//!     start: 0,
//!     end: 500,
//!     worker: 0,
//!     task: 0,
//!     type_id: 0,
//!     detailed: true,
//!     instructions: 1000,
//!     concurrency: 1,
//! });
//! telemetry.counter("scheduler.pops", 0, 3);
//! let report = telemetry.take_report().unwrap();
//! assert_eq!(report.events.len(), 2);
//! assert!(report.chrome_trace_json().contains("\"ph\":\"X\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod gantt;
pub mod histogram;
pub mod prometheus;
pub mod report;
pub mod sink;
pub mod tptrace;

pub use chrome::chrome_trace_json;
pub use event::{FidelityAction, ProfileSpan, SimEvent};
pub use gantt::render_gantt;
pub use histogram::{Histogram, HistogramCell, HISTOGRAM_BUCKETS};
pub use prometheus::text_exposition;
pub use report::{Counter, TelemetryReport};
pub use sink::{NopSink, Sink, Telemetry};
pub use tptrace::{tptrace_timeline, TimelineError};
