//! The event taxonomy: what the instrumented stack can say.
//!
//! Simulation-channel events ([`SimEvent`]) carry **simulated-tick**
//! timestamps only — they are part of the deterministic record of a run.
//! Wall-clock observations live in [`ProfileSpan`]s on the separate
//! profiling channel and never mix into the simulation stream.

use std::fmt::Write as _;

/// One event on the (deterministic, tick-stamped) simulation channel.
#[derive(Debug, Clone, PartialEq)]
pub enum SimEvent {
    /// Declares a task type at run start (engine-emitted, one per program
    /// type), so exporters can label timeline slices by source name.
    TypeDecl {
        /// The type id instances reference.
        id: u32,
        /// The source-level name (e.g. `"gemm"`).
        name: String,
    },
    /// The runtime scheduler handed a ready task instance to an idle
    /// worker, and the mode controller decided its fidelity.
    TaskAssigned {
        /// Simulated tick the task starts at.
        tick: u64,
        /// Worker (core) id executing it.
        worker: u32,
        /// Task instance id.
        task: u64,
        /// Task type id (or virtual cluster unit under clustering).
        type_id: u32,
        /// `true` for the detailed cycle-level model, `false` for a
        /// fast-forward burst.
        detailed: bool,
    },
    /// A task instance completed.
    TaskFinished {
        /// Simulated start tick.
        start: u64,
        /// Simulated end tick (the event's timestamp).
        end: u64,
        /// Worker (core) id that executed it.
        worker: u32,
        /// Task instance id.
        task: u64,
        /// Task type id.
        type_id: u32,
        /// Whether it ran through the detailed model.
        detailed: bool,
        /// Instructions executed (detailed) or fast-forwarded (burst).
        instructions: u64,
        /// Concurrently running tasks at its start, including itself.
        concurrency: u32,
    },
    /// Ready-queue depth after an assignment round.
    QueueDepth {
        /// Simulated tick of the observation.
        tick: u64,
        /// Tasks ready but unassigned.
        ready: u64,
        /// Tasks currently running.
        running: u32,
    },
    /// A fidelity decision by the adaptive accuracy controller.
    Fidelity {
        /// Simulated tick of the decision.
        tick: u64,
        /// The sampling unit (type id, or virtual cluster id).
        unit: u32,
        /// What happened.
        action: FidelityAction,
        /// Valid samples the unit held at decision time.
        samples: u64,
        /// Relative CI half-width of the unit's mean IPC at decision time
        /// (`None` while undefined, i.e. fewer than two valid samples).
        rel_ci: Option<f64>,
    },
}

/// The kinds of fidelity decision the adaptive controller reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FidelityAction {
    /// A sampling unit was observed for the first time (opens detailed).
    ClusterOpened,
    /// A valid detailed sample was recorded for an unconverged unit.
    Sampled,
    /// The unit met the CI stopping rule and switched to fast-forward.
    Converged,
    /// The rare-cluster cutoff force-converged the unit on whatever
    /// estimate it had.
    RareConverged,
    /// A converged unit was re-opened because the live concurrency
    /// shifted into a band whose interval misses the target (`samples`
    /// and `rel_ci` describe the triggering band's moments).
    ClusterReopened,
    /// The stratified Neyman allocation assigned the unit its share of
    /// extra detailed samples (`samples` is the allocation).
    Allocated,
}

impl FidelityAction {
    /// Stable lowercase tag used in canonical text and exports.
    pub fn tag(self) -> &'static str {
        match self {
            FidelityAction::ClusterOpened => "opened",
            FidelityAction::Sampled => "sampled",
            FidelityAction::Converged => "converged",
            FidelityAction::RareConverged => "rare-converged",
            FidelityAction::ClusterReopened => "reopened",
            FidelityAction::Allocated => "allocated",
        }
    }
}

impl SimEvent {
    /// The event's simulated-tick timestamp (`0` for run-start
    /// declarations).
    pub fn tick(&self) -> u64 {
        match self {
            SimEvent::TypeDecl { .. } => 0,
            SimEvent::TaskAssigned { tick, .. }
            | SimEvent::QueueDepth { tick, .. }
            | SimEvent::Fidelity { tick, .. } => *tick,
            SimEvent::TaskFinished { end, .. } => *end,
        }
    }

    /// Appends the canonical one-line text form (no trailing newline).
    ///
    /// The format is stable and fully determined by the event fields;
    /// [`TelemetryReport::canonical_text`](crate::TelemetryReport::canonical_text)
    /// concatenates these lines to state the byte-identity guarantee.
    pub fn write_canonical(&self, out: &mut String) {
        match self {
            SimEvent::TypeDecl { id, name } => {
                let _ = write!(out, "type id={id} name={name}");
            }
            SimEvent::TaskAssigned { tick, worker, task, type_id, detailed } => {
                let _ = write!(
                    out,
                    "assign tick={tick} worker={worker} task={task} type={type_id} mode={}",
                    mode_tag(*detailed)
                );
            }
            SimEvent::TaskFinished {
                start,
                end,
                worker,
                task,
                type_id,
                detailed,
                instructions,
                concurrency,
            } => {
                let _ = write!(
                    out,
                    "finish tick={end} start={start} worker={worker} task={task} type={type_id} \
                     mode={} instr={instructions} conc={concurrency}",
                    mode_tag(*detailed)
                );
            }
            SimEvent::QueueDepth { tick, ready, running } => {
                let _ = write!(out, "queue tick={tick} ready={ready} running={running}");
            }
            SimEvent::Fidelity { tick, unit, action, samples, rel_ci } => {
                let _ = write!(
                    out,
                    "fidelity tick={tick} unit={unit} action={} samples={samples}",
                    action.tag()
                );
                if let Some(ci) = rel_ci {
                    let _ = write!(out, " rel_ci={ci}");
                }
            }
        }
    }
}

/// The canonical mode tag (`detailed` / `fast`).
pub(crate) fn mode_tag(detailed: bool) -> &'static str {
    if detailed {
        "detailed"
    } else {
        "fast"
    }
}

/// One span on the **profiling channel**: wall-clock observations of host
/// execution (campaign cell lifecycle, export costs). Deliberately kept
/// out of the simulation stream — wall clock is not deterministic, and
/// determinism guarantees are stated over the simulation channel only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpan {
    /// Span kind, e.g. `"cell.computed"`, `"cell.cached"`.
    pub name: String,
    /// Subject key, e.g. a campaign cell hash.
    pub key: String,
    /// Executor worker index that performed the work.
    pub worker: u32,
    /// Microseconds since the profiling epoch (the campaign batch start).
    pub wall_start_us: u64,
    /// Span duration in microseconds (0 for instant markers).
    pub wall_dur_us: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_lines_are_stable() {
        let mut out = String::new();
        SimEvent::TaskAssigned { tick: 5, worker: 1, task: 7, type_id: 2, detailed: true }
            .write_canonical(&mut out);
        assert_eq!(out, "assign tick=5 worker=1 task=7 type=2 mode=detailed");
        out.clear();
        SimEvent::Fidelity {
            tick: 9,
            unit: 3,
            action: FidelityAction::Converged,
            samples: 4,
            rel_ci: Some(0.25),
        }
        .write_canonical(&mut out);
        assert_eq!(out, "fidelity tick=9 unit=3 action=converged samples=4 rel_ci=0.25");
        out.clear();
        SimEvent::Fidelity {
            tick: 12,
            unit: 3,
            action: FidelityAction::ClusterReopened,
            samples: 0,
            rel_ci: None,
        }
        .write_canonical(&mut out);
        assert_eq!(out, "fidelity tick=12 unit=3 action=reopened samples=0");
        out.clear();
        SimEvent::Fidelity {
            tick: 15,
            unit: 0,
            action: FidelityAction::Allocated,
            samples: 24,
            rel_ci: Some(0.1),
        }
        .write_canonical(&mut out);
        assert_eq!(out, "fidelity tick=15 unit=0 action=allocated samples=24 rel_ci=0.1");
    }

    #[test]
    fn ticks_are_reported() {
        assert_eq!(SimEvent::TypeDecl { id: 0, name: "x".into() }.tick(), 0);
        let finish = SimEvent::TaskFinished {
            start: 3,
            end: 11,
            worker: 0,
            task: 0,
            type_id: 0,
            detailed: false,
            instructions: 1,
            concurrency: 1,
        };
        assert_eq!(finish.tick(), 11);
    }
}
