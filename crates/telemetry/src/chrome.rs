//! Chrome trace-event JSON exporter (`chrome://tracing` / Perfetto).
//!
//! Mapping:
//!
//! * [`SimEvent::TaskFinished`] → complete (`"ph":"X"`) events on pid 0,
//!   one tid per worker, `ts`/`dur` in simulated ticks (the viewer's
//!   "microseconds" axis reads as ticks), category `detailed` or `fast`.
//! * [`SimEvent::QueueDepth`] → counter (`"ph":"C"`) samples of
//!   `ready_tasks`.
//! * [`SimEvent::Fidelity`] → instant (`"ph":"i"`) markers on the unit's
//!   own tid row of pid 0.
//! * [`ProfileSpan`]s → complete events on pid 1 (wall-clock process),
//!   one tid per executor worker.
//! * Counters → one `telemetry.counters` metadata instant with all
//!   `name[index]=value` cells in its args.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::event::{mode_tag, ProfileSpan, SimEvent};
use crate::report::TelemetryReport;

/// Renders `report` as a Chrome trace-event JSON document (an object with
/// a `traceEvents` array, loadable by `chrome://tracing` and Perfetto).
pub fn chrome_trace_json(report: &TelemetryReport) -> String {
    let names: HashMap<u32, &str> = report
        .events
        .iter()
        .filter_map(|e| match e {
            SimEvent::TypeDecl { id, name } => Some((*id, name.as_str())),
            _ => None,
        })
        .collect();
    let type_name = |id: u32| -> String {
        names.get(&id).map(|n| (*n).to_string()).unwrap_or_else(|| format!("type{id}"))
    };

    let mut entries: Vec<String> = Vec::new();
    entries.push(
        "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"simulated ticks\"}}"
            .to_string(),
    );
    if !report.profile.is_empty() {
        entries.push(
            "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":{\"name\":\"wall clock\"}}"
                .to_string(),
        );
    }

    for event in &report.events {
        match event {
            SimEvent::TypeDecl { .. } | SimEvent::TaskAssigned { .. } => {}
            SimEvent::TaskFinished {
                start,
                end,
                worker,
                task,
                type_id,
                detailed,
                instructions,
                concurrency,
            } => {
                let dur = end.saturating_sub(*start).max(1);
                let mut e = String::new();
                let _ = write!(
                    e,
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{worker},\"ts\":{start},\"dur\":{dur},\
                     \"name\":{},\"cat\":\"{}\",\"args\":{{\"task\":{task},\
                     \"instructions\":{instructions},\"concurrency\":{concurrency}}}}}",
                    json_string(&type_name(*type_id)),
                    mode_tag(*detailed),
                );
                entries.push(e);
            }
            SimEvent::QueueDepth { tick, ready, running } => {
                entries.push(format!(
                    "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":{tick},\"name\":\"ready_tasks\",\
                     \"args\":{{\"ready\":{ready},\"running\":{running}}}}}"
                ));
            }
            SimEvent::Fidelity { tick, unit, action, samples, rel_ci } => {
                let mut e = String::new();
                let _ = write!(
                    e,
                    "{{\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":{unit},\"ts\":{tick},\
                     \"name\":{},\"args\":{{\"unit\":{unit},\"samples\":{samples}",
                    json_string(&format!("fidelity.{}", action.tag())),
                );
                if let Some(ci) = rel_ci {
                    let _ = write!(e, ",\"rel_ci\":{}", json_f64(*ci));
                }
                e.push_str("}}");
                entries.push(e);
            }
        }
    }

    for span in &report.profile {
        entries.push(profile_entry(span));
    }

    if !report.counters.is_empty() {
        let mut e = String::new();
        e.push_str(
            "{\"ph\":\"i\",\"s\":\"g\",\"pid\":0,\"tid\":0,\"ts\":0,\
             \"name\":\"telemetry.counters\",\"args\":{",
        );
        for (i, c) in report.counters.iter().enumerate() {
            if i > 0 {
                e.push(',');
            }
            let _ = write!(e, "{}:{}", json_string(&format!("{}[{}]", c.name, c.index)), c.value);
        }
        e.push_str("}}");
        entries.push(e);
    }

    // Histogram cells become counter ("ph":"C") tracks summarizing the
    // distribution — count, sum and max render as stacked counter series
    // in the viewer.
    for h in &report.histograms {
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":0,\"name\":{},\
             \"args\":{{\"count\":{},\"sum\":{},\"max\":{}}}}}",
            json_string(&format!("hist.{}[{}]", h.name, h.index)),
            h.histogram.count(),
            h.histogram.sum(),
            h.histogram.max().unwrap_or(0),
        );
        entries.push(e);
    }

    let mut out = String::from("{\"traceEvents\":[\n");
    for (i, e) in entries.iter().enumerate() {
        out.push_str(e);
        if i + 1 < entries.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}\n");
    out
}

fn profile_entry(span: &ProfileSpan) -> String {
    let mut e = String::new();
    let _ = write!(
        e,
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{},\
         \"cat\":\"profile\",\"args\":{{\"key\":{}}}}}",
        span.worker,
        span.wall_start_us,
        span.wall_dur_us.max(1),
        json_string(&span.name),
        json_string(&span.key),
    );
    e
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a valid JSON number (never `NaN`/`inf` literals).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole float prints no decimal point; that is still
        // valid JSON, so pass it through.
        s
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FidelityAction;
    use crate::report::Counter;

    #[test]
    fn exports_tasks_counters_and_instants() {
        let report = TelemetryReport {
            events: vec![
                SimEvent::TypeDecl { id: 1, name: "potrf".into() },
                SimEvent::TaskFinished {
                    start: 2,
                    end: 9,
                    worker: 3,
                    task: 11,
                    type_id: 1,
                    detailed: false,
                    instructions: 40,
                    concurrency: 2,
                },
                SimEvent::QueueDepth { tick: 9, ready: 4, running: 1 },
                SimEvent::Fidelity {
                    tick: 9,
                    unit: 1,
                    action: FidelityAction::Converged,
                    samples: 5,
                    rel_ci: Some(0.04),
                },
            ],
            counters: vec![Counter { name: "scheduler.pops".into(), index: 0, value: 12 }],
            histograms: vec![crate::histogram::HistogramCell {
                name: "task.latency".into(),
                index: 0,
                histogram: {
                    let mut h = crate::histogram::Histogram::new();
                    h.record(7);
                    h.record(9);
                    h
                },
            }],
            profile: vec![],
        };
        let json = chrome_trace_json(&report);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"potrf\""));
        assert!(json.contains("\"cat\":\"fast\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("fidelity.converged"));
        assert!(json.contains("\"scheduler.pops[0]\":12"));
        assert!(json.contains("\"name\":\"hist.task.latency[0]\""));
        assert!(json.contains("\"count\":2,\"sum\":16,\"max\":9"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn zero_duration_tasks_are_visible() {
        let report = TelemetryReport {
            events: vec![SimEvent::TaskFinished {
                start: 5,
                end: 5,
                worker: 0,
                task: 0,
                type_id: 0,
                detailed: true,
                instructions: 0,
                concurrency: 1,
            }],
            counters: vec![],
            histograms: vec![],
            profile: vec![],
        };
        assert!(chrome_trace_json(&report).contains("\"dur\":1"));
    }
}
