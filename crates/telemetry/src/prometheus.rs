//! Prometheus-style text exposition of a [`TelemetryReport`].
//!
//! Renders the counter snapshot and histogram cells in the [OpenMetrics /
//! Prometheus text format]: counters become `# TYPE ... counter` families
//! with an `index` label per layer, histograms become the standard
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` triple. Everything
//! is derived from the deterministic channels only, so for a
//! deterministic simulation the exposition is byte-identical across runs
//! (same contract as [`TelemetryReport::canonical_text`]).
//!
//! Metric names are prefixed `taskpoint_` and sanitized to
//! `[a-zA-Z0-9_]` (dots become underscores), so `mem.private_hits[1]`
//! exports as `taskpoint_mem_private_hits{index="1"}`.
//!
//! [OpenMetrics / Prometheus text format]:
//! https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::histogram::Histogram;
use crate::report::TelemetryReport;

/// Renders `report`'s counters and histograms in the Prometheus text
/// exposition format. Ends with a trailing newline; empty reports render
/// to an empty string.
pub fn text_exposition(report: &TelemetryReport) -> String {
    let mut out = String::new();
    // Counters are already sorted by (name, index); group consecutive
    // cells of the same name into one metric family.
    let mut last_family: Option<&str> = None;
    for c in &report.counters {
        if last_family != Some(c.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} counter", metric_name(&c.name));
            last_family = Some(c.name.as_str());
        }
        let _ = writeln!(out, "{}{{index=\"{}\"}} {}", metric_name(&c.name), c.index, c.value);
    }
    let mut last_family: Option<&str> = None;
    for cell in &report.histograms {
        if last_family != Some(cell.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} histogram", metric_name(&cell.name));
            last_family = Some(cell.name.as_str());
        }
        write_histogram(&mut out, &cell.name, cell.index, &cell.histogram);
    }
    out
}

fn write_histogram(out: &mut String, name: &str, index: u32, h: &Histogram) {
    let name = metric_name(name);
    let mut cumulative = 0u64;
    for (bucket, count) in h.nonzero_buckets() {
        cumulative += count;
        let le = Histogram::bucket_bounds(bucket).1;
        let _ = writeln!(out, "{name}_bucket{{index=\"{index}\",le=\"{le}\"}} {cumulative}");
    }
    let _ = writeln!(out, "{name}_bucket{{index=\"{index}\",le=\"+Inf\"}} {}", h.count());
    let _ = writeln!(out, "{name}_sum{{index=\"{index}\"}} {}", h.sum());
    let _ = writeln!(out, "{name}_count{{index=\"{index}\"}} {}", h.count());
}

/// Sanitizes a dotted counter name into a Prometheus metric name.
fn metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("taskpoint_");
    for ch in name.chars() {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::HistogramCell;
    use crate::report::Counter;

    #[test]
    fn counters_export_with_index_labels() {
        let report = TelemetryReport {
            counters: vec![
                Counter { name: "mem.private_hits".into(), index: 0, value: 7 },
                Counter { name: "mem.private_hits".into(), index: 1, value: 9 },
                Counter { name: "scheduler.pops".into(), index: 0, value: 3 },
            ],
            ..Default::default()
        };
        let text = text_exposition(&report);
        assert!(text.contains("# TYPE taskpoint_mem_private_hits counter\n"));
        assert!(text.contains("taskpoint_mem_private_hits{index=\"0\"} 7\n"));
        assert!(text.contains("taskpoint_mem_private_hits{index=\"1\"} 9\n"));
        assert!(text.contains("taskpoint_scheduler_pops{index=\"0\"} 3\n"));
        // One TYPE line per family, not per cell.
        assert_eq!(text.matches("# TYPE taskpoint_mem_private_hits").count(), 1);
    }

    #[test]
    fn histograms_export_cumulative_buckets() {
        let mut h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(2);
        h.record(40);
        let report = TelemetryReport {
            histograms: vec![HistogramCell { name: "task.latency".into(), index: 0, histogram: h }],
            ..Default::default()
        };
        let text = text_exposition(&report);
        assert!(text.contains("# TYPE taskpoint_task_latency histogram\n"));
        assert!(text.contains("taskpoint_task_latency_bucket{index=\"0\",le=\"1\"} 1\n"));
        assert!(text.contains("taskpoint_task_latency_bucket{index=\"0\",le=\"3\"} 3\n"));
        assert!(text.contains("taskpoint_task_latency_bucket{index=\"0\",le=\"63\"} 4\n"));
        assert!(text.contains("taskpoint_task_latency_bucket{index=\"0\",le=\"+Inf\"} 4\n"));
        assert!(text.contains("taskpoint_task_latency_sum{index=\"0\"} 45\n"));
        assert!(text.contains("taskpoint_task_latency_count{index=\"0\"} 4\n"));
    }

    #[test]
    fn empty_report_exports_nothing() {
        assert_eq!(text_exposition(&TelemetryReport::default()), "");
    }
}
