//! The sink API: where instrumented code sends events.
//!
//! Instrumentation sites are generic over [`Sink`], so the choice between
//! "no telemetry" and "recording" is made by monomorphization, not by a
//! branch on the hot path:
//!
//! * [`NopSink`] — a zero-sized type whose methods are empty and
//!   `#[inline(always)]`: the compiled artifact of an instrumented
//!   function is identical to its uninstrumented form.
//! * [`Telemetry`] — a cloneable runtime handle. Disabled handles carry no
//!   recorder (emissions are a single `Option` check); recording handles
//!   share an internal recorder behind a mutex, so one handle can be
//!   threaded through an engine, a controller and an exporter and all
//!   emissions land in one ordered stream.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::{ProfileSpan, SimEvent};
use crate::histogram::{Histogram, HistogramCell};
use crate::report::{Counter, TelemetryReport};

/// Receiver of telemetry emissions.
///
/// Methods take `&self`: recording sinks use interior mutability, and
/// instrumented code stays free of extra `&mut` plumbing.
pub trait Sink {
    /// Whether emissions are observed. Instrumentation sites that must
    /// allocate to build an event (e.g. type names) guard on this; sites
    /// emitting plain-integer events call unconditionally and rely on the
    /// no-op body compiling to nothing.
    fn enabled(&self) -> bool;

    /// Records a simulation-channel event.
    fn event(&self, event: SimEvent);

    /// Adds `delta` to the indexed counter `name[index]` (e.g.
    /// `scheduler.pops[core]`, `mem.private_hits[level]`). Scalar counters
    /// use index 0.
    fn counter(&self, name: &'static str, index: u32, delta: u64);

    /// Records one sample into the distribution `name[index]` (e.g.
    /// `task.latency[group]`, `sched.ready_depth[0]`).
    fn observe(&self, name: &'static str, index: u32, value: u64);

    /// Merges a pre-accumulated histogram into the distribution
    /// `name[index]` — the bulk form of [`observe`](Sink::observe) for
    /// always-on accumulators that are drained at end of run (e.g. the
    /// memory system's access-latency histogram).
    fn observe_hist(&self, name: &'static str, index: u32, hist: &Histogram);

    /// Records a wall-clock span on the profiling channel.
    fn profile(&self, span: ProfileSpan);
}

/// The do-nothing sink: telemetry compiled out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopSink;

impl Sink for NopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn event(&self, _event: SimEvent) {}

    #[inline(always)]
    fn counter(&self, _name: &'static str, _index: u32, _delta: u64) {}

    #[inline(always)]
    fn observe(&self, _name: &'static str, _index: u32, _value: u64) {}

    #[inline(always)]
    fn observe_hist(&self, _name: &'static str, _index: u32, _hist: &Histogram) {}

    #[inline(always)]
    fn profile(&self, _span: ProfileSpan) {}
}

/// What a recording handle accumulates.
#[derive(Debug, Default)]
struct Recorder {
    events: Vec<SimEvent>,
    /// `(name, index) -> value`. A `BTreeMap` so snapshots list counters
    /// in a deterministic order regardless of emission order.
    counters: BTreeMap<(&'static str, u32), u64>,
    /// `(name, index) -> distribution`, ordered like `counters`.
    histograms: BTreeMap<(&'static str, u32), Histogram>,
    profile: Vec<ProfileSpan>,
}

impl Recorder {
    fn report(&mut self) -> TelemetryReport {
        TelemetryReport {
            events: std::mem::take(&mut self.events),
            counters: std::mem::take(&mut self.counters)
                .into_iter()
                .map(|((name, index), value)| Counter { name: name.to_string(), index, value })
                .collect(),
            histograms: std::mem::take(&mut self.histograms)
                .into_iter()
                .map(|((name, index), histogram)| HistogramCell {
                    name: name.to_string(),
                    index,
                    histogram,
                })
                .collect(),
            profile: std::mem::take(&mut self.profile),
        }
    }
}

/// A cloneable telemetry handle: either disabled (no recorder, emissions
/// are a single pointer check) or recording into a shared stream.
///
/// `Default` is [`Telemetry::disabled`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Telemetry {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A fresh recording handle. Clones share the same stream.
    pub fn recording() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(Recorder::default()))) }
    }

    /// Whether this handle records.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Takes the recorded report out of the handle, leaving it empty (and
    /// still recording). `None` for disabled handles.
    pub fn take_report(&self) -> Option<TelemetryReport> {
        self.inner.as_ref().map(|r| r.lock().expect("telemetry recorder poisoned").report())
    }
}

impl Sink for Telemetry {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn event(&self, event: SimEvent) {
        if let Some(r) = &self.inner {
            r.lock().expect("telemetry recorder poisoned").events.push(event);
        }
    }

    fn counter(&self, name: &'static str, index: u32, delta: u64) {
        if let Some(r) = &self.inner {
            *r.lock()
                .expect("telemetry recorder poisoned")
                .counters
                .entry((name, index))
                .or_insert(0) += delta;
        }
    }

    fn observe(&self, name: &'static str, index: u32, value: u64) {
        if let Some(r) = &self.inner {
            r.lock()
                .expect("telemetry recorder poisoned")
                .histograms
                .entry((name, index))
                .or_default()
                .record(value);
        }
    }

    fn observe_hist(&self, name: &'static str, index: u32, hist: &Histogram) {
        if let Some(r) = &self.inner {
            r.lock()
                .expect("telemetry recorder poisoned")
                .histograms
                .entry((name, index))
                .or_default()
                .merge(hist);
        }
    }

    fn profile(&self, span: ProfileSpan) {
        if let Some(r) = &self.inner {
            r.lock().expect("telemetry recorder poisoned").profile.push(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_recording());
        t.event(SimEvent::QueueDepth { tick: 0, ready: 0, running: 0 });
        t.counter("x", 0, 1);
        t.observe("y", 0, 5);
        assert!(t.take_report().is_none());
    }

    #[test]
    fn clones_share_one_stream() {
        let t = Telemetry::recording();
        let u = t.clone();
        t.event(SimEvent::QueueDepth { tick: 1, ready: 2, running: 3 });
        u.event(SimEvent::QueueDepth { tick: 4, ready: 5, running: 6 });
        u.counter("scheduler.pops", 0, 2);
        t.counter("scheduler.pops", 0, 3);
        let report = t.take_report().unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.counter("scheduler.pops", 0), Some(5));
        // Taking drains but keeps recording.
        t.event(SimEvent::QueueDepth { tick: 7, ready: 0, running: 0 });
        assert_eq!(t.take_report().unwrap().events.len(), 1);
    }

    #[test]
    fn nop_sink_is_disabled() {
        assert!(!NopSink.enabled());
        NopSink.event(SimEvent::QueueDepth { tick: 0, ready: 0, running: 0 });
        NopSink.counter("x", 0, 1);
        NopSink.observe("y", 0, 2);
        NopSink.observe_hist("z", 0, &Histogram::new());
    }

    #[test]
    fn observations_accumulate_into_shared_histograms() {
        let t = Telemetry::recording();
        let u = t.clone();
        t.observe("task.latency", 0, 8);
        u.observe("task.latency", 0, 9);
        let mut bulk = Histogram::new();
        bulk.record(100);
        bulk.record(200);
        t.observe_hist("task.latency", 0, &bulk);
        t.observe("task.latency", 1, 1);
        let report = t.take_report().unwrap();
        assert_eq!(report.histograms.len(), 2);
        let h = report.histogram("task.latency", 0).unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 8 + 9 + 100 + 200);
        assert_eq!(report.histogram("task.latency", 1).unwrap().count(), 1);
        assert!(report.histogram("task.latency", 2).is_none());
    }
}
