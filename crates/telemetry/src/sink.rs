//! The sink API: where instrumented code sends events.
//!
//! Instrumentation sites are generic over [`Sink`], so the choice between
//! "no telemetry" and "recording" is made by monomorphization, not by a
//! branch on the hot path:
//!
//! * [`NopSink`] — a zero-sized type whose methods are empty and
//!   `#[inline(always)]`: the compiled artifact of an instrumented
//!   function is identical to its uninstrumented form.
//! * [`Telemetry`] — a cloneable runtime handle. Disabled handles carry no
//!   recorder (emissions are a single `Option` check); recording handles
//!   share an internal recorder behind a mutex, so one handle can be
//!   threaded through an engine, a controller and an exporter and all
//!   emissions land in one ordered stream.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::{ProfileSpan, SimEvent};
use crate::report::{Counter, TelemetryReport};

/// Receiver of telemetry emissions.
///
/// Methods take `&self`: recording sinks use interior mutability, and
/// instrumented code stays free of extra `&mut` plumbing.
pub trait Sink {
    /// Whether emissions are observed. Instrumentation sites that must
    /// allocate to build an event (e.g. type names) guard on this; sites
    /// emitting plain-integer events call unconditionally and rely on the
    /// no-op body compiling to nothing.
    fn enabled(&self) -> bool;

    /// Records a simulation-channel event.
    fn event(&self, event: SimEvent);

    /// Adds `delta` to the indexed counter `name[index]` (e.g.
    /// `scheduler.pops[core]`, `mem.private_hits[level]`). Scalar counters
    /// use index 0.
    fn counter(&self, name: &'static str, index: u32, delta: u64);

    /// Records a wall-clock span on the profiling channel.
    fn profile(&self, span: ProfileSpan);
}

/// The do-nothing sink: telemetry compiled out.
#[derive(Debug, Clone, Copy, Default)]
pub struct NopSink;

impl Sink for NopSink {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn event(&self, _event: SimEvent) {}

    #[inline(always)]
    fn counter(&self, _name: &'static str, _index: u32, _delta: u64) {}

    #[inline(always)]
    fn profile(&self, _span: ProfileSpan) {}
}

/// What a recording handle accumulates.
#[derive(Debug, Default)]
struct Recorder {
    events: Vec<SimEvent>,
    /// `(name, index) -> value`. A `BTreeMap` so snapshots list counters
    /// in a deterministic order regardless of emission order.
    counters: BTreeMap<(&'static str, u32), u64>,
    profile: Vec<ProfileSpan>,
}

impl Recorder {
    fn report(&mut self) -> TelemetryReport {
        TelemetryReport {
            events: std::mem::take(&mut self.events),
            counters: std::mem::take(&mut self.counters)
                .into_iter()
                .map(|((name, index), value)| Counter { name: name.to_string(), index, value })
                .collect(),
            profile: std::mem::take(&mut self.profile),
        }
    }
}

/// A cloneable telemetry handle: either disabled (no recorder, emissions
/// are a single pointer check) or recording into a shared stream.
///
/// `Default` is [`Telemetry::disabled`].
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Mutex<Recorder>>>,
}

impl Telemetry {
    /// A handle that records nothing.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A fresh recording handle. Clones share the same stream.
    pub fn recording() -> Self {
        Self { inner: Some(Arc::new(Mutex::new(Recorder::default()))) }
    }

    /// Whether this handle records.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Takes the recorded report out of the handle, leaving it empty (and
    /// still recording). `None` for disabled handles.
    pub fn take_report(&self) -> Option<TelemetryReport> {
        self.inner.as_ref().map(|r| r.lock().expect("telemetry recorder poisoned").report())
    }
}

impl Sink for Telemetry {
    #[inline]
    fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn event(&self, event: SimEvent) {
        if let Some(r) = &self.inner {
            r.lock().expect("telemetry recorder poisoned").events.push(event);
        }
    }

    fn counter(&self, name: &'static str, index: u32, delta: u64) {
        if let Some(r) = &self.inner {
            *r.lock()
                .expect("telemetry recorder poisoned")
                .counters
                .entry((name, index))
                .or_insert(0) += delta;
        }
    }

    fn profile(&self, span: ProfileSpan) {
        if let Some(r) = &self.inner {
            r.lock().expect("telemetry recorder poisoned").profile.push(span);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_recording());
        t.event(SimEvent::QueueDepth { tick: 0, ready: 0, running: 0 });
        t.counter("x", 0, 1);
        assert!(t.take_report().is_none());
    }

    #[test]
    fn clones_share_one_stream() {
        let t = Telemetry::recording();
        let u = t.clone();
        t.event(SimEvent::QueueDepth { tick: 1, ready: 2, running: 3 });
        u.event(SimEvent::QueueDepth { tick: 4, ready: 5, running: 6 });
        u.counter("scheduler.pops", 0, 2);
        t.counter("scheduler.pops", 0, 3);
        let report = t.take_report().unwrap();
        assert_eq!(report.events.len(), 2);
        assert_eq!(report.counter("scheduler.pops", 0), Some(5));
        // Taking drains but keeps recording.
        t.event(SimEvent::QueueDepth { tick: 7, ready: 0, running: 0 });
        assert_eq!(t.take_report().unwrap().events.len(), 1);
    }

    #[test]
    fn nop_sink_is_disabled() {
        assert!(!NopSink.enabled());
        NopSink.event(SimEvent::QueueDepth { tick: 0, ready: 0, running: 0 });
        NopSink.counter("x", 0, 1);
    }
}
