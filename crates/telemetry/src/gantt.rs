//! Textual Gantt rendering of a recorded schedule for terminals.
//!
//! One row per worker, one column per time bucket. A bucket shows the
//! task type that occupied most of it: uppercase letters for detailed
//! execution, lowercase for fast-forward, `.` for idle. A legend maps
//! letters back to type names, and each row ends with the worker's busy
//! percentage.

use std::collections::BTreeMap;

use crate::event::SimEvent;
use crate::report::TelemetryReport;

/// Renders the finished-task schedule in `report` as a textual Gantt
/// chart, `width` columns of simulated time per worker row (clamped to a
/// sane minimum). Returns a note instead of a chart when the report holds
/// no finished tasks.
pub fn render_gantt(report: &TelemetryReport, width: usize) -> String {
    let width = width.clamp(10, 400);
    struct Span {
        start: u64,
        end: u64,
        worker: u32,
        type_id: u32,
        detailed: bool,
    }
    let mut spans: Vec<Span> = Vec::new();
    let mut names: BTreeMap<u32, String> = BTreeMap::new();
    for event in &report.events {
        match event {
            SimEvent::TypeDecl { id, name } => {
                names.insert(*id, name.clone());
            }
            SimEvent::TaskFinished { start, end, worker, type_id, detailed, .. } => {
                spans.push(Span {
                    start: *start,
                    end: (*end).max(*start + 1),
                    worker: *worker,
                    type_id: *type_id,
                    detailed: *detailed,
                });
            }
            _ => {}
        }
    }
    if spans.is_empty() {
        return "(no finished tasks recorded)\n".to_string();
    }

    let horizon = spans.iter().map(|s| s.end).max().unwrap_or(1).max(1);
    let workers: Vec<u32> = {
        let mut w: Vec<u32> = spans.iter().map(|s| s.worker).collect();
        w.sort_unstable();
        w.dedup();
        w
    };
    // Stable letter per type id: A, B, ... in sorted type-id order.
    let used_types: Vec<u32> = {
        let mut t: Vec<u32> = spans.iter().map(|s| s.type_id).collect();
        t.sort_unstable();
        t.dedup();
        t
    };
    let letter = |type_id: u32| -> char {
        let pos = used_types.iter().position(|t| *t == type_id).unwrap_or(0);
        (b'A' + (pos % 26) as u8) as char
    };

    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} ticks across {} columns ({} ticks/column), {} workers\n",
        horizon,
        width,
        horizon.div_ceil(width as u64),
        workers.len()
    ));
    for w in &workers {
        // Per-bucket occupancy: ticks busy, and the dominant (type, mode).
        let mut busy = vec![0u64; width];
        let mut dominant: Vec<BTreeMap<(u32, bool), u64>> = vec![BTreeMap::new(); width];
        let mut busy_ticks = 0u64;
        for s in spans.iter().filter(|s| s.worker == *w) {
            busy_ticks += s.end - s.start;
            let lo = (s.start * width as u64 / horizon) as usize;
            let hi = (((s.end - 1) * width as u64) / horizon) as usize;
            for (b, cell) in busy.iter_mut().enumerate().take(hi.min(width - 1) + 1).skip(lo) {
                let bucket_lo = b as u64 * horizon / width as u64;
                let bucket_hi = (b as u64 + 1) * horizon / width as u64;
                let overlap = s.end.min(bucket_hi).saturating_sub(s.start.max(bucket_lo));
                if overlap > 0 || bucket_lo == bucket_hi {
                    let credit = overlap.max(1);
                    *cell += credit;
                    *dominant[b].entry((s.type_id, s.detailed)).or_insert(0) += credit;
                }
            }
        }
        let mut row = String::with_capacity(width);
        for b in 0..width {
            if busy[b] == 0 {
                row.push('.');
            } else {
                let ((type_id, detailed), _) = dominant[b]
                    .iter()
                    .max_by_key(|(key, credit)| (**credit, std::cmp::Reverse(**key)))
                    .map(|(k, v)| (*k, *v))
                    .expect("non-zero busy bucket has a dominant entry");
                let ch = letter(type_id);
                row.push(if detailed { ch } else { ch.to_ascii_lowercase() });
            }
        }
        let pct = 100.0 * busy_ticks as f64 / horizon as f64;
        out.push_str(&format!("w{w:<3} |{row}| {pct:5.1}% busy\n"));
    }
    out.push_str("legend: UPPER=detailed lower=fast .=idle");
    for t in &used_types {
        let name = names.get(t).cloned().unwrap_or_else(|| format!("type{t}"));
        out.push_str(&format!("  {}={}", letter(*t), name));
    }
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_renders_note() {
        assert!(render_gantt(&TelemetryReport::default(), 80).contains("no finished tasks"));
    }

    #[test]
    fn rows_legend_and_modes_render() {
        let report = TelemetryReport {
            events: vec![
                SimEvent::TypeDecl { id: 0, name: "gemm".into() },
                SimEvent::TypeDecl { id: 1, name: "trsm".into() },
                SimEvent::TaskFinished {
                    start: 0,
                    end: 50,
                    worker: 0,
                    task: 0,
                    type_id: 0,
                    detailed: true,
                    instructions: 10,
                    concurrency: 1,
                },
                SimEvent::TaskFinished {
                    start: 50,
                    end: 100,
                    worker: 1,
                    task: 1,
                    type_id: 1,
                    detailed: false,
                    instructions: 10,
                    concurrency: 1,
                },
            ],
            ..Default::default()
        };
        let chart = render_gantt(&report, 20);
        assert!(chart.contains("w0"), "{chart}");
        assert!(chart.contains("w1"), "{chart}");
        assert!(chart.contains("A=gemm"), "{chart}");
        assert!(chart.contains("B=trsm"), "{chart}");
        // Worker 0 ran detailed type A, worker 1 fast type B.
        assert!(chart.lines().nth(1).unwrap().contains('A'), "{chart}");
        assert!(chart.lines().nth(2).unwrap().contains('b'), "{chart}");
        // Idle halves show as dots.
        assert!(chart.lines().nth(1).unwrap().contains('.'), "{chart}");
    }
}
