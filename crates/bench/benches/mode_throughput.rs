//! Criterion micro-benchmarks of the two simulation modes — the source of
//! TaskPoint's speedup: detailed mode costs per *instruction*, burst mode
//! costs per *task*.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taskpoint_runtime::Program;
use taskpoint_trace::TraceSpec;
use tasksim::{DetailedOnly, FixedIpc, MachineConfig, Simulation};

fn program(tasks: u64, instrs: u64) -> Program {
    let mut b = Program::builder("bench");
    let ty = b.add_type("work");
    for i in 0..tasks {
        b.add_task(ty, TraceSpec::synthetic(i, instrs), vec![]);
    }
    b.build()
}

fn detailed_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("detailed_mode");
    g.sample_size(10);
    for &instrs in &[500u64, 2000] {
        let p = program(64, instrs);
        g.throughput(Throughput::Elements(64 * instrs));
        g.bench_with_input(BenchmarkId::new("instructions", instrs), &p, |b, p| {
            b.iter(|| {
                Simulation::builder(p, MachineConfig::high_performance())
                    .workers(4)
                    .build()
                    .run(&mut DetailedOnly)
                    .total_cycles
            })
        });
    }
    g.finish();
}

fn burst_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("burst_mode");
    g.sample_size(20);
    for &tasks in &[1_000u64, 10_000] {
        let p = program(tasks, 2000);
        g.throughput(Throughput::Elements(tasks));
        g.bench_with_input(BenchmarkId::new("tasks", tasks), &p, |b, p| {
            b.iter(|| {
                Simulation::builder(p, MachineConfig::high_performance())
                    .workers(4)
                    .prewarm(false)
                    .build()
                    .run(&mut FixedIpc(2.0))
                    .total_cycles
            })
        });
    }
    g.finish();
}

fn sampling_controller_overhead(c: &mut Criterion) {
    use taskpoint::{TaskPointConfig, TaskPointController};
    let p = program(10_000, 2000);
    let mut g = c.benchmark_group("taskpoint_controller");
    g.sample_size(10);
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("lazy_sampled_run", |b| {
        b.iter(|| {
            let mut controller = TaskPointController::new(TaskPointConfig::lazy());
            Simulation::builder(&p, MachineConfig::high_performance())
                .workers(4)
                .build()
                .run(&mut controller)
                .total_cycles
        })
    });
    g.finish();
}

criterion_group!(benches, detailed_mode, burst_mode, sampling_controller_overhead);
criterion_main!(benches);
