//! Criterion versions of the paper's experiments at smoke scale: one
//! Criterion benchmark per table/figure, so `cargo bench` exercises every
//! experiment code path quickly. The full-scale numbers come from the
//! `taskpoint-bench` binaries (`cargo run --release -p taskpoint-bench
//! --bin run_all`).

use criterion::{criterion_group, criterion_main, Criterion};
use taskpoint::TaskPointConfig;
use taskpoint_bench::{figures, Harness, SweepPart};
use taskpoint_workloads::ScaleConfig;
use tasksim::MachineConfig;

/// Smoke scale: tiny instruction counts, structure intact. In-memory
/// campaign so iterations measure simulation, not store hits.
fn harness() -> Harness {
    Harness::in_memory(ScaleConfig { instr_factor: 0.02, ..ScaleConfig::new() })
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_configs", |b| b.iter(|| figures::table2().len()));
    g.finish();
}

fn bench_fig_variation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_fig5_variation");
    g.sample_size(10);
    // One representative benchmark through the variation pipeline per
    // iteration (the full 19-benchmark sweep is the binary's job).
    g.bench_function("variation_pipeline_smoke", |b| {
        b.iter(|| {
            let h = harness();
            let program = h.program(taskpoint_workloads::Benchmark::Spmv);
            let result = tasksim::Simulation::builder(&program, MachineConfig::high_performance())
                .workers(8)
                .collect_reports(true)
                .build()
                .run(&mut tasksim::DetailedOnly);
            result.reports.len()
        })
    });
    g.finish();
}

fn bench_fig6_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_sensitivity");
    g.sample_size(10);
    g.bench_function("period_sweep_one_bench", |b| {
        b.iter(|| {
            let h = harness();
            let machine = MachineConfig::high_performance();
            let cell = h.cell(
                taskpoint_workloads::Benchmark::Blackscholes,
                &machine,
                32,
                TaskPointConfig::periodic(),
            );
            cell.outcome.error_percent
        })
    });
    let _ = SweepPart::Period; // full sweep lives in the binary
    g.finish();
}

fn bench_fig7_to_10_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_to_fig10_cells");
    g.sample_size(10);
    for (name, machine, threads, config) in [
        (
            "fig7_periodic_hp_8t",
            MachineConfig::high_performance(),
            8u32,
            TaskPointConfig::periodic(),
        ),
        ("fig8_periodic_lp_4t", MachineConfig::low_power(), 4, TaskPointConfig::periodic()),
        ("fig9_lazy_hp_8t", MachineConfig::high_performance(), 8, TaskPointConfig::lazy()),
        ("fig10_lazy_lp_4t", MachineConfig::low_power(), 4, TaskPointConfig::lazy()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let h = harness();
                let cell =
                    h.cell(taskpoint_workloads::Benchmark::Cholesky, &machine, threads, config);
                cell.outcome.error_percent
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_fig_variation,
    bench_fig6_sensitivity,
    bench_fig7_to_10_cells
);
criterion_main!(benches);
