//! Criterion micro-benchmarks of the substrate layers: trace generation,
//! dependence analysis, cache simulation and workload generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use taskpoint_trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::cache::SetAssocCache;

fn trace_generation(c: &mut Criterion) {
    let spec = TraceSpec::builder()
        .seed(7)
        .instructions(100_000)
        .mix(InstructionMix::balanced())
        .pattern(AccessPattern::strided(64, 4))
        .footprint(MemRegion::new(0x10_0000, 1 << 20))
        .build();
    let mut g = c.benchmark_group("trace_generation");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("iterate_100k_instructions", |b| {
        b.iter(|| spec.iter().map(|i| i.addr).fold(0u64, u64::wrapping_add))
    });
    g.finish();
}

fn cache_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("l1_hit_stream", |b| {
        let mut cache = SetAssocCache::new(32 * 1024, 8, 64);
        for line in 0..512u64 {
            cache.access(line);
        }
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc += matches!(cache.access(i % 512), tasksim::cache::AccessOutcome::Hit) as u64;
            }
            acc
        })
    });
    g.bench_function("thrash_stream", |b| {
        let mut cache = SetAssocCache::new(32 * 1024, 8, 64);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..100_000u64 {
                acc += matches!(cache.access(i % 4096), tasksim::cache::AccessOutcome::Hit) as u64;
            }
            acc
        })
    });
    g.finish();
}

fn workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(10);
    for bench in [Benchmark::Cholesky, Benchmark::SparseLu, Benchmark::Dedup] {
        g.bench_with_input(BenchmarkId::new("generate", bench.name()), &bench, |b, &bench| {
            b.iter(|| bench.generate(&ScaleConfig::quick()).num_instances())
        });
    }
    g.finish();
}

criterion_group!(benches, trace_generation, cache_simulation, workload_generation);
criterion_main!(benches);
