//! Output plumbing for the figure binaries: print to stdout and mirror
//! into `results/<name>.txt`.

use std::io::Write;
use std::path::Path;

/// Prints `content` under a heading and mirrors it to `results/<name>.txt`.
pub fn emit(name: &str, heading: &str, content: &str) {
    println!("== {heading} ==\n{content}");
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if let Ok(mut f) = std::fs::File::create(&path) {
            let _ = writeln!(f, "== {heading} ==\n{content}");
        }
    }
}
