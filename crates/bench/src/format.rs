//! Plain-text table formatting for the figure/table binaries.

/// A fixed-width text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-')
                    && cell.chars().all(|c| {
                        c.is_ascii_digit()
                            || c == '.'
                            || c == '-'
                            || c == '+'
                            || c == 'x'
                            || c == '%'
                    });
                if numeric {
                    line.push_str(&format!("{cell:>width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<width$}", width = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with the given precision, trimming to a compact cell.
pub fn num(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["bench", "err%", "speedup"]);
        t.row(["spmv", "1.25", "76.2"]);
        t.row(["a-very-long-name", "0.5", "9.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[2].starts_with("spmv"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.256, 2), "1.26");
        assert_eq!(num(19.0, 1), "19.0");
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
