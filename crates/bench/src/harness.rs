//! Shared experiment infrastructure.

use std::collections::HashMap;

use taskpoint::{ExperimentOutcome, SamplingStats, TaskPointConfig};
use taskpoint_runtime::Program;
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::{MachineConfig, SimResult};

/// How big the runs are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Full evaluation scale (the crate's Table-I-shaped workloads).
    Full,
    /// Heavily reduced instruction counts for smoke tests and CI.
    Quick,
}

impl RunScale {
    /// Reads the scale from the command line (`--quick`) or the
    /// `TASKPOINT_SCALE` environment variable (`quick`/`full`).
    pub fn from_env_and_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return RunScale::Quick;
        }
        match std::env::var("TASKPOINT_SCALE").as_deref() {
            Ok("quick") => RunScale::Quick,
            _ => RunScale::Full,
        }
    }

    /// The workload scale configuration.
    pub fn scale_config(self) -> ScaleConfig {
        match self {
            RunScale::Full => ScaleConfig::new(),
            RunScale::Quick => ScaleConfig::quick(),
        }
    }
}

/// One experiment cell: a sampled run compared against its reference.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Error/speedup outcome.
    pub outcome: ExperimentOutcome,
    /// Controller telemetry.
    pub stats: SamplingStats,
}

/// Caches programs and detailed references across experiment cells.
pub struct Harness {
    scale: ScaleConfig,
    programs: HashMap<Benchmark, Program>,
    references: HashMap<(Benchmark, String, u32), SimResult>,
}

impl Harness {
    /// Creates a harness at the given workload scale.
    pub fn new(scale: ScaleConfig) -> Self {
        Self { scale, programs: HashMap::new(), references: HashMap::new() }
    }

    /// Creates a harness from CLI/env scale selection.
    pub fn from_env() -> Self {
        Self::new(RunScale::from_env_and_args().scale_config())
    }

    /// The workload scale in use.
    pub fn scale(&self) -> &ScaleConfig {
        &self.scale
    }

    /// Returns (generating on first use) the benchmark's program.
    pub fn program(&mut self, bench: Benchmark) -> &Program {
        let scale = self.scale;
        self.programs.entry(bench).or_insert_with(|| bench.generate(&scale))
    }

    /// Returns (running on first use) the full-detail reference for the
    /// cell. The cached copy drops per-task reports to bound memory.
    pub fn reference(
        &mut self,
        bench: Benchmark,
        machine: &MachineConfig,
        workers: u32,
    ) -> SimResult {
        let key = (bench, machine.name.clone(), workers);
        if !self.references.contains_key(&key) {
            let scale = self.scale;
            let program = self.programs.entry(bench).or_insert_with(|| bench.generate(&scale));
            let result = taskpoint::run_reference(program, machine.clone(), workers);
            self.references.insert(key.clone(), result);
        }
        self.references[&key].clone()
    }

    /// Runs one sampled cell against its (cached) reference.
    pub fn cell(
        &mut self,
        bench: Benchmark,
        machine: &MachineConfig,
        workers: u32,
        config: TaskPointConfig,
    ) -> Cell {
        let reference = self.reference(bench, machine, workers);
        let scale = self.scale;
        let program = self.programs.entry(bench).or_insert_with(|| bench.generate(&scale));
        let (outcome, stats) =
            taskpoint::evaluate(program, machine.clone(), workers, config, Some(&reference));
        Cell { outcome, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_caches_programs_and_references() {
        let mut h = Harness::new(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let r1 = h.reference(Benchmark::Spmv, &machine, 2);
        let r2 = h.reference(Benchmark::Spmv, &machine, 2);
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert_eq!(h.references.len(), 1);
        assert_eq!(h.programs.len(), 1);
    }

    #[test]
    fn cell_produces_outcome() {
        let mut h = Harness::new(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let cell = h.cell(Benchmark::Spmv, &machine, 2, TaskPointConfig::lazy());
        assert!(cell.outcome.error_percent.is_finite());
        assert!(cell.outcome.speedup > 0.0);
    }
}
