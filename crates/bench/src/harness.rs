//! Shared experiment infrastructure, built on the campaign subsystem.
//!
//! [`Harness`] is a thin facade over a [`Campaign`]: it pins the workload
//! scale and exposes the single-cell conveniences the figure binaries and
//! examples use. All caching — generated programs, detailed references,
//! and on-disk content-addressed results — lives in the campaign layer,
//! so a figure regenerated here and a sweep run by the `campaign` CLI
//! share the same cache entries.

use std::sync::Arc;

use taskpoint::{ExperimentOutcome, TaskPointConfig};
use taskpoint_campaign::{Campaign, CampaignReport, CellSpec, EvalMetrics};
use taskpoint_runtime::Program;
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::{MachineConfig, SimResult};

pub use taskpoint_campaign::{RunScale, UnknownScaleError};

/// One experiment cell: a sampled run compared against its reference.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Error/speedup outcome.
    pub outcome: ExperimentOutcome,
    /// The campaign's deterministic metrics (resample counts, task and
    /// instruction counters).
    pub metrics: EvalMetrics,
    /// Whether the cell came from the content-addressed store.
    pub cached: bool,
}

/// Caches programs and detailed references across experiment cells, and
/// fans batched sweeps out over the campaign executor.
pub struct Harness {
    scale: ScaleConfig,
    campaign: Campaign,
}

impl Harness {
    /// Creates a harness at the given workload scale, backed by the
    /// default persistent store (`results/campaign`).
    pub fn new(scale: ScaleConfig) -> Self {
        Self { scale, campaign: Campaign::open_default() }
    }

    /// A harness without persistence — in-memory sharing only. The right
    /// constructor for unit tests.
    pub fn in_memory(scale: ScaleConfig) -> Self {
        Self { scale, campaign: Campaign::in_memory() }
    }

    /// A harness over an explicit campaign.
    pub fn with_campaign(scale: ScaleConfig, campaign: Campaign) -> Self {
        Self { scale, campaign }
    }

    /// Creates a harness from CLI/env scale selection, exiting with a
    /// diagnostic on an unrecognized `TASKPOINT_SCALE` value.
    pub fn from_env() -> Self {
        Self::new(RunScale::from_env_or_exit().scale_config())
    }

    /// The workload scale in use.
    pub fn scale(&self) -> &ScaleConfig {
        &self.scale
    }

    /// The underlying campaign (for batched sweeps).
    pub fn campaign(&self) -> &Campaign {
        &self.campaign
    }

    /// Runs a batch of cells across the executor, outcomes in spec order.
    pub fn run(&self, specs: &[CellSpec]) -> CampaignReport {
        self.campaign.run(specs)
    }

    /// Returns (generating on first use) the benchmark's program.
    pub fn program(&self, bench: Benchmark) -> Arc<Program> {
        self.campaign.program(bench, &self.scale)
    }

    /// Returns (running on first use) the full-detail reference for the
    /// cell. The shared copy drops per-task reports to bound memory.
    pub fn reference(
        &self,
        bench: Benchmark,
        machine: &MachineConfig,
        workers: u32,
    ) -> Arc<SimResult> {
        self.campaign.reference(bench, self.scale, machine.clone(), workers)
    }

    /// Runs one sampled cell against its (cached) reference.
    pub fn cell(
        &self,
        bench: Benchmark,
        machine: &MachineConfig,
        workers: u32,
        config: TaskPointConfig,
    ) -> Cell {
        let spec = CellSpec::sampled(bench, self.scale, machine.clone(), workers, config);
        let outcome = self.campaign.run_one(&spec);
        let metrics =
            outcome.record.metrics.as_eval().expect("sampled cell produces eval metrics").clone();
        Cell {
            outcome: outcome.experiment_outcome().expect("sampled cell has an outcome"),
            metrics,
            cached: outcome.cached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_shares_programs_and_references() {
        let h = Harness::in_memory(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let r1 = h.reference(Benchmark::Spmv, &machine, 2);
        let r2 = h.reference(Benchmark::Spmv, &machine, 2);
        assert_eq!(r1.total_cycles, r2.total_cycles);
        assert!(Arc::ptr_eq(&r1, &r2), "reference computed once and shared");
        let p1 = h.program(Benchmark::Spmv);
        let p2 = h.program(Benchmark::Spmv);
        assert!(Arc::ptr_eq(&p1, &p2), "program generated once and shared");
    }

    #[test]
    fn cell_produces_outcome() {
        let h = Harness::in_memory(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let cell = h.cell(Benchmark::Spmv, &machine, 2, TaskPointConfig::lazy());
        assert!(cell.outcome.error_percent.is_finite());
        assert!(cell.outcome.speedup > 0.0);
        assert!(!cell.cached);
        assert_eq!(cell.metrics.predicted_cycles, cell.outcome.predicted_cycles);
    }

    #[test]
    fn cell_reuses_the_harness_reference() {
        let h = Harness::in_memory(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let reference = h.reference(Benchmark::Spmv, &machine, 2);
        let cell = h.cell(Benchmark::Spmv, &machine, 2, TaskPointConfig::lazy());
        assert_eq!(cell.outcome.reference_cycles, reference.total_cycles);
    }
}
