//! Evaluation harness for the TaskPoint reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus the
//! [`Harness`] that caches generated programs and detailed reference
//! simulations so that sweeps sharing a (benchmark, machine, threads) cell
//! do not repeat the expensive full-detail run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod format;
pub mod harness;
pub mod output;

pub use figures::{
    error_speedup_figure, sensitivity_sweep, table1, table2, variation_figure, FigureCell,
    SweepPart,
};
pub use format::Table;
pub use harness::{Cell, Harness, RunScale};
