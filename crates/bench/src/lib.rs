//! Evaluation harness for the TaskPoint reproduction.
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on the
//! [`taskpoint_campaign`] subsystem: every figure assembles its cell list,
//! fans it out across the campaign's deterministic work-stealing executor,
//! and shares the content-addressed result store with the `campaign` CLI —
//! so sweeps sharing a (benchmark, machine, threads) cell never repeat an
//! expensive full-detail run, within a process or across processes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod format;
pub mod harness;
pub mod output;
pub mod regress;

pub use figures::{
    adaptive_frontier, error_speedup_figure, sensitivity_sweep, table1, table2, variation_figure,
    FigureCell, SweepPart,
};
pub use format::Table;
pub use harness::{Cell, Harness, RunScale};
