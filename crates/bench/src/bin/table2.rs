//! Regenerates Table II: the high-performance and low-power machine
//! configurations.

use taskpoint_bench::figures;
use taskpoint_bench::output::emit;

fn main() {
    let t = figures::table2();
    emit("table2", "Table II: architectural parameters", &t.render());
}
