//! Regenerates Fig. 8: error and speedup of periodic sampling; low-power architecture; P = 250.

use taskpoint::TaskPointConfig;
use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let (t, _) = figures::error_speedup_figure(
        &h,
        &MachineConfig::low_power(),
        &figures::LOW_POWER_THREADS,
        TaskPointConfig::periodic(),
    );
    emit(
        "fig8_periodic_lowpower",
        "Fig. 8: periodic sampling; low-power architecture; P = 250",
        &t.render(),
    );
}
