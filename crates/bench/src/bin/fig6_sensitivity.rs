//! Regenerates Fig. 6: sensitivity of error and speedup to the model
//! parameters W (warmup), H (history size) and P (sampling period),
//! averaged over 32- and 64-thread runs of the sensitivity benchmarks.
//!
//! Pass `--part w|h|p` to run a single sweep (all three by default).

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness, SweepPart};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let part = args.iter().position(|a| a == "--part").and_then(|i| args.get(i + 1));
    let parts: Vec<(SweepPart, &str, &str)> = match part.map(String::as_str) {
        Some("w") => vec![(SweepPart::Warmup, "fig6a_warmup", "Fig. 6a: warmup sweep (W)")],
        Some("h") => vec![(SweepPart::History, "fig6b_history", "Fig. 6b: history sweep (H)")],
        Some("p") => vec![(SweepPart::Period, "fig6c_period", "Fig. 6c: period sweep (P)")],
        _ => vec![
            (SweepPart::Warmup, "fig6a_warmup", "Fig. 6a: warmup sweep (W)"),
            (SweepPart::History, "fig6b_history", "Fig. 6b: history sweep (H)"),
            (SweepPart::Period, "fig6c_period", "Fig. 6c: period sweep (P)"),
        ],
    };
    let h = Harness::from_env();
    for (part, name, heading) in parts {
        let t = figures::sensitivity_sweep(&h, part);
        emit(name, heading, &t.render());
    }
}
