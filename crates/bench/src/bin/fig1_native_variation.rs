//! Regenerates Fig. 1: per-type-normalized IPC variation in "native"
//! execution (detailed simulation + system-noise model), 8 threads.

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let t = figures::variation_figure(&h, &MachineConfig::high_performance(), true);
    emit(
        "fig1_native_variation",
        "Fig. 1: IPC variation across task instances, native execution (noise model), 8 threads",
        &t.render(),
    );
}
