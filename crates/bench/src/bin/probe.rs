//! Quick end-to-end probe: one benchmark, both policies, plus the
//! detailed-mode instructions/sec throughput of the reference run.
//! Used during development to sanity-check accuracy, speedup and host
//! simulation speed. Scale comes from `--quick` / `TASKPOINT_SCALE`
//! (default full).

use taskpoint::TaskPointConfig;
use taskpoint_bench::Harness;
use taskpoint_workloads::Benchmark;
use tasksim::MachineConfig;

fn main() {
    let bench =
        std::env::args().nth(1).and_then(|n| Benchmark::by_name(&n)).unwrap_or(Benchmark::Cholesky);
    let workers: u32 = std::env::args().nth(2).and_then(|w| w.parse().ok()).unwrap_or(8);
    let h = Harness::from_env();
    let machine = MachineConfig::high_performance();
    let t0 = std::time::Instant::now();
    let reference = h.reference(bench, &machine, workers);
    println!(
        "{bench} @{workers}t reference: {} cycles, {:.2}s wall, {} tasks, {:.1}M instr",
        reference.total_cycles,
        reference.wall_seconds,
        reference.detailed_tasks,
        reference.total_instructions() as f64 / 1e6
    );
    match reference.detailed_instr_per_sec() {
        Some(ips) => println!("  detailed-mode throughput: {:.2} Minstr/s", ips / 1e6),
        None => println!("  detailed-mode throughput: n/a"),
    }
    for (name, cfg) in
        [("lazy", TaskPointConfig::lazy()), ("periodic", TaskPointConfig::periodic())]
    {
        let cell = h.cell(bench, &machine, workers, cfg);
        println!(
            "  {name:<9} err {:6.2}%  speedup {:8.1}x  detail {:5.2}%  resamples {}{}",
            cell.outcome.error_percent,
            cell.outcome.speedup,
            100.0 * cell.outcome.detail_fraction,
            cell.metrics.resamples,
            if cell.cached { "  (cached)" } else { "" }
        );
        println!(
            "            causes: policy {} newtype {} conc {} empty {}",
            cell.metrics.resamples_policy,
            cell.metrics.resamples_new_type,
            cell.metrics.resamples_concurrency,
            cell.metrics.resamples_empty
        );
    }
    println!("total probe time {:.1}s", t0.elapsed().as_secs_f64());
}
