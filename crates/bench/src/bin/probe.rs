//! Quick end-to-end probe: one benchmark, both policies, plus the
//! detailed-mode instructions/sec throughput of the reference run.
//! Used during development to sanity-check accuracy, speedup and host
//! simulation speed, and to script `BENCH_*.json` performance records.
//!
//! ```text
//! probe [BENCH] [WORKERS] [--runs N] [--json FILE] [--id NAME] [--note TEXT] [--quick]
//! ```
//!
//! Throughput is measured over `--runs` (default 3) *fresh* reference
//! simulations — never a cached timing — and reported as min/median/max,
//! because single-run wall-clock on a shared host scatters by tens of
//! percent. `--json` writes the whole probe as a canonical JSON document
//! shaped like the committed `BENCH_*.json` records.
//!
//! ## `--json` schema (version 2)
//!
//! Top-level keys, all present unless noted: `schema_version` (2), `id`,
//! `date` (UTC civil date), `change` (only with `--note`), `method`,
//! `bench`, `workers`, `detail_threads`, `scale`, `scale_seed`,
//! `probe_detailed_throughput_minstr_per_sec` (`{runs, min, median,
//! max}`, aggregates omitted when no run produced detailed
//! instructions), and `sampled` (`{lazy, periodic}`, each
//! `{error_percent, speedup, detail_percent, resamples}`). The schema is
//! **closed**: `regress` (and this probe's own read-back check below)
//! reject any key outside this set, so hand edits that typo a key fail
//! loudly instead of silently dropping a measurement. See
//! `taskpoint_bench::regress` for the legacy BENCH_0006–0008 shapes.

use taskpoint::{run_reference, TaskPointConfig};
use taskpoint_bench::{Harness, RunScale};
use taskpoint_campaign::json::{Object, Value};
use taskpoint_workloads::Benchmark;
use tasksim::MachineConfig;

struct ProbeArgs {
    bench: Benchmark,
    workers: u32,
    runs: usize,
    json: Option<String>,
    id: String,
    note: String,
}

fn parse_args() -> ProbeArgs {
    let mut parsed = ProbeArgs {
        bench: Benchmark::Cholesky,
        workers: 8,
        runs: 3,
        json: None,
        id: "BENCH_PROBE".to_string(),
        note: String::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = 0;
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => {} // consumed by RunScale::from_env_and_args
            "--runs" => {
                let v = value(&args, &mut i, "--runs");
                match v.parse::<usize>() {
                    Ok(n) if n > 0 => parsed.runs = n,
                    _ => {
                        eprintln!("error: --runs needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--json" => parsed.json = Some(value(&args, &mut i, "--json")),
            "--id" => parsed.id = value(&args, &mut i, "--id"),
            "--note" => parsed.note = value(&args, &mut i, "--note"),
            other if !other.starts_with("--") => {
                match positional {
                    0 => match Benchmark::by_name(other) {
                        Some(b) => parsed.bench = b,
                        None => {
                            eprintln!("error: unknown benchmark {other:?}");
                            std::process::exit(2);
                        }
                    },
                    1 => match other.parse::<u32>() {
                        Ok(w) if w > 0 => parsed.workers = w,
                        _ => {
                            eprintln!("error: WORKERS needs a positive integer, got {other:?}");
                            std::process::exit(2);
                        }
                    },
                    _ => {
                        eprintln!("error: unexpected argument {other:?}");
                        std::process::exit(2);
                    }
                }
                positional += 1;
            }
            other => {
                eprintln!("error: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    parsed
}

/// `(min, median, max)` of a non-empty throughput sample.
fn spread(samples: &[f64]) -> (f64, f64, f64) {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("throughputs are finite"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    (sorted[0], median, sorted[sorted.len() - 1])
}

/// Civil date (UTC) from a Unix timestamp, for the BENCH record header.
/// Days-to-civil conversion per Howard Hinnant's algorithm.
fn utc_date(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() {
    let args = parse_args();
    let ProbeArgs { bench, workers, runs, .. } = args;
    let scale = RunScale::from_env_or_exit();
    // The reference runs below go through `run_reference`, which applies
    // this same env override; read it here so the record says how the
    // numbers were produced.
    let detail_threads = tasksim::detail_threads_from_env();
    let h = Harness::new(scale.scale_config());
    let machine = MachineConfig::high_performance();
    let t0 = std::time::Instant::now();
    let program = h.program(bench);

    // Fresh, uncached reference runs: the first doubles as the displayed
    // reference; the batch feeds the throughput spread.
    let mut throughputs_minstr: Vec<f64> = Vec::with_capacity(runs);
    let mut reference = None;
    for _ in 0..runs {
        let result = run_reference(&program, machine.clone(), workers);
        if let Some(ips) = result.detailed_instr_per_sec() {
            throughputs_minstr.push(ips / 1e6);
        }
        reference.get_or_insert(result);
    }
    let reference = reference.expect("at least one reference run");
    println!(
        "{bench} @{workers}t reference ({detail_threads} detail thread{}): {} cycles, \
         {:.2}s wall, {} tasks, {:.1}M instr",
        if detail_threads == 1 { "" } else { "s" },
        reference.total_cycles,
        reference.wall_seconds,
        reference.detailed_tasks,
        reference.total_instructions() as f64 / 1e6
    );
    let epochs = reference.parallel_epochs;
    if epochs.committed + epochs.aborted > 0 {
        println!(
            "  speculative epochs: {} committed / {} aborted",
            epochs.committed, epochs.aborted
        );
    }
    if throughputs_minstr.is_empty() {
        println!("  detailed-mode throughput: n/a");
    } else {
        let (min, median, max) = spread(&throughputs_minstr);
        println!(
            "  detailed-mode throughput: min {min:.2} / median {median:.2} / max {max:.2} \
             Minstr/s over {} runs",
            throughputs_minstr.len()
        );
    }

    let mut policy_cells = Vec::new();
    for (name, cfg) in
        [("lazy", TaskPointConfig::lazy()), ("periodic", TaskPointConfig::periodic())]
    {
        let cell = h.cell(bench, &machine, workers, cfg);
        println!(
            "  {name:<9} err {:6.2}%  speedup {:8.1}x  detail {:5.2}%  resamples {}{}",
            cell.outcome.error_percent,
            cell.outcome.speedup,
            100.0 * cell.outcome.detail_fraction,
            cell.metrics.resamples,
            if cell.cached { "  (cached)" } else { "" }
        );
        println!(
            "            causes: policy {} newtype {} conc {} empty {}",
            cell.metrics.resamples_policy,
            cell.metrics.resamples_new_type,
            cell.metrics.resamples_concurrency,
            cell.metrics.resamples_empty
        );
        policy_cells.push((name, cell));
    }
    println!("total probe time {:.1}s", t0.elapsed().as_secs_f64());

    if let Some(path) = &args.json {
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut doc = Object::new();
        doc.set("schema_version", Value::Num(2.0));
        doc.set("id", Value::Str(args.id.clone()));
        doc.set("date", Value::Str(utc_date(unix)));
        if !args.note.is_empty() {
            doc.set("change", Value::Str(args.note.clone()));
        }
        doc.set(
            "method",
            Value::Str(format!(
                "TASKPOINT_SCALE={} TASKPOINT_DETAIL_THREADS={detail_threads} cargo run \
                 --release -p taskpoint-bench --bin probe -- {bench} {workers} --runs {runs} \
                 (high-performance machine, fresh reference simulations; cached cells never \
                 feed the throughput spread)",
                scale.name()
            )),
        );
        doc.set("bench", Value::Str(bench.name().to_string()));
        doc.set("workers", Value::Num(f64::from(workers)));
        doc.set("detail_threads", Value::Num(detail_threads as f64));
        doc.set("scale", Value::Str(scale.name().to_string()));
        doc.set("scale_seed", Value::Num(h.scale().seed as f64));
        let mut tp = Object::new();
        tp.set(
            "runs",
            Value::Arr(
                throughputs_minstr
                    .iter()
                    .map(|m| Value::Num((m * 100.0).round() / 100.0))
                    .collect(),
            ),
        );
        if !throughputs_minstr.is_empty() {
            let (min, median, max) = spread(&throughputs_minstr);
            tp.set("min", Value::Num((min * 100.0).round() / 100.0));
            tp.set("median", Value::Num((median * 100.0).round() / 100.0));
            tp.set("max", Value::Num((max * 100.0).round() / 100.0));
        }
        doc.set("probe_detailed_throughput_minstr_per_sec", Value::Obj(tp));
        let mut sampled = Object::new();
        for (name, cell) in &policy_cells {
            let mut c = Object::new();
            c.set("error_percent", Value::Num((cell.outcome.error_percent * 1e4).round() / 1e4));
            c.set("speedup", Value::Num((cell.outcome.speedup * 10.0).round() / 10.0));
            c.set("detail_percent", Value::Num((cell.outcome.detail_fraction * 1e4).round() / 1e2));
            c.set("resamples", Value::Num(cell.metrics.resamples as f64));
            sampled.set(name, Value::Obj(c));
        }
        doc.set("sampled", Value::Obj(sampled));
        let text = format!("{}\n", Value::Obj(doc).to_json());
        // Read-back validation: the record must parse under the strict
        // (closed-schema) regress parser before it is worth committing.
        if let Err(e) = taskpoint_bench::regress::parse_record(&text) {
            eprintln!("error: probe produced an invalid schema-v2 record: {e}");
            std::process::exit(1);
        }
        match std::fs::write(path, text) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
