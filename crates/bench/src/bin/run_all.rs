//! Runs the complete evaluation: every table and figure of the paper,
//! through the campaign subsystem — references shared across figures,
//! cells fanned out over the executor, results cached content-addressed
//! under `results/campaign/` (a re-run after an interruption resumes from
//! the cells that completed). Writes each artefact to `results/<name>.txt`
//! and prints a closing summary.

use taskpoint::TaskPointConfig;
use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness, SweepPart};
use taskpoint_stats::ErrorSummary;
use tasksim::MachineConfig;

fn main() {
    let started = std::time::Instant::now();
    let h = Harness::from_env();
    let hp = MachineConfig::high_performance();
    let lp = MachineConfig::low_power();

    emit("table2", "Table II: architectural parameters", &figures::table2().render());
    emit("table1", "Table I: task-based parallel benchmarks", &figures::table1(&h).render());
    emit(
        "fig1_native_variation",
        "Fig. 1: IPC variation, native execution (noise model), 8 threads",
        &figures::variation_figure(&h, &hp, true).render(),
    );
    emit(
        "fig5_sim_variation",
        "Fig. 5: IPC variation, simulation, 8 threads",
        &figures::variation_figure(&h, &hp, false).render(),
    );
    emit(
        "fig6a_warmup",
        "Fig. 6a: warmup sweep (W)",
        &figures::sensitivity_sweep(&h, SweepPart::Warmup).render(),
    );
    emit(
        "fig6b_history",
        "Fig. 6b: history sweep (H)",
        &figures::sensitivity_sweep(&h, SweepPart::History).render(),
    );
    emit(
        "fig6c_period",
        "Fig. 6c: period sweep (P)",
        &figures::sensitivity_sweep(&h, SweepPart::Period).render(),
    );

    let (t7, c7) = figures::error_speedup_figure(
        &h,
        &hp,
        &figures::HIGH_PERF_THREADS,
        TaskPointConfig::periodic(),
    );
    emit(
        "fig7_periodic_highperf",
        "Fig. 7: periodic sampling; high-performance; P = 250",
        &t7.render(),
    );
    let (t8, _c8) = figures::error_speedup_figure(
        &h,
        &lp,
        &figures::LOW_POWER_THREADS,
        TaskPointConfig::periodic(),
    );
    emit("fig8_periodic_lowpower", "Fig. 8: periodic sampling; low-power; P = 250", &t8.render());
    let (t9, c9) = figures::error_speedup_figure(
        &h,
        &hp,
        &figures::HIGH_PERF_THREADS,
        TaskPointConfig::lazy(),
    );
    emit("fig9_lazy_highperf", "Fig. 9: lazy sampling; high-performance", &t9.render());
    let (t10, _c10) = figures::error_speedup_figure(
        &h,
        &lp,
        &figures::LOW_POWER_THREADS,
        TaskPointConfig::lazy(),
    );
    emit("fig10_lazy_lowpower", "Fig. 10: lazy sampling; low-power", &t10.render());
    emit(
        "fig_adaptive",
        "Adaptive sampling: error/speedup frontier (confidence-driven CI targets)",
        &figures::adaptive_frontier(&h).render(),
    );
    emit(
        "fig_hetero",
        "Heterogeneous big.LITTLE: reference vs lazy sampling vs homogeneous baseline",
        &figures::hetero_figure(&h).render(),
    );

    // Headline summary (abstract claim: 64 threads, lazy, avg err 1.8%,
    // max 15.0%, avg speedup 19.1).
    let lazy64: Vec<(f64, f64)> =
        c9.iter().filter(|c| c.threads == 64).map(|c| (c.error_percent, c.speedup)).collect();
    let s = ErrorSummary::from_runs(&lazy64);
    let periodic64: Vec<(f64, f64)> =
        c7.iter().filter(|c| c.threads == 64).map(|c| (c.error_percent, c.speedup)).collect();
    let sp = ErrorSummary::from_runs(&periodic64);
    let summary = format!(
        "lazy @64t:     avg error {:.2}% (paper 1.8%), max error {:.1}% (paper 15.0%), avg speedup {:.1}x (paper 19.1x)\n\
         periodic @64t: avg error {:.2}%, max error {:.1}%, avg speedup {:.1}x (paper 15.8x)\n\
         executor workers: {}   cached cells in store: {}\n\
         total evaluation wall time: {:.0}s",
        s.mean_error_percent,
        s.max_error_percent,
        s.mean_speedup,
        sp.mean_error_percent,
        sp.max_error_percent,
        sp.mean_speedup,
        h.campaign().executor().workers(),
        h.campaign().store().len(),
        started.elapsed().as_secs_f64()
    );
    emit("summary", "Headline comparison against the paper", &summary);
}
