//! Regenerates the adaptive accuracy frontier: lazy vs periodic vs three
//! confidence-driven CI targets per workload, as an error/speedup table.

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};

fn main() {
    let h = Harness::from_env();
    let t = figures::adaptive_frontier(&h);
    emit(
        "fig_adaptive",
        "Adaptive sampling: error/speedup frontier (confidence-driven CI targets)",
        &t.render(),
    );
}
