//! Regenerates Fig. 5: per-type-normalized IPC variation in detailed
//! simulation of the high-performance architecture, 8 threads.

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let t = figures::variation_figure(&h, &MachineConfig::high_performance(), false);
    emit(
        "fig5_sim_variation",
        "Fig. 5: IPC variation across task instances, simulation, 8 threads",
        &t.render(),
    );
}
