//! Regenerates Table I: the 19 benchmarks with type/instance counts and
//! measured detailed-simulation wall times at 1 and 64 threads.

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};

fn main() {
    let h = Harness::from_env();
    let t = figures::table1(&h);
    emit("table1", "Table I: task-based parallel benchmarks", &t.render());
}
