//! Regenerates Fig. 7: error and speedup of periodic sampling; high-performance architecture; P = 250.

use taskpoint::TaskPointConfig;
use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let (t, _) = figures::error_speedup_figure(
        &h,
        &MachineConfig::high_performance(),
        &figures::HIGH_PERF_THREADS,
        TaskPointConfig::periodic(),
    );
    emit(
        "fig7_periodic_highperf",
        "Fig. 7: periodic sampling; high-performance architecture; P = 250",
        &t.render(),
    );
}
