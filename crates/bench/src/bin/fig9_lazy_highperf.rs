//! Regenerates Fig. 9: error and speedup of lazy sampling; high-performance architecture.

use taskpoint::TaskPointConfig;
use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let (t, _) = figures::error_speedup_figure(
        &h,
        &MachineConfig::high_performance(),
        &figures::HIGH_PERF_THREADS,
        TaskPointConfig::lazy(),
    );
    emit("fig9_lazy_highperf", "Fig. 9: lazy sampling; high-performance architecture", &t.render());
}
