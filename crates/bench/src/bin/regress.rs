//! The perf-regression gate CLI: compares a fresh probe record against
//! the committed `BENCH_*.json` series and emits a machine-readable
//! verdict (see `taskpoint_bench::regress` for the comparison rules).
//!
//! ```text
//! regress --current FILE [--out FILE] [--dir DIR] [--gate] [BASELINE...]
//! ```
//!
//! * `--current` — a probe `--json` output (`schema_version: 2`) for the
//!   build under test. Produce it first with
//!   `probe ... --runs N --json current.json`.
//! * `BASELINE...` — explicit baseline record paths. When none are
//!   given, every `BENCH_*.json` in `--dir` (default: the current
//!   directory) is loaded.
//! * `--out` — writes the verdict JSON document there.
//! * `--gate` — exit nonzero on a regression verdict. Without it the
//!   tool always exits 0 on a clean run (the CI step is a non-gating
//!   report; host-noise drift is documented at ±25%).

use taskpoint_bench::regress::{compare, parse_record, verdict_json, BenchRecord, Verdict};

struct Args {
    current: String,
    out: Option<String>,
    dir: String,
    gate: bool,
    baselines: Vec<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        current: String::new(),
        out: None,
        dir: ".".to_string(),
        gate: false,
        baselines: Vec::new(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |args: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} needs a value");
                std::process::exit(2);
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--current" => parsed.current = value(&args, &mut i, "--current"),
            "--out" => parsed.out = Some(value(&args, &mut i, "--out")),
            "--dir" => parsed.dir = value(&args, &mut i, "--dir"),
            "--gate" => parsed.gate = true,
            other if !other.starts_with("--") => parsed.baselines.push(other.to_string()),
            other => {
                eprintln!("error: unknown flag {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if parsed.current.is_empty() {
        eprintln!("error: --current FILE is required (a probe --json record)");
        std::process::exit(2);
    }
    parsed
}

fn load_record(path: &str) -> BenchRecord {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match parse_record(&text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    let mut baseline_paths = args.baselines.clone();
    if baseline_paths.is_empty() {
        let entries = match std::fs::read_dir(&args.dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: cannot list {}: {e}", args.dir);
                std::process::exit(1);
            }
        };
        for entry in entries.flatten() {
            let name = entry.file_name().to_string_lossy().to_string();
            if name.starts_with("BENCH_") && name.ends_with(".json") {
                baseline_paths.push(entry.path().to_string_lossy().to_string());
            }
        }
        baseline_paths.sort();
    }
    if baseline_paths.is_empty() {
        eprintln!("error: no baseline BENCH_*.json records found in {}", args.dir);
        std::process::exit(1);
    }

    let current = load_record(&args.current);
    let baselines: Vec<BenchRecord> = baseline_paths.iter().map(|p| load_record(p)).collect();
    let sidecar_cells: usize = baselines.iter().map(|b| b.sidecar.len()).sum();

    let (comparisons, verdict) = compare(&current, &baselines);
    println!(
        "regress: {} baselines ({}), current {} with {} point{}",
        baselines.len(),
        baselines.iter().map(|b| b.id.as_str()).collect::<Vec<_>>().join(", "),
        current.id,
        current.points.len(),
        if current.points.len() == 1 { "" } else { "s" },
    );
    for c in &comparisons {
        println!(
            "  vs {} @{}/{}t: baseline min {:.2} (median {:.2}) -> current median {:.2} \
             ({:+.1}% vs floor) {}",
            c.baseline_id,
            c.scale,
            c.detail_threads,
            c.baseline_min,
            c.baseline_median,
            c.current_median,
            c.delta_percent,
            if c.regression { "REGRESSION" } else { "ok" },
        );
    }
    if sidecar_cells > 0 {
        println!("  ({sidecar_cells} campaign sidecar cells loaded as informational context)");
    }
    println!("verdict: {}", verdict.tag());

    if let Some(out) = &args.out {
        let text = verdict_json(&current, &comparisons, &verdict, sidecar_cells);
        if let Err(e) = std::fs::write(out, text) {
            eprintln!("error: cannot write {out}: {e}");
            std::process::exit(1);
        }
        println!("wrote {out}");
    }
    if args.gate && verdict == Verdict::Regression {
        std::process::exit(3);
    }
}
