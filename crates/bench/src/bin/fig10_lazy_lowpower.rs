//! Regenerates Fig. 10: error and speedup of lazy sampling; low-power architecture.

use taskpoint::TaskPointConfig;
use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};
use tasksim::MachineConfig;

fn main() {
    let h = Harness::from_env();
    let (t, _) = figures::error_speedup_figure(
        &h,
        &MachineConfig::low_power(),
        &figures::LOW_POWER_THREADS,
        TaskPointConfig::lazy(),
    );
    emit("fig10_lazy_lowpower", "Fig. 10: lazy sampling; low-power architecture", &t.render());
}
