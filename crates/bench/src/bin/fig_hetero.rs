//! Regenerates the heterogeneous big.LITTLE comparison: per-kernel
//! reference and lazy-sampled runs on the big.LITTLE machine (with the
//! per-group IPC split) against the homogeneous high-performance
//! baseline at the same worker count.

use taskpoint_bench::output::emit;
use taskpoint_bench::{figures, Harness};

fn main() {
    let h = Harness::from_env();
    let t = figures::hetero_figure(&h);
    emit(
        "fig_hetero",
        "Heterogeneous big.LITTLE: reference vs lazy sampling vs homogeneous baseline",
        &t.render(),
    );
}
