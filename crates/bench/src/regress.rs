//! The perf-regression gate: parses the committed `BENCH_*.json` series
//! (all three historical record generations plus the current probe
//! schema), normalizes every record into comparable throughput points,
//! and compares a fresh probe run against them with the noise-aware
//! thresholds documented in `docs/PERFORMANCE.md`.
//!
//! ## Record generations
//!
//! The committed series was written by three different hands, so the
//! parser is generational — each shape has an exact key set and **any
//! unknown key is an error** (a typo in a hand-edited record must fail
//! loudly, not silently drop a measurement):
//!
//! * **BENCH_0006** — hand-authored A/B record: pre/post refactor run
//!   arrays per scale, plus a campaign timing sidecar of per-cell
//!   wall-clock rows.
//! * **BENCH_0007** — the probe's original `--json` output: one flat run
//!   spread at one scale, no `schema_version`, no `detail_threads`.
//! * **BENCH_0008** — hand-authored kernel-path record: before/after
//!   spreads at full scale for 1 and 2 detail threads, a quick-scale
//!   continuity block, and interleaved median-of-medians cross-checks.
//! * **`schema_version: 2`** — everything the probe writes from now on.
//!   Same shape as BENCH_0007 plus the version field and
//!   `detail_threads`; the probe validates its own output through
//!   [`parse_record`] immediately after writing it.
//!
//! ## Threshold discipline
//!
//! Wall-clock throughput on the shared dev container drifts by ±25% over
//! minutes (`docs/PERFORMANCE.md`, BENCH_0008 methodology), so a naive
//! median-vs-median comparison would cry wolf weekly. The gate instead
//! compares the current *median* against each baseline's *min over
//! recorded runs* (its worst observed sample) widened by the documented
//! drift band: a regression verdict requires the current typical run to
//! fall below even the baseline's noise floor by more than host drift
//! can explain.

use taskpoint_campaign::json::{Object, Value};

/// The documented host-noise drift band, in percent — see
/// `docs/PERFORMANCE.md` ("the drift reaches ±25% over minutes").
pub const DRIFT_BAND_PERCENT: f64 = 25.0;

/// A parse or shape error in a BENCH record.
#[derive(Debug)]
pub struct RecordError(String);

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for RecordError {}

fn err(msg: impl Into<String>) -> RecordError {
    RecordError(msg.into())
}

/// One normalized throughput measurement: a spread of detailed-mode
/// Minstr/s samples at a given workload scale and detail-thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Workload scale the runs used (`quick` / `full`).
    pub scale: String,
    /// Detail threads the runs used (1 when the record predates the
    /// field).
    pub detail_threads: u32,
    /// Raw per-run samples, Minstr/s (empty when the record only kept
    /// aggregates).
    pub runs: Vec<f64>,
    /// Minimum over the runs.
    pub min: f64,
    /// Median over the runs.
    pub median: f64,
    /// Maximum over the runs.
    pub max: f64,
}

/// One advisory campaign-sidecar row (BENCH_0006 only): per-cell wall
/// clock from a cold campaign run. Not comparable across hosts — carried
/// into the verdict as informational context only.
#[derive(Debug, Clone, PartialEq)]
pub struct SidecarCell {
    /// Cell kind tag (`reference` / `sampled-lazy` / ...).
    pub kind: String,
    /// Benchmark name.
    pub bench: String,
    /// Machine name.
    pub machine: String,
    /// Host seconds of the cell's own simulation.
    pub wall_seconds: f64,
    /// Detailed-mode throughput, when the cell ran detailed work.
    pub detailed_minstr_per_sec: Option<f64>,
}

/// A parsed BENCH record, normalized across generations.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Record id (`BENCH_0007`).
    pub id: String,
    /// Civil date the record was written.
    pub date: String,
    /// Schema generation: 0 for the BENCH_0006 A/B shape, 1 for the
    /// legacy probe and kernel-path shapes, 2 for the current probe
    /// output.
    pub schema_version: u32,
    /// Comparable throughput points (the record's *own* measurements —
    /// "before"/"pre" spreads describe the parent commit and are not
    /// included).
    pub points: Vec<SeriesPoint>,
    /// Advisory campaign-sidecar rows, when the record carries them.
    pub sidecar: Vec<SidecarCell>,
}

/// Rejects any key not in `allowed` — generational schemas are closed.
fn check_keys(o: &Object, allowed: &[&str], ctx: &str) -> Result<(), RecordError> {
    for key in o.keys() {
        if !allowed.contains(&key) {
            return Err(err(format!("unknown key {key:?} in {ctx}")));
        }
    }
    Ok(())
}

fn need_obj<'a>(o: &'a Object, key: &str, ctx: &str) -> Result<&'a Object, RecordError> {
    o.obj(key).ok_or_else(|| err(format!("missing object {key:?} in {ctx}")))
}

fn need_num(o: &Object, key: &str, ctx: &str) -> Result<f64, RecordError> {
    o.num(key).ok_or_else(|| err(format!("missing number {key:?} in {ctx}")))
}

fn need_str(o: &Object, key: &str, ctx: &str) -> Result<String, RecordError> {
    Ok(o.str(key).ok_or_else(|| err(format!("missing string {key:?} in {ctx}")))?.to_string())
}

fn num_array(o: &Object, key: &str, ctx: &str) -> Result<Vec<f64>, RecordError> {
    let Some(v) = o.get(key) else {
        return Err(err(format!("missing array {key:?} in {ctx}")));
    };
    let Value::Arr(items) = v else {
        return Err(err(format!("{key:?} in {ctx} is not an array")));
    };
    items
        .iter()
        .map(|item| match item {
            Value::Num(n) => Ok(*n),
            _ => Err(err(format!("non-numeric entry in {ctx}.{key}"))),
        })
        .collect()
}

fn median_of(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Builds a point from raw runs, recomputing the aggregates so a record
/// whose stored min/median disagrees with its own samples cannot skew
/// the gate.
fn point_from_runs(
    scale: &str,
    detail_threads: u32,
    runs: Vec<f64>,
    ctx: &str,
) -> Result<SeriesPoint, RecordError> {
    if runs.is_empty() {
        return Err(err(format!("empty run array in {ctx}")));
    }
    if runs.iter().any(|r| !r.is_finite() || *r <= 0.0) {
        return Err(err(format!("non-positive throughput sample in {ctx}")));
    }
    let mut sorted = runs.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    Ok(SeriesPoint {
        scale: scale.to_string(),
        detail_threads,
        min: sorted[0],
        median: median_of(&sorted),
        max: sorted[sorted.len() - 1],
        runs,
    })
}

/// A `{runs?, min, median, max}` spread block (BENCH_0008 shape).
fn point_from_spread(
    o: &Object,
    scale: &str,
    detail_threads: u32,
    ctx: &str,
) -> Result<SeriesPoint, RecordError> {
    check_keys(o, &["runs", "min", "median", "max"], ctx)?;
    if o.get("runs").is_some() {
        return point_from_runs(scale, detail_threads, num_array(o, "runs", ctx)?, ctx);
    }
    Ok(SeriesPoint {
        scale: scale.to_string(),
        detail_threads,
        runs: Vec::new(),
        min: need_num(o, "min", ctx)?,
        median: need_num(o, "median", ctx)?,
        max: need_num(o, "max", ctx)?,
    })
}

const SAMPLED_CELL_KEYS: [&str; 4] = ["error_percent", "speedup", "detail_percent", "resamples"];

fn check_sampled_block(o: &Object, ctx: &str) -> Result<(), RecordError> {
    check_keys(o, &["lazy", "periodic"], ctx)?;
    for policy in ["lazy", "periodic"] {
        let cell = need_obj(o, policy, ctx)?;
        check_keys(cell, &SAMPLED_CELL_KEYS, &format!("{ctx}.{policy}"))?;
    }
    Ok(())
}

/// BENCH_0006: hand-authored pre/post A/B record with a campaign sidecar.
fn parse_ab_record(top: &Object) -> Result<BenchRecord, RecordError> {
    let id = need_str(top, "id", "record")?;
    check_keys(
        top,
        &[
            "id",
            "date",
            "change",
            "method",
            "probe_detailed_throughput_minstr_per_sec",
            "campaign_timing_sidecar",
            "notes",
        ],
        &id,
    )?;
    let tp = need_obj(top, "probe_detailed_throughput_minstr_per_sec", &id)?;
    check_keys(tp, &["quick", "full"], &format!("{id}.throughput"))?;
    let mut points = Vec::new();
    for scale in ["quick", "full"] {
        let Some(block) = tp.obj(scale) else { continue };
        let ctx = format!("{id}.{scale}");
        check_keys(
            block,
            &["pre_refactor_runs", "post_refactor_runs", "pre_mean", "post_mean", "delta_percent"],
            &ctx,
        )?;
        // Only the post-refactor runs describe this record's commit.
        points.push(point_from_runs(
            scale,
            1,
            num_array(block, "post_refactor_runs", &ctx)?,
            &ctx,
        )?);
    }
    let mut sidecar = Vec::new();
    if let Some(sc) = top.obj("campaign_timing_sidecar") {
        let ctx = format!("{id}.sidecar");
        check_keys(sc, &["sweep", "scale", "jobs", "cells"], &ctx)?;
        let Some(Value::Arr(cells)) = sc.get("cells") else {
            return Err(err(format!("missing cells array in {ctx}")));
        };
        for cell in cells {
            let Value::Obj(c) = cell else {
                return Err(err(format!("non-object cell in {ctx}")));
            };
            check_keys(
                c,
                &["kind", "bench", "machine", "wall_seconds", "detailed_minstr_per_sec", "speedup"],
                &ctx,
            )?;
            sidecar.push(SidecarCell {
                kind: need_str(c, "kind", &ctx)?,
                bench: need_str(c, "bench", &ctx)?,
                machine: need_str(c, "machine", &ctx)?,
                wall_seconds: need_num(c, "wall_seconds", &ctx)?,
                detailed_minstr_per_sec: c.num("detailed_minstr_per_sec"),
            });
        }
    }
    Ok(BenchRecord { date: need_str(top, "date", &id)?, id, schema_version: 0, points, sidecar })
}

/// BENCH_0008: hand-authored kernel-path record (full-scale before/after
/// spreads at 1 and 2 detail threads plus a quick-scale continuity
/// block).
fn parse_kernel_record(top: &Object) -> Result<BenchRecord, RecordError> {
    let id = need_str(top, "id", "record")?;
    check_keys(
        top,
        &[
            "id",
            "date",
            "change",
            "method",
            "bench",
            "workers",
            "scale_seed",
            "kernel_path_full_scale",
            "quick_scale_bench0007_continuity",
            "sampled_full_scale",
        ],
        &id,
    )?;
    let kernel = need_obj(top, "kernel_path_full_scale", &id)?;
    let kctx = format!("{id}.kernel_path_full_scale");
    check_keys(
        kernel,
        &["before_threads1", "after_threads1", "after_threads2", "interleaved_median_of_medians"],
        &kctx,
    )?;
    // "before" spreads describe the parent commit; validate the shape but
    // keep only the record's own ("after") measurements as points.
    point_from_spread(need_obj(kernel, "before_threads1", &kctx)?, "full", 1, &kctx)?;
    let mut points = vec![
        point_from_spread(need_obj(kernel, "after_threads1", &kctx)?, "full", 1, &kctx)?,
        point_from_spread(need_obj(kernel, "after_threads2", &kctx)?, "full", 2, &kctx)?,
    ];
    if let Some(inter) = kernel.obj("interleaved_median_of_medians") {
        check_keys(
            inter,
            &["before_threads1", "after_threads1", "after_threads2"],
            &format!("{kctx}.interleaved"),
        )?;
    }
    let cont = need_obj(top, "quick_scale_bench0007_continuity", &id)?;
    let cctx = format!("{id}.quick_scale_bench0007_continuity");
    check_keys(cont, &["bench0007_median", "before_threads1", "after_threads1"], &cctx)?;
    point_from_spread(need_obj(cont, "before_threads1", &cctx)?, "quick", 1, &cctx)?;
    points.push(point_from_spread(need_obj(cont, "after_threads1", &cctx)?, "quick", 1, &cctx)?);
    check_sampled_block(need_obj(top, "sampled_full_scale", &id)?, &format!("{id}.sampled"))?;
    Ok(BenchRecord {
        date: need_str(top, "date", &id)?,
        id,
        schema_version: 1,
        points,
        sidecar: Vec::new(),
    })
}

/// BENCH_0007 (legacy, no `schema_version`) and current (`schema_version:
/// 2`) probe output: one run spread at one scale.
fn parse_probe_record(top: &Object, version: u32) -> Result<BenchRecord, RecordError> {
    let id = need_str(top, "id", "record")?;
    let mut allowed = vec![
        "id",
        "date",
        "change",
        "method",
        "bench",
        "workers",
        "scale",
        "scale_seed",
        "probe_detailed_throughput_minstr_per_sec",
        "sampled",
    ];
    if version >= 2 {
        allowed.push("schema_version");
        allowed.push("detail_threads");
    }
    check_keys(top, &allowed, &id)?;
    let scale = need_str(top, "scale", &id)?;
    let detail_threads = match top.u64("detail_threads") {
        Some(t) if version >= 2 => t as u32,
        Some(_) => return Err(err(format!("{id}: detail_threads predates schema_version 2"))),
        None if version >= 2 => {
            return Err(err(format!("{id}: schema_version 2 requires detail_threads")))
        }
        None => 1,
    };
    let tp = need_obj(top, "probe_detailed_throughput_minstr_per_sec", &id)?;
    let ctx = format!("{id}.throughput");
    check_keys(tp, &["runs", "min", "median", "max"], &ctx)?;
    let runs = num_array(tp, "runs", &ctx)?;
    // A probe run that produced no detailed instructions writes an empty
    // spread; the record is valid but contributes no points.
    let points = if runs.is_empty() {
        Vec::new()
    } else {
        vec![point_from_runs(&scale, detail_threads, runs, &ctx)?]
    };
    check_sampled_block(need_obj(top, "sampled", &id)?, &format!("{id}.sampled"))?;
    Ok(BenchRecord {
        date: need_str(top, "date", &id)?,
        id,
        schema_version: version,
        points,
        sidecar: Vec::new(),
    })
}

/// Parses one BENCH record of any generation, strictly: the shape is
/// detected from its discriminating keys, then every key must belong to
/// that generation's schema.
pub fn parse_record(text: &str) -> Result<BenchRecord, RecordError> {
    let value = Value::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
    let Value::Obj(top) = value else {
        return Err(err("top level is not an object"));
    };
    if let Some(v) = top.num("schema_version") {
        if v != 2.0 {
            return Err(err(format!("unsupported schema_version {v}")));
        }
        return parse_probe_record(&top, 2);
    }
    if top.get("kernel_path_full_scale").is_some() {
        return parse_kernel_record(&top);
    }
    if top.get("campaign_timing_sidecar").is_some() || top.get("bench").is_none() {
        return parse_ab_record(&top);
    }
    parse_probe_record(&top, 1)
}

/// One baseline-vs-current comparison in the verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Baseline record id.
    pub baseline_id: String,
    /// Workload scale compared at.
    pub scale: String,
    /// Detail threads compared at.
    pub detail_threads: u32,
    /// The baseline's min-over-runs (its observed noise floor).
    pub baseline_min: f64,
    /// The baseline's median, for context.
    pub baseline_median: f64,
    /// The current run's median.
    pub current_median: f64,
    /// `current_median` relative to `baseline_min`, in percent.
    pub delta_percent: f64,
    /// True when the current median fell below the baseline noise floor
    /// by more than the drift band.
    pub regression: bool,
}

/// The gate's overall verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Every comparable point is within the drift band.
    Ok,
    /// At least one comparable point regressed beyond the band.
    Regression,
    /// No baseline point matched the current run's (scale, threads).
    NoComparableBaseline,
}

impl Verdict {
    /// The verdict's wire tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Ok => "ok",
            Verdict::Regression => "regression",
            Verdict::NoComparableBaseline => "no-comparable-baseline",
        }
    }
}

/// Compares a current probe record against the baseline series.
///
/// For every baseline point matching one of the current record's
/// `(scale, detail_threads)` points, the current *median* must stay
/// above the baseline *min-over-runs* minus the documented drift band —
/// the noise-aware statistic of `docs/PERFORMANCE.md`: a single loud
/// neighbor can push any one sample down 25%, but the typical current
/// run falling below even the baseline's worst historical sample by more
/// than that is a real regression.
pub fn compare(current: &BenchRecord, baselines: &[BenchRecord]) -> (Vec<Comparison>, Verdict) {
    let mut comparisons = Vec::new();
    for cur in &current.points {
        for baseline in baselines {
            for point in &baseline.points {
                if point.scale != cur.scale || point.detail_threads != cur.detail_threads {
                    continue;
                }
                let floor = point.min * (1.0 - DRIFT_BAND_PERCENT / 100.0);
                comparisons.push(Comparison {
                    baseline_id: baseline.id.clone(),
                    scale: cur.scale.clone(),
                    detail_threads: cur.detail_threads,
                    baseline_min: point.min,
                    baseline_median: point.median,
                    current_median: cur.median,
                    delta_percent: 100.0 * (cur.median - point.min) / point.min,
                    regression: cur.median < floor,
                });
            }
        }
    }
    let verdict = if comparisons.is_empty() {
        Verdict::NoComparableBaseline
    } else if comparisons.iter().any(|c| c.regression) {
        Verdict::Regression
    } else {
        Verdict::Ok
    };
    (comparisons, verdict)
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Serializes the machine-readable verdict document the CI step archives.
pub fn verdict_json(
    current: &BenchRecord,
    comparisons: &[Comparison],
    verdict: &Verdict,
    sidecar_cells: usize,
) -> String {
    let mut doc = Object::new();
    doc.set("schema_version", Value::Num(1.0));
    doc.set("verdict", Value::Str(verdict.tag().to_string()));
    doc.set("band_percent", Value::Num(DRIFT_BAND_PERCENT));
    doc.set("current_id", Value::Str(current.id.clone()));
    let points = current
        .points
        .iter()
        .map(|p| {
            let mut o = Object::new();
            o.set("scale", Value::Str(p.scale.clone()));
            o.set("detail_threads", Value::Num(p.detail_threads as f64));
            o.set("min", Value::Num(round2(p.min)));
            o.set("median", Value::Num(round2(p.median)));
            o.set("max", Value::Num(round2(p.max)));
            Value::Obj(o)
        })
        .collect();
    doc.set("current_points", Value::Arr(points));
    let rows = comparisons
        .iter()
        .map(|c| {
            let mut o = Object::new();
            o.set("baseline", Value::Str(c.baseline_id.clone()));
            o.set("scale", Value::Str(c.scale.clone()));
            o.set("detail_threads", Value::Num(c.detail_threads as f64));
            o.set("baseline_min", Value::Num(round2(c.baseline_min)));
            o.set("baseline_median", Value::Num(round2(c.baseline_median)));
            o.set("current_median", Value::Num(round2(c.current_median)));
            o.set("delta_percent", Value::Num(round2(c.delta_percent)));
            o.set("regression", Value::Bool(c.regression));
            Value::Obj(o)
        })
        .collect();
    doc.set("comparisons", Value::Arr(rows));
    doc.set("informational_sidecar_cells", Value::Num(sidecar_cells as f64));
    format!("{}\n", Value::Obj(doc).to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BENCH_0006: &str = include_str!("../../../BENCH_0006.json");
    const BENCH_0007: &str = include_str!("../../../BENCH_0007.json");
    const BENCH_0008: &str = include_str!("../../../BENCH_0008.json");

    #[test]
    fn committed_series_parses() {
        let r6 = parse_record(BENCH_0006).unwrap();
        assert_eq!(r6.id, "BENCH_0006");
        assert_eq!(r6.schema_version, 0);
        // post-refactor quick + full spreads.
        assert_eq!(r6.points.len(), 2);
        assert_eq!(r6.points[0].scale, "quick");
        assert_eq!(r6.points[1].scale, "full");
        assert_eq!(r6.sidecar.len(), 6);
        assert_eq!(r6.sidecar[0].kind, "reference");
        assert_eq!(r6.sidecar[0].detailed_minstr_per_sec, Some(37.15));

        let r7 = parse_record(BENCH_0007).unwrap();
        assert_eq!(r7.schema_version, 1);
        assert_eq!(r7.points.len(), 1);
        assert_eq!(r7.points[0].scale, "quick");
        assert_eq!(r7.points[0].detail_threads, 1);
        assert_eq!(r7.points[0].runs.len(), 7);
        assert_eq!(r7.points[0].min, 30.0);
        assert_eq!(r7.points[0].median, 31.54);

        let r8 = parse_record(BENCH_0008).unwrap();
        assert_eq!(r8.schema_version, 1);
        // after@full/1, after@full/2, quick continuity after/1.
        assert_eq!(r8.points.len(), 3);
        assert_eq!(r8.points[1].detail_threads, 2);
        assert_eq!(r8.points[2].scale, "quick");
        assert_eq!(r8.points[2].median, 19.22);
    }

    #[test]
    fn aggregates_are_recomputed_from_runs() {
        // BENCH_0007's stored min/median must equal what the parser
        // recomputes from the raw samples.
        let r7 = parse_record(BENCH_0007).unwrap();
        let p = &r7.points[0];
        let mut sorted = p.runs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(p.min, sorted[0]);
        assert_eq!(p.max, sorted[sorted.len() - 1]);
    }

    #[test]
    fn unknown_keys_are_rejected_per_generation() {
        for (text, inject_after) in [
            (BENCH_0006, "\"id\": \"BENCH_0006\","),
            (BENCH_0007, "\"id\":\"BENCH_0007\","),
            (BENCH_0008, "\"id\":\"BENCH_0008\","),
        ] {
            let bad = text.replace(inject_after, &format!("{inject_after}\"surprise_key\":1,"));
            assert_ne!(bad, text, "injection must apply");
            let e = parse_record(&bad).unwrap_err();
            assert!(e.to_string().contains("surprise_key"), "{e}");
        }
        // Nested unknown keys are rejected too.
        let bad = BENCH_0007.replace("\"runs\":[30,", "\"runz\":1,\"runs\":[30,");
        assert!(parse_record(&bad).unwrap_err().to_string().contains("runz"));
    }

    fn probe_v2(median_runs: &str) -> String {
        format!(
            "{{\"schema_version\":2,\"id\":\"BENCH_TEST\",\"date\":\"2026-08-08\",\
             \"method\":\"m\",\"bench\":\"cholesky\",\"workers\":8,\"detail_threads\":1,\
             \"scale\":\"quick\",\"scale_seed\":1,\
             \"probe_detailed_throughput_minstr_per_sec\":{{\"runs\":[{median_runs}],\
             \"min\":1,\"median\":1,\"max\":1}},\
             \"sampled\":{{\"lazy\":{{\"error_percent\":1,\"speedup\":1,\
             \"detail_percent\":1,\"resamples\":0}},\"periodic\":{{\"error_percent\":1,\
             \"speedup\":1,\"detail_percent\":1,\"resamples\":0}}}}}}"
        )
    }

    #[test]
    fn schema_version_2_requires_detail_threads_and_known_keys() {
        let good = probe_v2("30,31,32");
        let r = parse_record(&good).unwrap();
        assert_eq!(r.schema_version, 2);
        assert_eq!(r.points[0].median, 31.0);
        let missing = good.replace("\"detail_threads\":1,", "");
        assert!(parse_record(&missing).unwrap_err().to_string().contains("detail_threads"));
        let unknown = good.replace("\"workers\":8,", "\"workers\":8,\"extra\":true,");
        assert!(parse_record(&unknown).unwrap_err().to_string().contains("extra"));
        let vfuture = good.replace("\"schema_version\":2", "\"schema_version\":3");
        assert!(parse_record(&vfuture).unwrap_err().to_string().contains("schema_version"));
    }

    #[test]
    fn compare_applies_the_drift_band_to_the_baseline_floor() {
        let baselines = vec![parse_record(BENCH_0007).unwrap(), parse_record(BENCH_0008).unwrap()];
        // BENCH_0007 quick floor is 30.0; band floor = 22.5. BENCH_0008's
        // quick continuity floor is 16.83; band floor ≈ 12.6.
        let current = parse_record(&probe_v2("23.0,23.5,24.0")).unwrap();
        let (cmps, verdict) = compare(&current, &baselines);
        assert_eq!(cmps.len(), 2, "quick/1 matches 0007 and 0008, not full-scale points");
        assert_eq!(verdict, Verdict::Ok);
        // Below 22.5 → 0007 flags, 0008 (floor 12.6) does not; overall
        // verdict is regression.
        let slow = parse_record(&probe_v2("20.0,21.0,22.0")).unwrap();
        let (cmps, verdict) = compare(&slow, &baselines);
        assert_eq!(verdict, Verdict::Regression);
        assert!(cmps.iter().any(|c| c.baseline_id == "BENCH_0007" && c.regression));
        assert!(cmps.iter().any(|c| c.baseline_id == "BENCH_0008" && !c.regression));
    }

    #[test]
    fn no_comparable_baseline_is_its_own_verdict() {
        let current = parse_record(&probe_v2("30")).unwrap();
        let (cmps, verdict) = compare(&current, &[]);
        assert!(cmps.is_empty());
        assert_eq!(verdict, Verdict::NoComparableBaseline);
    }

    #[test]
    fn verdict_json_is_machine_readable() {
        let baselines = vec![parse_record(BENCH_0007).unwrap()];
        let current = parse_record(&probe_v2("30,31,32")).unwrap();
        let (cmps, verdict) = compare(&current, &baselines);
        let text = verdict_json(&current, &cmps, &verdict, 0);
        assert!(text.contains("\"verdict\":\"ok\""), "{text}");
        assert!(text.contains("\"band_percent\":25"));
        assert!(text.contains("\"baseline\":\"BENCH_0007\""));
        // And it parses back as JSON.
        assert!(Value::parse(text.trim()).is_ok());
    }
}
