//! Reusable generators for every table and figure of the paper.
//!
//! Each function builds its cell list through the campaign sweep helpers,
//! runs the whole batch across the campaign executor (parallel, cached,
//! deterministic), and formats the outcomes into a [`Table`] plus
//! machine-readable rows — so the per-figure binaries, the `run_all`
//! driver and the `campaign` CLI all hit the same cache entries.

use taskpoint::TaskPointConfig;
use taskpoint_campaign::{sensitivity_configs, CellOutcome, FIG1_NOISE_SEED, SENSITIVITY_THREADS};
use taskpoint_stats::ErrorSummary;
use taskpoint_workloads::Benchmark;
use tasksim::MachineConfig;

use crate::format::{num, Table};
use crate::harness::Harness;

pub use taskpoint_campaign::{SweepPart, HIGH_PERF_THREADS, LOW_POWER_THREADS};

/// One (benchmark, threads) cell of an error/speedup figure.
#[derive(Debug, Clone)]
pub struct FigureCell {
    /// Benchmark of this cell.
    pub bench: Benchmark,
    /// Simulated worker threads.
    pub threads: u32,
    /// Absolute execution-time error in percent.
    pub error_percent: f64,
    /// Wall-clock speedup over the detailed reference.
    pub speedup: f64,
    /// Fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Resamples triggered.
    pub resamples: usize,
}

impl FigureCell {
    fn from_outcome(bench: Benchmark, threads: u32, outcome: &CellOutcome) -> Self {
        let m = outcome.record.metrics.as_eval().expect("error/speedup cell");
        FigureCell {
            bench,
            threads,
            error_percent: m.error_percent,
            speedup: outcome.timing.speedup.unwrap_or(0.0),
            detail_fraction: m.detail_fraction,
            resamples: m.resamples as usize,
        }
    }
}

/// Runs one error/speedup figure (the layout of Figs. 7–10): every
/// benchmark × every thread count under `config` on `machine`, as one
/// parallel campaign batch.
pub fn error_speedup_figure(
    h: &Harness,
    machine: &MachineConfig,
    threads: &[u32],
    config: TaskPointConfig,
) -> (Table, Vec<FigureCell>) {
    let specs = taskpoint_campaign::error_speedup_specs(*h.scale(), machine, threads, config);
    let report = h.run(&specs);

    let mut cells = Vec::new();
    let mut table = Table::new(
        ["benchmark".to_string()]
            .into_iter()
            .chain(threads.iter().map(|t| format!("err%@{t}t")))
            .chain(threads.iter().map(|t| format!("spdup@{t}t"))),
    );
    // Specs are bench-major (campaign emission order); chunk per benchmark.
    let mut outcomes = report.outcomes.iter();
    for bench in Benchmark::ALL {
        let mut errs = Vec::new();
        let mut spds = Vec::new();
        for &t in threads {
            let outcome = outcomes.next().expect("one outcome per spec");
            let cell = FigureCell::from_outcome(bench, t, outcome);
            errs.push(num(cell.error_percent, 2));
            spds.push(num(cell.speedup, 1));
            cells.push(cell);
        }
        table.row([bench.name().to_string()].into_iter().chain(errs).chain(spds));
    }
    // Per-thread-count averages (the paper's "average" bar group).
    let mut avg_errs = Vec::new();
    let mut avg_spds = Vec::new();
    for &t in threads {
        let runs: Vec<(f64, f64)> =
            cells.iter().filter(|c| c.threads == t).map(|c| (c.error_percent, c.speedup)).collect();
        let s = ErrorSummary::from_runs(&runs);
        avg_errs.push(num(s.mean_error_percent, 2));
        avg_spds.push(num(s.mean_speedup, 1));
    }
    table.row(["average".to_string()].into_iter().chain(avg_errs).chain(avg_spds));
    (table, cells)
}

/// Runs a variation figure (the layout of Figs. 1 and 5): per-type
/// normalized IPC boxplots of a detailed 8-thread simulation. `noise`
/// enables the system-noise model (the "native execution" stand-in of
/// Fig. 1).
pub fn variation_figure(h: &Harness, machine: &MachineConfig, noise: bool) -> Table {
    // Shared generator (also behind the CLI's fig1/fig5 sweeps) so both
    // entry points hash to the same cache entries.
    let specs =
        taskpoint_campaign::variation_specs(*h.scale(), machine, noise.then_some(FIG1_NOISE_SEED));
    let report = h.run(&specs);

    let mut table = Table::new([
        "benchmark",
        "p5%",
        "q1%",
        "median%",
        "q3%",
        "p95%",
        "min%",
        "max%",
        "within±5%",
    ]);
    for (bench, outcome) in Benchmark::ALL.into_iter().zip(&report.outcomes) {
        let stats = outcome.record.metrics.as_variation().expect("variation cell");
        table.row([
            bench.name().to_string(),
            num(stats.p5, 1),
            num(stats.q1, 1),
            num(stats.median, 1),
            num(stats.q3, 1),
            num(stats.p95, 1),
            num(stats.min, 1),
            num(stats.max, 1),
            (if stats.whisker_halfwidth() <= 5.0 { "yes" } else { "no" }).to_string(),
        ]);
    }
    table
}

/// Runs one part of the Fig. 6 sensitivity analysis: error and speedup
/// averaged over 32- and 64-thread simulations of the sensitivity set.
/// The whole parameter sweep runs as a single campaign batch.
pub fn sensitivity_sweep(h: &Harness, part: SweepPart) -> Table {
    let label = match part {
        SweepPart::Warmup => "W",
        SweepPart::History => "H",
        SweepPart::Period => "P",
    };
    let configs = sensitivity_configs(part);
    let specs = taskpoint_campaign::sensitivity_specs(*h.scale(), part);
    let report = h.run(&specs);

    let mut table = Table::new([label, "avg error %", "avg speedup"]);
    let per_config = Benchmark::SENSITIVITY_SET.len() * SENSITIVITY_THREADS.len();
    for ((name, _), chunk) in configs.into_iter().zip(report.outcomes.chunks(per_config)) {
        let runs: Vec<(f64, f64)> = chunk
            .iter()
            .map(|o| {
                let m = o.record.metrics.as_eval().expect("sensitivity cell");
                (m.error_percent, o.timing.speedup.unwrap_or(0.0))
            })
            .collect();
        let s = ErrorSummary::from_runs(&runs);
        table.row([name, num(s.mean_error_percent, 2), num(s.mean_speedup, 1)]);
    }
    table
}

/// Runs the adaptive accuracy frontier: for every workload of the
/// `adaptive` sweep, a reference row plus lazy / periodic / three
/// confidence-driven cells / two budget-driven stratified cells. Reading
/// down a workload's rows traces the error/speedup frontier — tighter CI
/// targets (or larger Neyman budgets) spend more detailed instances and
/// buy certified per-cluster confidence, recorded in the `ci max` and
/// `converged` columns; the stratified rows put the two-phase allocator
/// head to head against the adaptive dial at matched detail spend.
pub fn adaptive_frontier(h: &Harness) -> Table {
    let specs = taskpoint_campaign::adaptive_specs(*h.scale());
    let report = h.run(&specs);

    let mut table = Table::new([
        "workload",
        "policy",
        "err%",
        "detail%",
        "detailed",
        "speedup",
        "ci max",
        "converged",
    ]);
    let dash = || "-".to_string();
    let per_workload = 3
        + taskpoint_campaign::ADAPTIVE_TARGETS.len()
        + taskpoint_campaign::STRATIFIED_BUDGETS.len();
    let adaptive_rows = taskpoint_campaign::ADAPTIVE_TARGETS.len();
    for ((bench, _), chunk) in taskpoint_campaign::adaptive_workloads()
        .into_iter()
        .zip(report.outcomes.chunks(per_workload))
    {
        let r = chunk[0].record.metrics.as_reference().expect("reference cell");
        table.row([
            bench.name().to_string(),
            "reference".to_string(),
            num(0.0, 2),
            num(100.0, 1),
            r.detailed_tasks.to_string(),
            num(1.0, 1),
            dash(),
            dash(),
        ]);
        for (i, outcome) in chunk[1..].iter().enumerate() {
            let m = outcome.record.metrics.as_eval().expect("sampled cell");
            let policy = match i {
                0 => "lazy".to_string(),
                1 => "periodic".to_string(),
                _ if i - 2 < adaptive_rows => {
                    let target = taskpoint_campaign::ADAPTIVE_TARGETS[i - 2];
                    format!("adaptive ±{:.0}%@95", 100.0 * target)
                }
                _ => {
                    let budget = taskpoint_campaign::STRATIFIED_BUDGETS[i - 2 - adaptive_rows];
                    format!("stratified {}p/{budget}b", taskpoint_campaign::STRATIFIED_PILOT)
                }
            };
            table.row([
                bench.name().to_string(),
                policy,
                num(m.error_percent, 2),
                num(100.0 * m.detail_fraction, 1),
                m.detailed_tasks.to_string(),
                num(outcome.timing.speedup.unwrap_or(0.0), 1),
                m.ci_max.map(|ci| num(ci, 3)).unwrap_or_else(dash),
                match (m.ci_converged, m.ci_units) {
                    (Some(c), Some(u)) => format!("{c}/{u}"),
                    _ => dash(),
                },
            ]);
        }
    }
    table
}

/// Runs the heterogeneous big.LITTLE comparison: per kernel, the
/// big.LITTLE reference with its per-group IPC split (little cores run at
/// clock divider 2, so their IPC is per *core-local* cycle), a
/// lazy-sampled run on the same machine, and the homogeneous
/// high-performance baseline at the same worker count.
pub fn hetero_figure(h: &Harness) -> Table {
    let specs = taskpoint_campaign::hetero_specs(*h.scale());
    let report = h.run(&specs);

    let mut table = Table::new([
        "workload",
        "machine",
        "policy",
        "cycles",
        "err%",
        "speedup",
        "big ipc",
        "little ipc",
    ]);
    let dash = || "-".to_string();
    for (bench, chunk) in
        taskpoint_campaign::HETERO_KERNELS.into_iter().zip(report.outcomes.chunks(3))
    {
        let href = chunk[0].record.metrics.as_reference().expect("hetero reference cell");
        let group_ipc = |name: &str| {
            href.groups
                .as_deref()
                .unwrap_or_default()
                .iter()
                .find(|g| g.name == name)
                .map(|g| {
                    let busy_cycles = g.busy_ticks / g.clock_divider as u64;
                    num(g.instructions as f64 / busy_cycles.max(1) as f64, 2)
                })
                .unwrap_or_else(dash)
        };
        table.row([
            bench.name().to_string(),
            "big.LITTLE".to_string(),
            "reference".to_string(),
            href.total_cycles.to_string(),
            num(0.0, 2),
            num(1.0, 1),
            group_ipc("big"),
            group_ipc("little"),
        ]);
        let m = chunk[1].record.metrics.as_eval().expect("sampled cell");
        table.row([
            bench.name().to_string(),
            "big.LITTLE".to_string(),
            "lazy".to_string(),
            m.predicted_cycles.to_string(),
            num(m.error_percent, 2),
            num(chunk[1].timing.speedup.unwrap_or(0.0), 1),
            dash(),
            dash(),
        ]);
        let base = chunk[2].record.metrics.as_reference().expect("baseline reference cell");
        table.row([
            bench.name().to_string(),
            "high-perf".to_string(),
            "reference".to_string(),
            base.total_cycles.to_string(),
            dash(),
            dash(),
            dash(),
            dash(),
        ]);
    }
    table
}

/// Generates Table I: the benchmark inventory with *measured* detailed
/// simulation wall times at 1 and 64 threads.
pub fn table1(h: &Harness) -> Table {
    let specs = taskpoint_campaign::table1_specs(*h.scale());
    let report = h.run(&specs);

    let mut table =
        Table::new(["benchmark", "types", "instances", "sim 1t [s]", "sim 64t [s]", "property"]);
    // Specs are bench-major with threads [1, 64] per benchmark.
    for (bench, pair) in Benchmark::ALL.into_iter().zip(report.outcomes.chunks(2)) {
        let info = bench.info();
        table.row([
            info.name.to_string(),
            info.task_types.to_string(),
            info.task_instances.to_string(),
            num(pair[0].timing.wall_seconds, 2),
            num(pair[1].timing.wall_seconds, 2),
            info.property.to_string(),
        ]);
    }
    table
}

/// Generates Table II: the two machine configurations.
pub fn table2() -> Table {
    let hp = MachineConfig::high_performance();
    let lp = MachineConfig::low_power();
    let mut table = Table::new(["parameter", "high-perf.", "low-power"]);
    table.row([
        "reorder-buffer size".to_string(),
        hp.core.rob_size.to_string(),
        lp.core.rob_size.to_string(),
    ]);
    table.row([
        "issue width".to_string(),
        hp.core.issue_width.to_string(),
        lp.core.issue_width.to_string(),
    ]);
    table.row([
        "commit rate".to_string(),
        hp.core.commit_width.to_string(),
        lp.core.commit_width.to_string(),
    ]);
    table.row([
        "cache line size".to_string(),
        format!("{} B", hp.line_size),
        format!("{} B", lp.line_size),
    ]);
    let cache_desc = |m: &MachineConfig, name: &str| {
        m.caches
            .iter()
            .find(|c| c.name == name)
            .map(|c| {
                format!(
                    "{} kB {} {} cyc {}-way",
                    c.size_bytes / 1024,
                    if c.shared { "shared" } else { "private" },
                    c.latency,
                    c.associativity
                )
            })
            .unwrap_or_else(|| "none".to_string())
    };
    for level in ["L1", "L2", "L3"] {
        table.row([format!("{level} cache"), cache_desc(&hp, level), cache_desc(&lp, level)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_workloads::ScaleConfig;

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let s = t.render();
        assert!(s.contains("168"));
        assert!(s.contains("40"));
        assert!(s.contains("20480 kB shared"));
        assert!(s.contains("none"));
    }

    #[test]
    fn error_speedup_layout() {
        // One tiny cell through the campaign plumbing (quick scale; the
        // full figure matrix belongs to the figure binaries, not unit
        // tests).
        let h = Harness::in_memory(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let cell = h.cell(Benchmark::Spmv, &machine, 2, TaskPointConfig::lazy());
        assert!(cell.outcome.error_percent >= 0.0);
    }
}
