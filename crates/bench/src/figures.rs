//! Reusable generators for every table and figure of the paper.
//!
//! Each function returns a formatted [`Table`] plus machine-readable rows,
//! so the per-figure binaries and the `run_all` driver share one
//! implementation.

use taskpoint::{SamplingPolicy, TaskPointConfig};
use taskpoint_stats::{normalize_by_group, BoxplotStats, ErrorSummary};
use taskpoint_workloads::Benchmark;
use tasksim::{DetailedOnly, MachineConfig, NoiseModel, Simulation};

use crate::format::{num, Table};
use crate::harness::Harness;

/// Threads used by the high-performance-machine figures (7 and 9).
pub const HIGH_PERF_THREADS: [u32; 4] = [8, 16, 32, 64];
/// Threads used by the low-power-machine figures (8 and 10).
pub const LOW_POWER_THREADS: [u32; 4] = [1, 2, 4, 8];

/// One (benchmark, threads) cell of an error/speedup figure.
#[derive(Debug, Clone)]
pub struct FigureCell {
    /// Benchmark of this cell.
    pub bench: Benchmark,
    /// Simulated worker threads.
    pub threads: u32,
    /// Absolute execution-time error in percent.
    pub error_percent: f64,
    /// Wall-clock speedup over the detailed reference.
    pub speedup: f64,
    /// Fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Resamples triggered.
    pub resamples: usize,
}

/// Runs one error/speedup figure (the layout of Figs. 7–10): every
/// benchmark × every thread count under `config` on `machine`.
pub fn error_speedup_figure(
    h: &mut Harness,
    machine: &MachineConfig,
    threads: &[u32],
    config: TaskPointConfig,
) -> (Table, Vec<FigureCell>) {
    let mut cells = Vec::new();
    let mut table = Table::new(
        ["benchmark".to_string()]
            .into_iter()
            .chain(threads.iter().map(|t| format!("err%@{t}t")))
            .chain(threads.iter().map(|t| format!("spdup@{t}t"))),
    );
    for bench in Benchmark::ALL {
        let mut errs = Vec::new();
        let mut spds = Vec::new();
        for &t in threads {
            let cell = h.cell(bench, machine, t, config);
            errs.push(num(cell.outcome.error_percent, 2));
            spds.push(num(cell.outcome.speedup, 1));
            cells.push(FigureCell {
                bench,
                threads: t,
                error_percent: cell.outcome.error_percent,
                speedup: cell.outcome.speedup,
                detail_fraction: cell.outcome.detail_fraction,
                resamples: cell.stats.resamples.len(),
            });
        }
        table.row([bench.name().to_string()].into_iter().chain(errs).chain(spds));
    }
    // Per-thread-count averages (the paper's "average" bar group).
    let mut avg_errs = Vec::new();
    let mut avg_spds = Vec::new();
    for &t in threads {
        let runs: Vec<(f64, f64)> =
            cells.iter().filter(|c| c.threads == t).map(|c| (c.error_percent, c.speedup)).collect();
        let s = ErrorSummary::from_runs(&runs);
        avg_errs.push(num(s.mean_error_percent, 2));
        avg_spds.push(num(s.mean_speedup, 1));
    }
    table.row(["average".to_string()].into_iter().chain(avg_errs).chain(avg_spds));
    (table, cells)
}

/// Runs a variation figure (the layout of Figs. 1 and 5): per-type
/// normalized IPC boxplots of a detailed 8-thread simulation. `noise`
/// enables the system-noise model (the "native execution" stand-in of
/// Fig. 1).
pub fn variation_figure(h: &mut Harness, machine: &MachineConfig, noise: bool) -> Table {
    let mut table = Table::new([
        "benchmark",
        "p5%",
        "q1%",
        "median%",
        "q3%",
        "p95%",
        "min%",
        "max%",
        "within±5%",
    ]);
    for bench in Benchmark::ALL {
        let program = h.program(bench).clone();
        let mut builder =
            Simulation::builder(&program, machine.clone()).workers(8).collect_reports(true);
        if noise {
            builder = builder.noise(NoiseModel::native_execution(0xF161));
        }
        let result = builder.build().run(&mut DetailedOnly);
        let samples: Vec<(u32, f64)> = result
            .reports
            .iter()
            .filter(|r| r.instructions > 0)
            .map(|r| (r.type_id.0, r.ipc()))
            .collect();
        let deviations = normalize_by_group(samples);
        let stats =
            BoxplotStats::from_samples(&deviations).expect("benchmark produced no IPC samples");
        table.row([
            bench.name().to_string(),
            num(stats.p5, 1),
            num(stats.q1, 1),
            num(stats.median, 1),
            num(stats.q3, 1),
            num(stats.p95, 1),
            num(stats.min, 1),
            num(stats.max, 1),
            (if stats.whisker_halfwidth() <= 5.0 { "yes" } else { "no" }).to_string(),
        ]);
    }
    table
}

/// Which parameter Fig. 6 sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPart {
    /// Fig. 6a: warmup size W (H=10, P=∞).
    Warmup,
    /// Fig. 6b: history size H (W=2, P=∞).
    History,
    /// Fig. 6c: sampling period P (W=2, H=4).
    Period,
}

/// Runs one part of the Fig. 6 sensitivity analysis: error and speedup
/// averaged over 32- and 64-thread simulations of the sensitivity set.
pub fn sensitivity_sweep(h: &mut Harness, part: SweepPart) -> Table {
    let machine = MachineConfig::high_performance();
    let threads = [32u32, 64];
    let (label, configs): (&str, Vec<(String, TaskPointConfig)>) = match part {
        SweepPart::Warmup => (
            "W",
            (0..=10u64)
                .map(|w| (w.to_string(), TaskPointConfig::lazy().with_warmup(w).with_history(10)))
                .collect(),
        ),
        SweepPart::History => (
            "H",
            (1..=10usize)
                .map(|hh| (hh.to_string(), TaskPointConfig::lazy().with_history(hh)))
                .collect(),
        ),
        SweepPart::Period => (
            "P",
            [10u64, 25, 50, 100, 250, 500, 1000]
                .into_iter()
                .map(|p| {
                    (
                        p.to_string(),
                        TaskPointConfig::periodic()
                            .with_policy(SamplingPolicy::Periodic { period: p }),
                    )
                })
                .collect(),
        ),
    };
    let mut table = Table::new([label, "avg error %", "avg speedup"]);
    for (name, config) in configs {
        let mut runs = Vec::new();
        for bench in Benchmark::SENSITIVITY_SET {
            for &t in &threads {
                let cell = h.cell(bench, &machine, t, config);
                runs.push((cell.outcome.error_percent, cell.outcome.speedup));
            }
        }
        let s = ErrorSummary::from_runs(&runs);
        table.row([name, num(s.mean_error_percent, 2), num(s.mean_speedup, 1)]);
    }
    table
}

/// Generates Table I: the benchmark inventory with *measured* detailed
/// simulation wall times at 1 and 64 threads.
pub fn table1(h: &mut Harness) -> Table {
    let machine = MachineConfig::high_performance();
    let mut table =
        Table::new(["benchmark", "types", "instances", "sim 1t [s]", "sim 64t [s]", "property"]);
    for bench in Benchmark::ALL {
        let info = bench.info();
        let r1 = h.reference(bench, &machine, 1);
        let r64 = h.reference(bench, &machine, 64);
        table.row([
            info.name.to_string(),
            info.task_types.to_string(),
            info.task_instances.to_string(),
            num(r1.wall_seconds, 2),
            num(r64.wall_seconds, 2),
            info.property.to_string(),
        ]);
    }
    table
}

/// Generates Table II: the two machine configurations.
pub fn table2() -> Table {
    let hp = MachineConfig::high_performance();
    let lp = MachineConfig::low_power();
    let mut table = Table::new(["parameter", "high-perf.", "low-power"]);
    table.row([
        "reorder-buffer size".to_string(),
        hp.core.rob_size.to_string(),
        lp.core.rob_size.to_string(),
    ]);
    table.row([
        "issue width".to_string(),
        hp.core.issue_width.to_string(),
        lp.core.issue_width.to_string(),
    ]);
    table.row([
        "commit rate".to_string(),
        hp.core.commit_width.to_string(),
        lp.core.commit_width.to_string(),
    ]);
    table.row([
        "cache line size".to_string(),
        format!("{} B", hp.line_size),
        format!("{} B", lp.line_size),
    ]);
    let cache_desc = |m: &MachineConfig, name: &str| {
        m.caches
            .iter()
            .find(|c| c.name == name)
            .map(|c| {
                format!(
                    "{} kB {} {} cyc {}-way",
                    c.size_bytes / 1024,
                    if c.shared { "shared" } else { "private" },
                    c.latency,
                    c.associativity
                )
            })
            .unwrap_or_else(|| "none".to_string())
    };
    for level in ["L1", "L2", "L3"] {
        table.row([format!("{level} cache"), cache_desc(&hp, level), cache_desc(&lp, level)]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_workloads::ScaleConfig;

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        let s = t.render();
        assert!(s.contains("168"));
        assert!(s.contains("40"));
        assert!(s.contains("20480 kB shared"));
        assert!(s.contains("none"));
    }

    #[test]
    fn error_speedup_layout() {
        // One tiny cell sweep to validate plumbing (quick scale, 1 bench
        // would need filtering; run 2 threads over the suite is too slow
        // for unit tests, so restrict to the smallest benchmark by hand).
        let mut h = Harness::new(ScaleConfig::quick());
        let machine = MachineConfig::low_power();
        let cell = h.cell(Benchmark::Spmv, &machine, 2, TaskPointConfig::lazy());
        assert!(cell.outcome.error_percent >= 0.0);
    }
}
