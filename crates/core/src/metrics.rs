//! Accuracy and speed metrics for sampled-vs-detailed comparisons.

use serde::{Deserialize, Serialize};
use taskpoint_stats::{relative_error_percent, speedup};
use tasksim::SimResult;

/// The two numbers the paper reports per (benchmark, threads, policy) cell:
/// execution-time error and simulation speedup, plus supporting detail.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentOutcome {
    /// Absolute percent error of the sampled run's predicted execution
    /// time against the detailed reference.
    pub error_percent: f64,
    /// Wall-clock speedup of the sampled run over the detailed reference.
    pub speedup: f64,
    /// Predicted total cycles (sampled run).
    pub predicted_cycles: u64,
    /// Reference total cycles (full detailed run).
    pub reference_cycles: u64,
    /// Host seconds of the sampled run.
    pub sampled_wall_seconds: f64,
    /// Host seconds of the reference run.
    pub reference_wall_seconds: f64,
    /// Fraction of instructions the sampled run simulated in detail.
    pub detail_fraction: f64,
}

impl ExperimentOutcome {
    /// Computes the outcome from a sampled run and its detailed reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference simulated zero cycles or zero wall time.
    pub fn compare(sampled: &SimResult, reference: &SimResult) -> Self {
        assert!(reference.total_cycles > 0, "empty reference run");
        Self {
            error_percent: relative_error_percent(
                sampled.total_cycles as f64,
                reference.total_cycles as f64,
            ),
            speedup: speedup(reference.wall_seconds.max(1e-9), sampled.wall_seconds.max(1e-9)),
            predicted_cycles: sampled.total_cycles,
            reference_cycles: reference.total_cycles,
            sampled_wall_seconds: sampled.wall_seconds,
            reference_wall_seconds: reference.wall_seconds,
            detail_fraction: sampled.detail_fraction(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, wall: f64, detailed_instr: u64, fast_instr: u64) -> SimResult {
        SimResult {
            total_cycles: cycles,
            wall_seconds: wall,
            detailed_tasks: 0,
            fast_tasks: 0,
            detailed_instructions: detailed_instr,
            fast_instructions: fast_instr,
            reports: vec![],
            invalidations: 0,
            dram_accesses: 0,
            private_cache: vec![],
            shared_cache: vec![],
            workers: 1,
            groups: vec![],
            parallel_epochs: Default::default(),
            cycle_accounts: vec![],
            task_latency: Default::default(),
        }
    }

    #[test]
    fn compare_computes_error_and_speedup() {
        let sampled = result(1020, 0.5, 10, 90);
        let reference = result(1000, 10.0, 100, 0);
        let o = ExperimentOutcome::compare(&sampled, &reference);
        assert!((o.error_percent - 2.0).abs() < 1e-9);
        assert!((o.speedup - 20.0).abs() < 1e-9);
        assert!((o.detail_fraction - 0.1).abs() < 1e-9);
        assert_eq!(o.predicted_cycles, 1020);
        assert_eq!(o.reference_cycles, 1000);
    }

    #[test]
    #[should_panic(expected = "empty reference")]
    fn empty_reference_rejected() {
        let sampled = result(10, 0.1, 1, 0);
        let reference = result(0, 0.1, 1, 0);
        let _ = ExperimentOutcome::compare(&sampled, &reference);
    }
}
