//! Per-task-type sample histories.
//!
//! TaskPoint keeps, for every task type, two FIFO vectors of the IPCs of
//! the most recently simulated task instances (paper §III-B):
//!
//! * the **history of valid samples** — instances simulated in detail
//!   *after* warmup, i.e. with warm micro-architectural state; this is the
//!   history fast-forwarding normally draws from, and it is discarded on
//!   every resampling;
//! * the **history of all samples** — every instance simulated in detail,
//!   warmed or not; the fallback for *rare task types* that never fill
//!   their valid history within a sampling interval.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A bounded FIFO of per-instance IPC samples with O(1) mean maintenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SampleHistory {
    samples: VecDeque<f64>,
    capacity: usize,
    sum: f64,
}

impl SampleHistory {
    /// Creates a history holding at most `capacity` samples (the paper's
    /// parameter `H`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "history capacity must be positive");
        Self { samples: VecDeque::with_capacity(capacity), capacity, sum: 0.0 }
    }

    /// Adds a sample; the oldest sample is evicted once the history is at
    /// capacity. Non-finite or non-positive IPCs are ignored (a zero-length
    /// or zero-instruction task carries no timing information).
    pub fn push(&mut self, ipc: f64) {
        if !ipc.is_finite() || ipc <= 0.0 {
            return;
        }
        if self.samples.len() == self.capacity {
            if let Some(old) = self.samples.pop_front() {
                self.sum -= old;
            }
        }
        self.samples.push_back(ipc);
        self.sum += ipc;
    }

    /// Mean IPC over the stored samples, or `None` when empty.
    pub fn mean_ipc(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            // Recompute from scratch occasionally? The incremental sum is
            // exact enough here: histories hold <= tens of f64s.
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Number of stored samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are stored.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// True when the history holds `capacity` samples — the "fully
    /// populated" condition of the sampling-to-fast transition.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.capacity
    }

    /// Discards all samples (resampling clears valid histories).
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
    }

    /// The capacity `H`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The per-type pair of histories.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeHistories {
    /// Valid (warmed) samples; cleared on resampling.
    pub valid: SampleHistory,
    /// All detailed samples, regardless of warmth; never cleared.
    pub all: SampleHistory,
    /// Total instances of this type observed starting (any mode).
    pub seen: u64,
}

impl TypeHistories {
    /// Creates the pair with capacity `h` each.
    pub fn new(h: usize) -> Self {
        Self { valid: SampleHistory::new(h), all: SampleHistory::new(h), seen: 0 }
    }

    /// The IPC fast-forwarding should use (paper §III-B): the mean of the
    /// valid history, else the mean of the all-samples history, else `None`
    /// (which forces resampling).
    pub fn fast_forward_ipc(&self) -> Option<f64> {
        self.valid.mean_ipc().or_else(|| self.all.mean_ipc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_history_has_no_mean() {
        let h = SampleHistory::new(4);
        assert_eq!(h.mean_ipc(), None);
        assert!(h.is_empty());
        assert!(!h.is_full());
    }

    #[test]
    fn mean_of_stored_samples() {
        let mut h = SampleHistory::new(4);
        h.push(1.0);
        h.push(2.0);
        h.push(3.0);
        assert_eq!(h.mean_ipc(), Some(2.0));
        assert_eq!(h.len(), 3);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut h = SampleHistory::new(3);
        for ipc in [1.0, 2.0, 3.0, 4.0] {
            h.push(ipc);
        }
        assert!(h.is_full());
        // 1.0 evicted: mean of (2,3,4).
        assert_eq!(h.mean_ipc(), Some(3.0));
    }

    #[test]
    fn invalid_samples_ignored() {
        let mut h = SampleHistory::new(2);
        h.push(f64::NAN);
        h.push(0.0);
        h.push(-1.0);
        h.push(f64::INFINITY);
        assert!(h.is_empty());
        h.push(2.0);
        assert_eq!(h.mean_ipc(), Some(2.0));
    }

    #[test]
    fn clear_empties_and_resets_sum() {
        let mut h = SampleHistory::new(2);
        h.push(5.0);
        h.clear();
        assert!(h.is_empty());
        h.push(1.0);
        assert_eq!(h.mean_ipc(), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        SampleHistory::new(0);
    }

    #[test]
    fn fast_forward_prefers_valid_history() {
        let mut t = TypeHistories::new(2);
        assert_eq!(t.fast_forward_ipc(), None);
        t.all.push(1.0);
        assert_eq!(t.fast_forward_ipc(), Some(1.0), "falls back to all-history");
        t.valid.push(3.0);
        assert_eq!(t.fast_forward_ipc(), Some(3.0), "valid history wins");
    }

    #[test]
    fn long_streams_keep_exact_mean() {
        let mut h = SampleHistory::new(4);
        for i in 0..100_000 {
            h.push(1.0 + (i % 7) as f64);
        }
        // Last four: i = 99996..99999 -> (1 + i%7)
        let expect: f64 = (99_996..100_000).map(|i| 1.0 + (i % 7) as f64).sum::<f64>() / 4.0;
        assert!((h.mean_ipc().unwrap() - expect).abs() < 1e-9);
    }
}
