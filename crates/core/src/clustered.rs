//! Size-clustered sampling — the paper's proposed future work, implemented.
//!
//! §V-B of the paper diagnoses the two worst benchmarks (freqmine, dedup):
//! one dominant task type whose instances differ wildly in dynamic
//! instruction count and therefore in performance, which a single per-type
//! IPC cannot capture. The authors propose: *"One way to improve the
//! accuracy ... is to classify task instances into classes of similar
//! performance. We envision clustering of instances of the same task type
//! based on micro-architecture independent metrics, e.g. instruction
//! count."*
//!
//! [`ClusteredController`] implements exactly that: the sampling unit is
//! `(task type, size class)` instead of the task type alone, where the
//! size class is the order of magnitude (log₂ bucket, granularity
//! configurable) of the instance's dynamic instruction count — a
//! micro-architecture-independent metric available from the trace before
//! simulation. Everything else (warmup, sampling transition, fast-forward,
//! resampling triggers, policies) is inherited unchanged from
//! [`TaskPointController`] by composition: the controller simply maps each
//! instance to a *virtual type id* before delegating.

use taskpoint_accuracy::ClusterMap;
use taskpoint_runtime::TaskTypeId;
use tasksim::{ExecMode, ModeController, TaskReport, TaskStart};

use crate::config::TaskPointConfig;
use crate::controller::{SamplingStats, TaskPointController};

/// TaskPoint with `(type, size-class)` sampling units.
///
/// The `(type, size-class) → virtual id` bucketing lives in
/// [`ClusterMap`] (shared with the adaptive controller in
/// `taskpoint-accuracy`); this wrapper remaps every instance through it
/// before delegating to the base controller.
#[derive(Debug)]
pub struct ClusteredController {
    inner: TaskPointController,
    map: ClusterMap,
}

impl ClusteredController {
    /// Creates a clustered controller. `granularity` is the width of a
    /// size class in powers of two: 1 = one class per octave of
    /// instruction count (fine), 2 = one class per factor of 4, ...
    ///
    /// # Panics
    ///
    /// Panics if `granularity == 0` or the config is invalid.
    pub fn new(config: TaskPointConfig, granularity: u32) -> Self {
        Self { inner: TaskPointController::new(config), map: ClusterMap::new(granularity) }
    }

    /// The size class of an instance with `instructions` dynamic
    /// instructions.
    pub fn size_class(&self, instructions: u64) -> u32 {
        self.map.size_class(instructions)
    }

    /// The sampling unit an instance maps to: the dense *virtual type id*
    /// assigned to its `(type, size-class)` pair. Ids are handed out in
    /// first-encounter order, so within a run the mapping is stable, dense
    /// (`0..num_clusters`) and injective across distinct pairs — the
    /// invariants the workspace property tests pin down.
    pub fn sampling_unit(&mut self, type_id: TaskTypeId, instructions: u64) -> TaskTypeId {
        self.map.unit(type_id, instructions)
    }

    /// Number of distinct `(type, size-class)` sampling units seen.
    pub fn num_clusters(&self) -> usize {
        self.map.num_clusters()
    }

    /// The telemetry collected so far (virtual type ids in per-type maps).
    pub fn stats(&self) -> &SamplingStats {
        self.inner.stats()
    }

    /// Consumes the controller, returning its telemetry.
    pub fn into_stats(self) -> SamplingStats {
        self.inner.into_stats()
    }
}

impl ModeController for ClusteredController {
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode {
        let mut mapped = *start;
        mapped.type_id = self.map.unit(start.type_id, start.instructions);
        self.inner.mode_for_task(&mapped)
    }

    fn on_task_complete(&mut self, report: &TaskReport) {
        let mut mapped = *report;
        mapped.type_id = self.map.unit(report.type_id, report.instructions);
        self.inner.on_task_complete(&mapped)
    }
}

/// Runs a clustered sampled simulation (the counterpart of
/// [`run_sampled`](crate::simulate::run_sampled)).
pub fn run_clustered(
    program: &taskpoint_runtime::Program,
    machine: tasksim::MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
) -> (tasksim::SimResult, SamplingStats, usize) {
    run_clustered_traced(
        program,
        machine,
        workers,
        config,
        granularity,
        Box::new(tasksim::ProceduralTraces),
    )
}

/// Like [`run_clustered`], with an explicit
/// [`TraceProvider`](tasksim::TraceProvider) for the detailed instruction
/// streams (see [`run_reference_traced`](crate::run_reference_traced)).
///
/// Dispatches on `config.policy` like
/// [`run_sampled_traced`](crate::run_sampled_traced): an adaptive policy
/// runs the clustered confidence-driven controller (use
/// [`run_clustered_adaptive_traced`](crate::run_clustered_adaptive_traced)
/// directly to also get the per-cluster accuracy report).
pub fn run_clustered_traced(
    program: &taskpoint_runtime::Program,
    machine: tasksim::MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
    traces: Box<dyn tasksim::TraceProvider>,
) -> (tasksim::SimResult, SamplingStats, usize) {
    run_clustered_observed(
        program,
        machine,
        workers,
        config,
        granularity,
        traces,
        tasksim::Telemetry::disabled(),
    )
}

/// Like [`run_clustered_traced`], with a [`Telemetry`](tasksim::Telemetry)
/// handle attached to the engine (and to the adaptive controller when the
/// policy dispatches there).
#[allow(clippy::too_many_arguments)]
pub fn run_clustered_observed(
    program: &taskpoint_runtime::Program,
    machine: tasksim::MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
    traces: Box<dyn tasksim::TraceProvider>,
    telemetry: tasksim::Telemetry,
) -> (tasksim::SimResult, SamplingStats, usize) {
    if config.policy.is_adaptive() {
        let (result, stats, _, clusters) = crate::adaptive::run_clustered_adaptive_observed(
            program,
            machine,
            workers,
            config,
            granularity,
            traces,
            telemetry,
        );
        return (result, stats, clusters);
    }
    let mut controller = ClusteredController::new(config, granularity);
    let result = tasksim::Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut controller);
    let clusters = controller.num_clusters();
    (result, controller.into_stats(), clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_runtime::Program;
    use taskpoint_trace::TraceSpec;
    use tasksim::MachineConfig;

    #[test]
    fn size_classes_partition_by_magnitude() {
        let c = ClusteredController::new(TaskPointConfig::lazy(), 2);
        assert_eq!(c.size_class(1), 0);
        assert_eq!(c.size_class(3), 0); // log2=1 -> class 0 at granularity 2
        assert_eq!(c.size_class(4), 1); // log2=2
        assert_eq!(c.size_class(1000), 4); // log2=9
        assert_eq!(c.size_class(1_000_000), 9); // log2=19
    }

    #[test]
    fn same_type_different_sizes_get_distinct_units() {
        let mut c = ClusteredController::new(TaskPointConfig::lazy(), 1);
        let a = c.sampling_unit(TaskTypeId(0), 100);
        let b = c.sampling_unit(TaskTypeId(0), 100_000);
        let a2 = c.sampling_unit(TaskTypeId(0), 110);
        assert_ne!(a, b, "orders of magnitude apart => different units");
        assert_eq!(a, a2, "similar sizes share a unit");
        assert_eq!(c.num_clusters(), 2);
    }

    #[test]
    fn different_types_never_share_units() {
        let mut c = ClusteredController::new(TaskPointConfig::lazy(), 1);
        let a = c.sampling_unit(TaskTypeId(0), 1000);
        let b = c.sampling_unit(TaskTypeId(1), 1000);
        assert_ne!(a, b);
    }

    /// A bimodal single-type workload: the exact pathology of dedup.
    fn bimodal_program() -> Program {
        let mut b = Program::builder("bimodal");
        let ty = b.add_type("work");
        for i in 0..600u64 {
            let instrs = if i % 2 == 0 { 200 } else { 6_400 };
            b.add_task(ty, TraceSpec::synthetic(i, instrs), vec![]);
        }
        b.build()
    }

    #[test]
    fn clustering_beats_plain_taskpoint_on_bimodal_types() {
        let p = bimodal_program();
        let machine = MachineConfig::high_performance();
        let reference = crate::simulate::run_reference(&p, machine.clone(), 4);
        let (plain, _) =
            crate::simulate::run_sampled(&p, machine.clone(), 4, TaskPointConfig::lazy());
        let (clustered, _, clusters) = run_clustered(&p, machine, 4, TaskPointConfig::lazy(), 1);
        let err = |predicted: u64| {
            100.0
                * ((predicted as f64 - reference.total_cycles as f64)
                    / reference.total_cycles as f64)
                    .abs()
        };
        assert!(clusters >= 2, "bimodal sizes must form >= 2 clusters");
        let plain_err = err(plain.total_cycles);
        let clustered_err = err(clustered.total_cycles);
        assert!(
            clustered_err <= plain_err + 0.5,
            "clustering must not hurt: plain {plain_err:.2}% vs clustered {clustered_err:.2}%"
        );
    }

    #[test]
    #[should_panic(expected = "granularity")]
    fn zero_granularity_rejected() {
        ClusteredController::new(TaskPointConfig::lazy(), 0);
    }
}
