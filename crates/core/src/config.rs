//! TaskPoint configuration: the paper's model parameters.

use serde::{Deserialize, Serialize};
use taskpoint_accuracy::{AdaptiveConfig, AdaptiveParams, StratifiedConfig};
use taskpoint_stats::Confidence;

/// When to resample a fast-forwarding simulation (paper §III-C, plus the
/// confidence-driven extension).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SamplingPolicy {
    /// Resample after any thread has fast-forwarded `period` task
    /// instances — the paper's *periodic sampling* with parameter `P`.
    Periodic {
        /// The sampling period `P` (> 0).
        period: u64,
    },
    /// Never resample on a schedule (`P = ∞`) — the paper's *lazy
    /// sampling*. Event-driven triggers (new task type, concurrency change,
    /// empty histories) still apply.
    Lazy,
    /// Confidence-driven sampling: each cluster stays detailed until the
    /// relative confidence interval of its mean IPC is within `target_ci`
    /// at `confidence`, with a `min_samples` floor (and the rare-cluster
    /// cutoff). Runs through the
    /// [`AdaptiveController`](taskpoint_accuracy::AdaptiveController);
    /// `run_sampled` dispatches automatically, or use
    /// [`run_adaptive`](crate::run_adaptive) to also get the per-cluster
    /// [`AccuracyReport`](taskpoint_accuracy::AccuracyReport). A
    /// `target_ci` of `0.0` waives the statistical requirement, collapsing
    /// to a fixed budget of `min_samples` per cluster.
    Adaptive {
        /// Target relative CI half-width (fraction; `0.05` = ±5%).
        target_ci: f64,
        /// Two-sided confidence level of the interval.
        confidence: Confidence,
        /// Minimum detailed samples per cluster before fast-forwarding.
        min_samples: u64,
    },
    /// Two-phase stratified sampling (Ekman-style pilot + Neyman
    /// allocation): every `(type, size-class)` stratum runs
    /// `pilot_samples` detailed instances to estimate its variance, then
    /// the remainder of the total detailed `budget` is allocated
    /// proportional to stratum size × stddev. Runs through the
    /// [`StratifiedController`](taskpoint_accuracy::StratifiedController);
    /// `run_sampled` dispatches automatically, or use
    /// [`run_stratified`](crate::run_stratified) to also get the
    /// per-stratum [`AccuracyReport`](taskpoint_accuracy::AccuracyReport).
    Stratified {
        /// Detailed pilot instances per stratum.
        pilot_samples: u64,
        /// Total detailed-sampling budget (pilot spend included).
        budget: u64,
        /// Confidence level of the reported intervals and the
        /// concurrency-band re-opening test.
        confidence: Confidence,
    },
}

impl SamplingPolicy {
    /// The period as an option (`None` for lazy, adaptive, stratified).
    pub fn period(self) -> Option<u64> {
        match self {
            SamplingPolicy::Periodic { period } => Some(period),
            SamplingPolicy::Lazy
            | SamplingPolicy::Adaptive { .. }
            | SamplingPolicy::Stratified { .. } => None,
        }
    }

    /// The adaptive stopping rule, if this is the adaptive policy.
    pub fn adaptive_params(self) -> Option<AdaptiveParams> {
        match self {
            SamplingPolicy::Adaptive { target_ci, confidence, min_samples } => {
                Some(AdaptiveParams { target_ci, confidence, min_samples })
            }
            _ => None,
        }
    }

    /// True for [`SamplingPolicy::Adaptive`].
    pub fn is_adaptive(self) -> bool {
        matches!(self, SamplingPolicy::Adaptive { .. })
    }

    /// True for [`SamplingPolicy::Stratified`].
    pub fn is_stratified(self) -> bool {
        matches!(self, SamplingPolicy::Stratified { .. })
    }
}

/// An invalid [`TaskPointConfig`] — which field is out of range and why.
///
/// Returned by [`TaskPointConfig::validated`]; the panicking
/// [`TaskPointConfig::validate`] prints the same message. Validating at
/// controller construction turns configurations that would silently
/// mis-sample (a zero history that can never fill, a warmup longer than
/// the history it feeds, a zero period that resamples every instance)
/// into immediate typed errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `H == 0`: no history can ever fill, so sampling never completes.
    ZeroHistory,
    /// `W > H`: the warmup would overflow the all-samples history it
    /// feeds, silently discarding the oldest warmup measurements.
    WarmupExceedsHistory {
        /// Configured `W`.
        warmup: u64,
        /// Configured `H`.
        history: usize,
    },
    /// A periodic period of 0 — every fast-forward would immediately
    /// resample.
    ZeroPeriod,
    /// The concurrency-change ratio must exceed 1 (a ratio of 1 fires on
    /// every EWMA wobble).
    BadConcurrencyRatio {
        /// The rejected ratio.
        ratio: f64,
    },
    /// Invalid adaptive stopping rule.
    Adaptive(taskpoint_accuracy::AdaptiveParamsError),
    /// Invalid stratified pilot/budget configuration.
    Stratified(taskpoint_accuracy::StratifiedConfigError),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroHistory => write!(f, "history size H must be positive"),
            ConfigError::WarmupExceedsHistory { warmup, history } => write!(
                f,
                "warmup W ({warmup}) must not exceed history size H ({history}): extra warmup \
                 samples would silently evict measurements from the all-samples history"
            ),
            ConfigError::ZeroPeriod => write!(f, "sampling period P must be positive"),
            ConfigError::BadConcurrencyRatio { ratio } => {
                write!(f, "concurrency change ratio must exceed 1, got {ratio}")
            }
            ConfigError::Adaptive(e) => write!(f, "{e}"),
            ConfigError::Stratified(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The complete parameter set of the methodology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskPointConfig {
    /// `W`: detailed task instances per thread for warmup at simulation
    /// start (paper's tuned value: 2). Must not exceed `H`.
    pub warmup_instances: u64,
    /// `H`: sample-history size per task type (paper's tuned value: 4).
    /// The adaptive policy does not bound its streaming moments by `H`,
    /// but `H` still sizes the histories of any base-controller fallback.
    pub history_size: usize,
    /// The resampling policy (paper's tuned periodic value: P = 250).
    pub policy: SamplingPolicy,
    /// Rare-type cutoff: stop waiting for unfilled types once every thread
    /// has completed this many detailed instances without meeting one
    /// (paper: 5). The adaptive policy reuses it as the rare-*cluster*
    /// cutoff.
    pub rare_type_cutoff: u64,
    /// Thread-count trigger threshold (paper Fig. 4a): resample when the
    /// smoothed concurrency level drifts by more than this factor from the
    /// level recorded when sampling completed. Smoothing (EWMA over task
    /// starts) keeps transient queue drains at wavefront boundaries from
    /// thrashing resampling; only sustained phase-level parallelism changes
    /// fire. (Implementation parameter; the paper does not specify its
    /// change detector.)
    pub concurrency_change_ratio: f64,
}

impl TaskPointConfig {
    /// The paper's final periodic configuration: W=2, H=4, P=250.
    pub fn periodic() -> Self {
        Self {
            warmup_instances: 2,
            history_size: 4,
            policy: SamplingPolicy::Periodic { period: 250 },
            rare_type_cutoff: 5,
            concurrency_change_ratio: 2.0,
        }
    }

    /// The paper's lazy configuration: W=2, H=4, P=∞.
    pub fn lazy() -> Self {
        Self { policy: SamplingPolicy::Lazy, ..Self::periodic() }
    }

    /// The confidence-driven configuration at the given relative CI
    /// target, with the conventional defaults (95% confidence, 4-sample
    /// floor, paper-tuned W/H/cutoff).
    pub fn adaptive(target_ci: f64) -> Self {
        let params = AdaptiveParams::new(target_ci);
        Self {
            policy: SamplingPolicy::Adaptive {
                target_ci: params.target_ci,
                confidence: params.confidence,
                min_samples: params.min_samples,
            },
            ..Self::periodic()
        }
    }

    /// The two-phase stratified configuration with the given per-stratum
    /// pilot and total detailed budget, at the conventional defaults
    /// (95% confidence, paper-tuned W/H/cutoff).
    pub fn stratified(pilot_samples: u64, budget: u64) -> Self {
        Self {
            policy: SamplingPolicy::Stratified {
                pilot_samples,
                budget,
                confidence: Confidence::C95,
            },
            ..Self::periodic()
        }
    }

    /// Overrides `W`.
    pub fn with_warmup(mut self, w: u64) -> Self {
        self.warmup_instances = w;
        self
    }

    /// Overrides `H`.
    pub fn with_history(mut self, h: usize) -> Self {
        self.history_size = h;
        self
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: SamplingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates parameter ranges, returning a typed error describing the
    /// first violated constraint. Controllers call this at construction,
    /// so an invalid configuration fails immediately instead of silently
    /// mis-sampling.
    pub fn validated(self) -> Result<Self, ConfigError> {
        if self.history_size == 0 {
            return Err(ConfigError::ZeroHistory);
        }
        if self.warmup_instances > self.history_size as u64 {
            return Err(ConfigError::WarmupExceedsHistory {
                warmup: self.warmup_instances,
                history: self.history_size,
            });
        }
        if self.concurrency_change_ratio <= 1.0 {
            return Err(ConfigError::BadConcurrencyRatio { ratio: self.concurrency_change_ratio });
        }
        match self.policy {
            SamplingPolicy::Periodic { period: 0 } => Err(ConfigError::ZeroPeriod),
            SamplingPolicy::Adaptive { .. } => {
                let params = self.policy.adaptive_params().expect("adaptive policy");
                params.validate().map_err(ConfigError::Adaptive)?;
                Ok(self)
            }
            SamplingPolicy::Stratified { .. } => {
                let config = self.stratified_config().expect("stratified policy");
                config.validate().map_err(ConfigError::Stratified)?;
                Ok(self)
            }
            _ => Ok(self),
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if any constraint is
    /// violated (use [`TaskPointConfig::validated`] for the non-panicking
    /// form).
    pub fn validate(&self) {
        if let Err(e) = self.validated() {
            panic!("invalid TaskPoint configuration: {e}");
        }
    }

    /// The adaptive-controller configuration equivalent to this one.
    /// Returns `None` unless the policy is [`SamplingPolicy::Adaptive`].
    pub fn adaptive_config(&self) -> Option<AdaptiveConfig> {
        let params = self.policy.adaptive_params()?;
        Some(AdaptiveConfig {
            warmup_instances: self.warmup_instances,
            rare_cluster_cutoff: self.rare_type_cutoff,
            params,
        })
    }

    /// The stratified-controller configuration equivalent to this one
    /// (octave size classes). Returns `None` unless the policy is
    /// [`SamplingPolicy::Stratified`].
    pub fn stratified_config(&self) -> Option<StratifiedConfig> {
        match self.policy {
            SamplingPolicy::Stratified { pilot_samples, budget, confidence } => {
                Some(StratifiedConfig {
                    warmup_instances: self.warmup_instances,
                    pilot_samples,
                    budget,
                    confidence,
                    granularity: 1,
                })
            }
            _ => None,
        }
    }
}

impl Default for TaskPointConfig {
    /// The paper's recommended default for accuracy-focused studies:
    /// periodic sampling with the tuned parameters.
    fn default() -> Self {
        Self::periodic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = TaskPointConfig::periodic();
        assert_eq!(p.warmup_instances, 2);
        assert_eq!(p.history_size, 4);
        assert_eq!(p.policy, SamplingPolicy::Periodic { period: 250 });
        assert_eq!(p.rare_type_cutoff, 5);
        assert!(p.concurrency_change_ratio > 1.0);
        p.validate();
        let l = TaskPointConfig::lazy();
        assert_eq!(l.policy, SamplingPolicy::Lazy);
        assert_eq!(l.warmup_instances, 2);
    }

    #[test]
    fn adaptive_constructor_and_conversion() {
        let c = TaskPointConfig::adaptive(0.05);
        assert!(c.policy.is_adaptive());
        assert_eq!(c.policy.period(), None);
        c.validate();
        let ac = c.adaptive_config().unwrap();
        assert_eq!(ac.warmup_instances, 2);
        assert_eq!(ac.rare_cluster_cutoff, 5);
        assert_eq!(ac.params.target_ci, 0.05);
        assert_eq!(ac.params.confidence, Confidence::C95);
        assert_eq!(ac.params.min_samples, 4);
        assert_eq!(TaskPointConfig::lazy().adaptive_config(), None);
    }

    #[test]
    fn stratified_constructor_and_conversion() {
        let c = TaskPointConfig::stratified(4, 64);
        assert!(c.policy.is_stratified());
        assert!(!c.policy.is_adaptive());
        assert_eq!(c.policy.period(), None);
        c.validate();
        let sc = c.stratified_config().unwrap();
        assert_eq!(sc.warmup_instances, 2);
        assert_eq!(sc.pilot_samples, 4);
        assert_eq!(sc.budget, 64);
        assert_eq!(sc.confidence, Confidence::C95);
        assert_eq!(sc.granularity, 1);
        assert_eq!(TaskPointConfig::lazy().stratified_config(), None);
        assert_eq!(c.adaptive_config(), None);
    }

    #[test]
    fn invalid_stratified_policy_is_a_typed_error() {
        assert!(matches!(
            TaskPointConfig::stratified(0, 10).validated(),
            Err(ConfigError::Stratified(_))
        ));
        assert!(matches!(
            TaskPointConfig::stratified(8, 4).validated(),
            Err(ConfigError::Stratified(_))
        ));
        assert!(TaskPointConfig::stratified(8, 8).validated().is_ok(), "pilot-only is legal");
    }

    #[test]
    fn builders_override() {
        let c = TaskPointConfig::lazy()
            .with_warmup(7)
            .with_history(9)
            .with_policy(SamplingPolicy::Periodic { period: 10 });
        assert_eq!(c.warmup_instances, 7);
        assert_eq!(c.history_size, 9);
        assert_eq!(c.policy.period(), Some(10));
    }

    #[test]
    fn lazy_has_no_period() {
        assert_eq!(SamplingPolicy::Lazy.period(), None);
        assert_eq!(SamplingPolicy::Periodic { period: 3 }.period(), Some(3));
    }

    #[test]
    fn validated_reports_typed_errors() {
        assert_eq!(
            TaskPointConfig::periodic().with_history(0).validated(),
            Err(ConfigError::ZeroHistory)
        );
        assert_eq!(
            TaskPointConfig::lazy().with_warmup(5).validated(),
            Err(ConfigError::WarmupExceedsHistory { warmup: 5, history: 4 })
        );
        assert!(TaskPointConfig::lazy().with_warmup(5).with_history(5).validated().is_ok());
        assert_eq!(
            TaskPointConfig::periodic()
                .with_policy(SamplingPolicy::Periodic { period: 0 })
                .validated(),
            Err(ConfigError::ZeroPeriod)
        );
        let mut bad_ratio = TaskPointConfig::lazy();
        bad_ratio.concurrency_change_ratio = 1.0;
        assert_eq!(bad_ratio.validated(), Err(ConfigError::BadConcurrencyRatio { ratio: 1.0 }));
        assert!(matches!(
            TaskPointConfig::adaptive(-1.0).validated(),
            Err(ConfigError::Adaptive(_))
        ));
        // Messages stay self-explanatory.
        let e = TaskPointConfig::lazy().with_warmup(9).validated().unwrap_err();
        assert!(e.to_string().contains("W (9)"), "{e}");
    }

    #[test]
    #[should_panic(expected = "H must be positive")]
    fn zero_history_rejected() {
        TaskPointConfig::periodic().with_history(0).validate();
    }

    #[test]
    #[should_panic(expected = "P must be positive")]
    fn zero_period_rejected() {
        TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: 0 }).validate();
    }

    #[test]
    #[should_panic(expected = "must not exceed history")]
    fn warmup_beyond_history_rejected() {
        TaskPointConfig::lazy().with_warmup(10).validate();
    }
}
