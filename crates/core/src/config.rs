//! TaskPoint configuration: the paper's model parameters.

use serde::{Deserialize, Serialize};

/// When to resample a fast-forwarding simulation (paper §III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingPolicy {
    /// Resample after any thread has fast-forwarded `period` task
    /// instances — the paper's *periodic sampling* with parameter `P`.
    Periodic {
        /// The sampling period `P` (> 0).
        period: u64,
    },
    /// Never resample on a schedule (`P = ∞`) — the paper's *lazy
    /// sampling*. Event-driven triggers (new task type, concurrency change,
    /// empty histories) still apply.
    Lazy,
}

impl SamplingPolicy {
    /// The period as an option (`None` for lazy).
    pub fn period(self) -> Option<u64> {
        match self {
            SamplingPolicy::Periodic { period } => Some(period),
            SamplingPolicy::Lazy => None,
        }
    }
}

/// The complete parameter set of the methodology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskPointConfig {
    /// `W`: detailed task instances per thread for warmup at simulation
    /// start (paper's tuned value: 2).
    pub warmup_instances: u64,
    /// `H`: sample-history size per task type (paper's tuned value: 4).
    pub history_size: usize,
    /// The resampling policy (paper's tuned periodic value: P = 250).
    pub policy: SamplingPolicy,
    /// Rare-type cutoff: stop waiting for unfilled types once every thread
    /// has completed this many detailed instances without meeting one
    /// (paper: 5).
    pub rare_type_cutoff: u64,
    /// Thread-count trigger threshold (paper Fig. 4a): resample when the
    /// smoothed concurrency level drifts by more than this factor from the
    /// level recorded when sampling completed. Smoothing (EWMA over task
    /// starts) keeps transient queue drains at wavefront boundaries from
    /// thrashing resampling; only sustained phase-level parallelism changes
    /// fire. (Implementation parameter; the paper does not specify its
    /// change detector.)
    pub concurrency_change_ratio: f64,
}

impl TaskPointConfig {
    /// The paper's final periodic configuration: W=2, H=4, P=250.
    pub fn periodic() -> Self {
        Self {
            warmup_instances: 2,
            history_size: 4,
            policy: SamplingPolicy::Periodic { period: 250 },
            rare_type_cutoff: 5,
            concurrency_change_ratio: 2.0,
        }
    }

    /// The paper's lazy configuration: W=2, H=4, P=∞.
    pub fn lazy() -> Self {
        Self { policy: SamplingPolicy::Lazy, ..Self::periodic() }
    }

    /// Overrides `W`.
    pub fn with_warmup(mut self, w: u64) -> Self {
        self.warmup_instances = w;
        self
    }

    /// Overrides `H`.
    pub fn with_history(mut self, h: usize) -> Self {
        self.history_size = h;
        self
    }

    /// Overrides the policy.
    pub fn with_policy(mut self, policy: SamplingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics if `H == 0` or a periodic period is 0.
    pub fn validate(&self) {
        assert!(self.history_size > 0, "history size H must be positive");
        if let SamplingPolicy::Periodic { period } = self.policy {
            assert!(period > 0, "sampling period P must be positive");
        }
        assert!(self.concurrency_change_ratio > 1.0, "concurrency change ratio must exceed 1");
    }
}

impl Default for TaskPointConfig {
    /// The paper's recommended default for accuracy-focused studies:
    /// periodic sampling with the tuned parameters.
    fn default() -> Self {
        Self::periodic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = TaskPointConfig::periodic();
        assert_eq!(p.warmup_instances, 2);
        assert_eq!(p.history_size, 4);
        assert_eq!(p.policy, SamplingPolicy::Periodic { period: 250 });
        assert_eq!(p.rare_type_cutoff, 5);
        assert!(p.concurrency_change_ratio > 1.0);
        p.validate();
        let l = TaskPointConfig::lazy();
        assert_eq!(l.policy, SamplingPolicy::Lazy);
        assert_eq!(l.warmup_instances, 2);
    }

    #[test]
    fn builders_override() {
        let c = TaskPointConfig::lazy()
            .with_warmup(7)
            .with_history(9)
            .with_policy(SamplingPolicy::Periodic { period: 10 });
        assert_eq!(c.warmup_instances, 7);
        assert_eq!(c.history_size, 9);
        assert_eq!(c.policy.period(), Some(10));
    }

    #[test]
    fn lazy_has_no_period() {
        assert_eq!(SamplingPolicy::Lazy.period(), None);
        assert_eq!(SamplingPolicy::Periodic { period: 3 }.period(), Some(3));
    }

    #[test]
    #[should_panic(expected = "H must be positive")]
    fn zero_history_rejected() {
        TaskPointConfig::periodic().with_history(0).validate();
    }

    #[test]
    #[should_panic(expected = "P must be positive")]
    fn zero_period_rejected() {
        TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: 0 }).validate();
    }
}
