//! High-level entry points: run a program sampled, detailed, or both.

use taskpoint_runtime::Program;
use tasksim::{DetailedOnly, MachineConfig, SimResult, Simulation, Telemetry, TraceProvider};

use crate::config::TaskPointConfig;
use crate::controller::{SamplingStats, TaskPointController};
use crate::metrics::ExperimentOutcome;

/// Runs the full detailed reference simulation (every task instance through
/// the cycle-level model).
///
/// # Example
///
/// ```
/// use taskpoint::run_reference;
/// use taskpoint_workloads::{Benchmark, ScaleConfig};
/// use tasksim::MachineConfig;
///
/// let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
/// let result = run_reference(&program, MachineConfig::low_power(), 2);
/// assert_eq!(result.detailed_tasks as usize, program.num_instances());
/// ```
pub fn run_reference(program: &Program, machine: MachineConfig, workers: u32) -> SimResult {
    run_reference_traced(program, machine, workers, Box::new(tasksim::ProceduralTraces))
}

/// Like [`run_reference`], with an explicit [`TraceProvider`] for the
/// detailed instruction streams — required for programs converted from
/// externally ingested traces, whose streams live in a
/// [`RecordedTraces`](tasksim::RecordedTraces) bundle rather than in
/// procedural specs.
pub fn run_reference_traced(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    traces: Box<dyn TraceProvider>,
) -> SimResult {
    run_reference_observed(program, machine, workers, traces, Telemetry::disabled())
}

/// Like [`run_reference_traced`], with a [`Telemetry`] handle attached to
/// the engine: a recording handle captures the full detailed schedule
/// (assignments, completions, queue depths) and end-of-run counters.
pub fn run_reference_observed(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    traces: Box<dyn TraceProvider>,
    telemetry: Telemetry,
) -> SimResult {
    Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut DetailedOnly)
}

/// Runs a TaskPoint sampled simulation; returns the simulation result and
/// the controller's telemetry.
pub fn run_sampled(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
) -> (SimResult, SamplingStats) {
    run_sampled_traced(program, machine, workers, config, Box::new(tasksim::ProceduralTraces))
}

/// Like [`run_sampled`], with an explicit [`TraceProvider`] for the
/// detailed instruction streams (see [`run_reference_traced`]).
///
/// Dispatches on `config.policy`: the lazy and periodic policies run the
/// base [`TaskPointController`]; [`SamplingPolicy::Adaptive`](crate::SamplingPolicy::Adaptive)
/// runs the confidence-driven controller (use
/// [`run_adaptive_traced`](crate::run_adaptive_traced) directly to also
/// get the per-cluster accuracy report).
pub fn run_sampled_traced(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
) -> (SimResult, SamplingStats) {
    run_sampled_observed(program, machine, workers, config, traces, Telemetry::disabled())
}

/// Like [`run_sampled_traced`], with a [`Telemetry`] handle attached to
/// the engine (and, for adaptive policies, to the controller's fidelity
/// decisions too).
pub fn run_sampled_observed(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
    telemetry: Telemetry,
) -> (SimResult, SamplingStats) {
    if config.policy.is_adaptive() {
        let (result, stats, _) = crate::adaptive::run_adaptive_observed(
            program, machine, workers, config, traces, telemetry,
        );
        return (result, stats);
    }
    if config.policy.is_stratified() {
        let (result, stats, _) = crate::stratified::run_stratified_observed(
            program, machine, workers, config, traces, telemetry,
        );
        return (result, stats);
    }
    let mut controller = TaskPointController::new(config);
    let result = Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut controller);
    (result, controller.into_stats())
}

/// Runs both a sampled simulation and (or against a provided) detailed
/// reference and reports error and speedup — one cell of the paper's
/// Figs. 7–10.
pub fn evaluate(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    reference: Option<&SimResult>,
) -> (ExperimentOutcome, SamplingStats) {
    let (sampled, stats) = run_sampled(program, machine.clone(), workers, config);
    let outcome = match reference {
        Some(r) => ExperimentOutcome::compare(&sampled, r),
        None => {
            let r = run_reference(program, machine, workers);
            ExperimentOutcome::compare(&sampled, &r)
        }
    };
    (outcome, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_trace::TraceSpec;

    /// Identically shaped compute-bound tasks with private cache-resident
    /// footprints: per-instance IPC variance is tiny, so the per-type mean
    /// is an excellent predictor. (Memory-bound workloads on a saturated
    /// machine are deliberately *not* used here — their steady-state
    /// contention differs from the sampling interval, which is exactly the
    /// bias the evaluation figures quantify.)
    fn uniform_program(n: u64) -> Program {
        let mut b = Program::builder("uniform");
        let ty = b.add_type("work");
        for i in 0..n {
            let trace = TraceSpec::builder()
                .seed(i)
                .instructions(2000)
                .mix(taskpoint_trace::InstructionMix::compute_bound())
                .pattern(taskpoint_trace::AccessPattern::sequential(8))
                .footprint(taskpoint_trace::MemRegion::new(0x1000_0000 + i * 8192, 4096))
                .build();
            b.add_task(ty, trace, vec![]);
        }
        b.build()
    }

    #[test]
    fn sampled_run_is_accurate_on_uniform_work() {
        let p = uniform_program(400);
        let machine = MachineConfig::high_performance();
        let reference = run_reference(&p, machine.clone(), 4);
        let (outcome, stats) = evaluate(&p, machine, 4, TaskPointConfig::lazy(), Some(&reference));
        // Identical-shape tasks: the per-type mean IPC predicts every
        // instance almost perfectly.
        assert!(outcome.error_percent < 3.0, "uniform workload error {}%", outcome.error_percent);
        assert!(stats.fast_tasks > 300, "most tasks fast-forwarded");
        assert!(outcome.detail_fraction < 0.25);
    }

    #[test]
    fn sampled_runs_are_deterministic() {
        let p = uniform_program(100);
        let machine = MachineConfig::tiny_test();
        let (a, _) = run_sampled(&p, machine.clone(), 2, TaskPointConfig::lazy());
        let (b, _) = run_sampled(&p, machine, 2, TaskPointConfig::lazy());
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.detailed_tasks, b.detailed_tasks);
    }

    #[test]
    fn traced_runs_replay_identically_to_procedural() {
        use tasksim::RecordedTraces;
        let p = uniform_program(60);
        let machine = MachineConfig::tiny_test();
        let bundle = RecordedTraces::record_program(&p);
        let procedural = run_reference(&p, machine.clone(), 2);
        let replayed = run_reference_traced(&p, machine.clone(), 2, Box::new(bundle.clone()));
        assert_eq!(replayed.total_cycles, procedural.total_cycles);
        let (a, _) = run_sampled(&p, machine.clone(), 2, TaskPointConfig::lazy());
        let (b, _) = run_sampled_traced(&p, machine, 2, TaskPointConfig::lazy(), Box::new(bundle));
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.detailed_tasks, b.detailed_tasks);
    }

    #[test]
    fn reference_simulates_everything_in_detail() {
        let p = uniform_program(50);
        let r = run_reference(&p, MachineConfig::tiny_test(), 2);
        assert_eq!(r.detailed_tasks, 50);
        assert_eq!(r.fast_tasks, 0);
    }

    #[test]
    fn sampling_works_on_heterogeneous_machines() {
        // The whole sampling path — reference, sampled, comparison — must
        // run unchanged on a big.LITTLE machine, with per-group stats in
        // both results.
        let p = uniform_program(200);
        let machine = MachineConfig::big_little(2, 2);
        let reference = run_reference(&p, machine.clone(), 4);
        assert_eq!(reference.groups.len(), 2);
        assert_eq!(
            reference.groups[0].detailed_tasks + reference.groups[1].detailed_tasks,
            reference.detailed_tasks
        );
        let (outcome, stats) = evaluate(&p, machine, 4, TaskPointConfig::lazy(), Some(&reference));
        assert!(outcome.error_percent.is_finite());
        assert!(stats.fast_tasks > 0, "sampling must fast-forward on hetero machines too");
        // Per-type IPC differs across groups, so sampling error is larger
        // than on a homogeneous machine — but it must stay bounded for
        // identically shaped tasks.
        assert!(outcome.error_percent < 60.0, "hetero error {}%", outcome.error_percent);
    }
}
