//! Confidence-driven adaptive sampling entry points.
//!
//! These wire the [`AdaptiveController`]
//! from `taskpoint-accuracy` into the same run/evaluate shapes as the
//! fixed-budget policies, and additionally surface the per-cluster
//! [`AccuracyReport`] — the configured-vs-achieved confidence picture the
//! campaign layer persists. Sweeping the CI target traces an
//! **error/speedup frontier**: loose targets stop sampling early (fast,
//! less certain), tight targets keep clusters detailed until their mean
//! IPC is pinned down (slower, certified).

use taskpoint_accuracy::{AccuracyReport, AdaptiveController, ClusteredAdaptiveController};
use taskpoint_runtime::Program;
use tasksim::{MachineConfig, SimResult, Simulation, Telemetry, TraceProvider};

use crate::config::TaskPointConfig;
use crate::controller::SamplingStats;

/// Folds an adaptive run's telemetry into the common [`SamplingStats`]
/// shape (the adaptive controller has no global phases or resamples; those
/// logs stay empty).
fn sampling_stats(stats: taskpoint_accuracy::AdaptiveStats) -> SamplingStats {
    SamplingStats {
        phase_log: Vec::new(),
        resamples: Vec::new(),
        valid_samples: stats.valid_samples,
        fast_tasks: stats.fast_tasks,
        detailed_tasks: stats.detailed_tasks,
    }
}

fn adaptive_config(config: &TaskPointConfig) -> taskpoint_accuracy::AdaptiveConfig {
    config
        .adaptive_config()
        .expect("run_adaptive requires a TaskPointConfig with SamplingPolicy::Adaptive")
}

/// Runs a confidence-driven adaptive sampled simulation.
///
/// `config.policy` must be [`SamplingPolicy::Adaptive`](crate::SamplingPolicy::Adaptive).
/// Returns the simulation result, the controller telemetry in the common
/// [`SamplingStats`] shape, and the per-cluster [`AccuracyReport`].
///
/// # Panics
///
/// Panics if the policy is not adaptive or the configuration is invalid.
///
/// # Example
///
/// ```
/// use taskpoint::{run_adaptive, TaskPointConfig};
/// use taskpoint_workloads::{Benchmark, ScaleConfig};
/// use tasksim::MachineConfig;
///
/// let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
/// let (result, stats, accuracy) =
///     run_adaptive(&program, MachineConfig::low_power(), 2, TaskPointConfig::adaptive(0.05));
/// assert!(stats.fast_tasks > 0);
/// assert!(accuracy.units() >= 1);
/// assert!(result.total_cycles > 0);
/// ```
pub fn run_adaptive(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
) -> (SimResult, SamplingStats, AccuracyReport) {
    run_adaptive_traced(program, machine, workers, config, Box::new(tasksim::ProceduralTraces))
}

/// Like [`run_adaptive`], with an explicit [`TraceProvider`] for the
/// detailed instruction streams (see
/// [`run_reference_traced`](crate::run_reference_traced)).
pub fn run_adaptive_traced(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
) -> (SimResult, SamplingStats, AccuracyReport) {
    run_adaptive_observed(program, machine, workers, config, traces, Telemetry::disabled())
}

/// Like [`run_adaptive_traced`], with a [`Telemetry`] handle threaded
/// through both the engine (schedule events, counters) and the adaptive
/// controller (per-cluster fidelity decisions). Pass
/// [`Telemetry::disabled`] for the uninstrumented fast path.
pub fn run_adaptive_observed(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
    telemetry: Telemetry,
) -> (SimResult, SamplingStats, AccuracyReport) {
    let mut controller =
        AdaptiveController::new(adaptive_config(&config)).with_telemetry(telemetry.clone());
    let result = Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut controller);
    let (stats, report) = controller.into_parts();
    (result, sampling_stats(stats), report)
}

/// Adaptive sampling over `(type, size-class)` clusters: the
/// confidence-driven counterpart of [`run_clustered`](crate::run_clustered).
/// Returns the number of clusters formed alongside the accuracy report
/// (whose units are virtual cluster ids).
pub fn run_clustered_adaptive(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
) -> (SimResult, SamplingStats, AccuracyReport, usize) {
    run_clustered_adaptive_traced(
        program,
        machine,
        workers,
        config,
        granularity,
        Box::new(tasksim::ProceduralTraces),
    )
}

/// Like [`run_clustered_adaptive`], with an explicit [`TraceProvider`].
pub fn run_clustered_adaptive_traced(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
    traces: Box<dyn TraceProvider>,
) -> (SimResult, SamplingStats, AccuracyReport, usize) {
    run_clustered_adaptive_observed(
        program,
        machine,
        workers,
        config,
        granularity,
        traces,
        Telemetry::disabled(),
    )
}

/// Like [`run_clustered_adaptive_traced`], with a [`Telemetry`] handle
/// (fidelity events carry virtual cluster unit ids).
#[allow(clippy::too_many_arguments)]
pub fn run_clustered_adaptive_observed(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    granularity: u32,
    traces: Box<dyn TraceProvider>,
    telemetry: Telemetry,
) -> (SimResult, SamplingStats, AccuracyReport, usize) {
    let mut controller = ClusteredAdaptiveController::new(adaptive_config(&config), granularity);
    controller.set_telemetry(telemetry.clone());
    let result = Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut controller);
    let clusters = controller.num_clusters();
    let (stats, report) = controller.into_parts();
    (result, sampling_stats(stats), report, clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_reference, run_sampled};
    use taskpoint_workloads::{Benchmark, ScaleConfig};

    fn program() -> Program {
        Benchmark::Spmv.generate(&ScaleConfig::quick())
    }

    #[test]
    fn adaptive_run_produces_an_accuracy_report() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let (result, stats, report) = run_adaptive(&p, machine, 2, TaskPointConfig::adaptive(0.1));
        assert!(result.total_cycles > 0);
        assert_eq!(stats.detailed_tasks + stats.fast_tasks, p.num_instances() as u64);
        assert!(stats.fast_tasks > 0, "a loose target must fast-forward something");
        assert!(report.units() >= 1);
        assert!(report.converged_units() >= 1);
        for c in &report.clusters {
            assert!(c.samples >= 1 || !c.converged || c.forced);
            if c.converged && !c.forced && c.samples >= 2 {
                // Converged via CI: its interval met the target (or the
                // degenerate waiver; target here is positive).
                assert!(c.rel_ci.unwrap() <= 0.1 + 1e-12, "unit {} ci {:?}", c.unit, c.rel_ci);
            }
        }
    }

    #[test]
    fn tighter_targets_never_sample_less() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let mut prev = 0u64;
        for target in [0.2, 0.05, 0.01] {
            let (result, _, _) =
                run_adaptive(&p, machine.clone(), 2, TaskPointConfig::adaptive(target));
            assert!(
                result.detailed_tasks >= prev,
                "target {target}: {} detailed < looser target's {prev}",
                result.detailed_tasks
            );
            prev = result.detailed_tasks;
        }
    }

    #[test]
    fn adaptive_is_deterministic() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let (a, _, ra) = run_adaptive(&p, machine.clone(), 2, TaskPointConfig::adaptive(0.05));
        let (b, _, rb) = run_adaptive(&p, machine, 2, TaskPointConfig::adaptive(0.05));
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.detailed_tasks, b.detailed_tasks);
        assert_eq!(ra.clusters, rb.clusters);
    }

    #[test]
    fn run_sampled_dispatches_adaptive_policy() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let config = TaskPointConfig::adaptive(0.05);
        let (via_dispatch, _) = run_sampled(&p, machine.clone(), 2, config);
        let (direct, _, _) = run_adaptive(&p, machine, 2, config);
        assert_eq!(via_dispatch.total_cycles, direct.total_cycles);
        assert_eq!(via_dispatch.detailed_tasks, direct.detailed_tasks);
    }

    #[test]
    fn clustered_adaptive_runs_and_counts_clusters() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let (result, stats, report, clusters) =
            run_clustered_adaptive(&p, machine, 2, TaskPointConfig::adaptive(0.1), 1);
        assert!(result.total_cycles > 0);
        assert!(clusters >= 1);
        assert_eq!(report.units(), clusters);
        assert_eq!(stats.detailed_tasks + stats.fast_tasks, p.num_instances() as u64);
    }

    #[test]
    fn run_clustered_dispatches_adaptive_policy() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let config = TaskPointConfig::adaptive(0.1);
        let (via_dispatch, _, dispatch_clusters) =
            crate::clustered::run_clustered(&p, machine.clone(), 2, config, 1);
        let (direct, _, _, direct_clusters) = run_clustered_adaptive(&p, machine, 2, config, 1);
        assert_eq!(via_dispatch.total_cycles, direct.total_cycles);
        assert_eq!(via_dispatch.detailed_tasks, direct.detailed_tasks);
        assert_eq!(dispatch_clusters, direct_clusters);
    }

    #[test]
    fn adaptive_error_stays_reasonable_against_reference() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let reference = run_reference(&p, machine.clone(), 2);
        let (sampled, _, _) = run_adaptive(&p, machine, 2, TaskPointConfig::adaptive(0.05));
        let err = 100.0
            * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
                / reference.total_cycles as f64)
                .abs();
        assert!(err < 50.0, "adaptive quick-scale smoke band: {err:.1}%");
    }

    #[test]
    #[should_panic(expected = "SamplingPolicy::Adaptive")]
    fn non_adaptive_config_rejected() {
        let p = program();
        run_adaptive(&p, MachineConfig::tiny_test(), 2, TaskPointConfig::lazy());
    }
}
