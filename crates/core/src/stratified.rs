//! Two-phase stratified sampling entry points.
//!
//! These wire the [`StratifiedController`] from `taskpoint-accuracy` into
//! the same run/evaluate shapes as the other policies: a pilot phase per
//! `(type, size-class)` stratum estimates the IPC variance, then the
//! remaining detailed budget is Neyman-allocated proportional to stratum
//! size × stddev (see
//! [`neyman_allocate`](taskpoint_accuracy::neyman_allocate)), and
//! converged strata stay concurrency-banded — a sustained parallelism
//! shift re-opens them. Where the adaptive policy turns the CI *target*
//! into a dial, the stratified policy turns the detailed *budget* into
//! one: the error/speedup frontier is traced by the budget directly,
//! which makes it the natural head-to-head baseline at matched detail
//! spend.
//!
//! The controller is primed with the program's instance list before the
//! run, so stratum ids and sizes are fixed in instance-creation order and
//! the resulting [`AccuracyReport`] is identical across worker and
//! detail-thread counts.

use taskpoint_accuracy::{AccuracyReport, StratifiedController};
use taskpoint_runtime::Program;
use tasksim::{MachineConfig, SimResult, Simulation, Telemetry, TraceProvider};

use crate::config::TaskPointConfig;
use crate::controller::SamplingStats;

/// Folds a stratified run's telemetry into the common [`SamplingStats`]
/// shape (no global phases or resamples).
fn sampling_stats(stats: taskpoint_accuracy::AdaptiveStats) -> SamplingStats {
    SamplingStats {
        phase_log: Vec::new(),
        resamples: Vec::new(),
        valid_samples: stats.valid_samples,
        fast_tasks: stats.fast_tasks,
        detailed_tasks: stats.detailed_tasks,
    }
}

fn stratified_config(config: &TaskPointConfig) -> taskpoint_accuracy::StratifiedConfig {
    config
        .stratified_config()
        .expect("run_stratified requires a TaskPointConfig with SamplingPolicy::Stratified")
}

/// Runs a two-phase stratified sampled simulation.
///
/// `config.policy` must be
/// [`SamplingPolicy::Stratified`](crate::SamplingPolicy::Stratified).
/// Returns the simulation result, the controller telemetry in the common
/// [`SamplingStats`] shape, and the per-stratum [`AccuracyReport`]
/// (units are dense `(type, size-class)` ids in instance-creation order).
///
/// # Panics
///
/// Panics if the policy is not stratified or the configuration is
/// invalid.
///
/// # Example
///
/// ```
/// use taskpoint::{run_stratified, TaskPointConfig};
/// use taskpoint_workloads::{Benchmark, ScaleConfig};
/// use tasksim::MachineConfig;
///
/// let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
/// let (result, stats, accuracy) =
///     run_stratified(&program, MachineConfig::low_power(), 2, TaskPointConfig::stratified(4, 64));
/// assert!(stats.fast_tasks > 0);
/// assert!(accuracy.units() >= 1);
/// assert!(result.total_cycles > 0);
/// ```
pub fn run_stratified(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
) -> (SimResult, SamplingStats, AccuracyReport) {
    run_stratified_traced(program, machine, workers, config, Box::new(tasksim::ProceduralTraces))
}

/// Like [`run_stratified`], with an explicit [`TraceProvider`] for the
/// detailed instruction streams (see
/// [`run_reference_traced`](crate::run_reference_traced)).
pub fn run_stratified_traced(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
) -> (SimResult, SamplingStats, AccuracyReport) {
    run_stratified_observed(program, machine, workers, config, traces, Telemetry::disabled())
}

/// Like [`run_stratified_traced`], with a [`Telemetry`] handle threaded
/// through both the engine and the controller (pilot samples, Neyman
/// allocations, convergence and band re-opening all emit fidelity
/// events).
pub fn run_stratified_observed(
    program: &Program,
    machine: MachineConfig,
    workers: u32,
    config: TaskPointConfig,
    traces: Box<dyn TraceProvider>,
    telemetry: Telemetry,
) -> (SimResult, SamplingStats, AccuracyReport) {
    let mut controller =
        StratifiedController::new(stratified_config(&config)).with_telemetry(telemetry.clone());
    controller.prime(program.instances().iter().map(|i| (i.type_id(), i.instructions())));
    let result = Simulation::builder(program, machine)
        .workers(workers)
        .detail_threads(tasksim::detail_threads_from_env())
        .traces(traces)
        .telemetry(telemetry)
        .build()
        .run(&mut controller);
    let (stats, report) = controller.into_parts();
    (result, sampling_stats(stats), report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{run_reference, run_sampled};
    use taskpoint_workloads::{Benchmark, ScaleConfig};

    fn program() -> Program {
        Benchmark::Spmv.generate(&ScaleConfig::quick())
    }

    #[test]
    fn stratified_run_produces_an_accuracy_report() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let (result, stats, report) =
            run_stratified(&p, machine, 2, TaskPointConfig::stratified(4, 64));
        assert!(result.total_cycles > 0);
        assert_eq!(stats.detailed_tasks + stats.fast_tasks, p.num_instances() as u64);
        assert!(stats.fast_tasks > 0, "a bounded budget must fast-forward something");
        assert!(report.units() >= 1);
        assert!(report.converged_units() >= 1);
        assert!(matches!(report.config, taskpoint_accuracy::PolicyConfig::Stratified(_)));
        assert_eq!(report.config.target_ci(), None, "budget-driven policy has no CI target");
    }

    #[test]
    fn bigger_budgets_never_sample_less() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let mut prev = 0u64;
        for budget in [16u64, 64, 256] {
            let (result, _, _) =
                run_stratified(&p, machine.clone(), 2, TaskPointConfig::stratified(4, budget));
            assert!(
                result.detailed_tasks >= prev,
                "budget {budget}: {} detailed < smaller budget's {prev}",
                result.detailed_tasks
            );
            prev = result.detailed_tasks;
        }
    }

    #[test]
    fn stratified_is_deterministic() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let config = TaskPointConfig::stratified(4, 48);
        let (a, _, ra) = run_stratified(&p, machine.clone(), 2, config);
        let (b, _, rb) = run_stratified(&p, machine, 2, config);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.detailed_tasks, b.detailed_tasks);
        assert_eq!(ra.clusters, rb.clusters);
    }

    #[test]
    fn run_sampled_dispatches_stratified_policy() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let config = TaskPointConfig::stratified(4, 48);
        let (via_dispatch, _) = run_sampled(&p, machine.clone(), 2, config);
        let (direct, _, _) = run_stratified(&p, machine, 2, config);
        assert_eq!(via_dispatch.total_cycles, direct.total_cycles);
        assert_eq!(via_dispatch.detailed_tasks, direct.detailed_tasks);
    }

    #[test]
    fn stratified_error_stays_reasonable_against_reference() {
        let p = program();
        let machine = MachineConfig::tiny_test();
        let reference = run_reference(&p, machine.clone(), 2);
        let (sampled, _, _) = run_stratified(&p, machine, 2, TaskPointConfig::stratified(4, 64));
        let err = 100.0
            * ((sampled.total_cycles as f64 - reference.total_cycles as f64)
                / reference.total_cycles as f64)
                .abs();
        assert!(err < 50.0, "stratified quick-scale smoke band: {err:.1}%");
    }

    #[test]
    #[should_panic(expected = "SamplingPolicy::Stratified")]
    fn non_stratified_config_rejected() {
        let p = program();
        run_stratified(&p, MachineConfig::tiny_test(), 2, TaskPointConfig::lazy());
    }
}
