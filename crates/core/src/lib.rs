//! # TaskPoint — sampled simulation of task-based programs
//!
//! A faithful reproduction of *Grass, Rico, Casas, Moreto, Ayguadé:
//! "TaskPoint: Sampled Simulation of Task-Based Programs", ISPASS 2016*.
//!
//! TaskPoint accelerates architectural simulation of dynamically scheduled
//! task-based programs by exploiting the programmer's task decomposition:
//! instances of the same *task type* behave alike, so only a few of them
//! need cycle-level simulation. The rest are *fast-forwarded* at the mean
//! IPC of their type's recent samples (`C_i = I_i / IPC_T`), keeping every
//! thread's progress — and therefore the dynamic schedule — correct.
//!
//! The crate implements the paper's complete mechanism on top of the
//! [`tasksim`] simulator:
//!
//! * per-type **sample histories** (valid + all) of size `H` ([`history`]);
//! * the **warmup → sampling → fast-forward → resampling** state machine
//!   with the rare-task-type cutoff ([`controller`]);
//! * **periodic** (`P`) and **lazy** (`P = ∞`) sampling policies
//!   ([`config`]);
//! * event-driven resampling on new task types, concurrency changes and
//!   empty histories (paper Fig. 4);
//! * the paper's proposed *future work* — clustering instances of a type
//!   by instruction count into classes of similar performance
//!   ([`clustered`]);
//! * **confidence-driven adaptive sampling** ([`adaptive`], built on
//!   [`taskpoint_accuracy`]): a third policy
//!   ([`SamplingPolicy::Adaptive`]) that keeps each cluster detailed until
//!   the relative confidence interval of its mean IPC shrinks below a
//!   target, turning the sample budget into an error/speedup dial;
//! * evaluation plumbing for error/speedup studies ([`metrics`],
//!   [`simulate`]).
//!
//! # Quickstart
//!
//! ```
//! use taskpoint::{run_sampled, TaskPointConfig};
//! use taskpoint_workloads::{Benchmark, ScaleConfig};
//! use tasksim::MachineConfig;
//!
//! let program = Benchmark::Spmv.generate(&ScaleConfig::quick());
//! let (result, stats) = run_sampled(
//!     &program,
//!     MachineConfig::high_performance(),
//!     8,
//!     TaskPointConfig::lazy(),
//! );
//! println!(
//!     "predicted {} cycles, {:.1}% of instructions in detail, {} resamples",
//!     result.total_cycles,
//!     100.0 * result.detail_fraction(),
//!     stats.resamples.len(),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod clustered;
pub mod config;
pub mod controller;
pub mod history;
pub mod metrics;
pub mod simulate;
pub mod stratified;

pub use adaptive::{
    run_adaptive, run_adaptive_observed, run_adaptive_traced, run_clustered_adaptive,
    run_clustered_adaptive_observed, run_clustered_adaptive_traced,
};
pub use clustered::{
    run_clustered, run_clustered_observed, run_clustered_traced, ClusteredController,
};
pub use config::{ConfigError, SamplingPolicy, TaskPointConfig};
pub use controller::{Phase, ResampleCause, SamplingStats, TaskPointController};
pub use history::{SampleHistory, TypeHistories};
pub use metrics::ExperimentOutcome;
pub use simulate::{
    evaluate, run_reference, run_reference_observed, run_reference_traced, run_sampled,
    run_sampled_observed, run_sampled_traced,
};
pub use stratified::{run_stratified, run_stratified_observed, run_stratified_traced};
// Observability handle, re-exported for the same reason.
pub use tasksim::{Telemetry, TelemetryReport};
// The statistical layer underneath the adaptive policy, re-exported so
// downstream crates (campaign, bench) need not depend on
// `taskpoint-accuracy` directly.
pub use taskpoint_accuracy::{
    concurrency_band, neyman_allocate, AccuracyReport, AdaptiveConfig, AdaptiveController,
    AdaptiveParams, BandAccuracy, ClusterAccuracy, ClusterMap, ClusteredAdaptiveController,
    PolicyConfig, StratifiedConfig, StratifiedController, Stratum,
};
pub use taskpoint_stats::Confidence;
