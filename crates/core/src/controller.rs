//! The TaskPoint sampling mechanism (paper §III).
//!
//! [`TaskPointController`] implements `tasksim`'s
//! [`ModeController`] hook and drives the
//! four-phase state machine:
//!
//! ```text
//!  InitialWarmup ──► Sampling ──► FastForward ──► Rewarm ──► Sampling ─► ...
//!     (W/thread)      (fill valid    (per-type      (1/thread,
//!                      histories)     mean IPC)      valid cleared)
//! ```
//!
//! * **Warmup** — the first `W` detailed instances per thread only feed the
//!   all-samples history.
//! * **Sampling** — detailed instances feed both histories; the controller
//!   switches to fast-forward when every observed type's valid history is
//!   full, or when every thread has completed `rare_type_cutoff` instances
//!   without encountering an unfilled (*rare*) type.
//! * **FastForward** — each task runs at its type's history-mean IPC
//!   (`C_i = I_i / IPC_T`); tasks that started in detailed mode finish
//!   detailed and feed only the all-samples history, exactly as in the
//!   paper.
//! * **Resampling** is triggered by the policy (thread fast-forwarded `P`
//!   instances), by the first instance of an unknown type (Fig. 4b), by a
//!   change in the concurrency level (Fig. 4a, tracked in power-of-two
//!   buckets), or by a task whose type has no samples at all. It clears
//!   the valid histories and re-warms one instance per thread.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use taskpoint_runtime::TaskTypeId;
use tasksim::{ExecMode, ModeController, SimMode, TaskReport, TaskStart};

use crate::config::{SamplingPolicy, TaskPointConfig};
use crate::history::TypeHistories;

/// The controller's execution phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Initial warmup: `W` detailed instances per thread.
    InitialWarmup,
    /// Measuring valid samples in detailed mode.
    Sampling,
    /// Fast-forwarding at per-type IPC.
    FastForward,
    /// Re-warming after a resample trigger: one detailed instance per
    /// thread.
    Rewarm,
}

/// Why a resampling was triggered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResampleCause {
    /// Periodic policy: a thread fast-forwarded `P` instances.
    Policy,
    /// First instance of a previously unknown task type (paper Fig. 4b).
    NewTaskType,
    /// The number of concurrently executing threads changed buckets
    /// (paper Fig. 4a).
    ConcurrencyChange,
    /// A task's type had no valid and no all-history samples.
    EmptyHistories,
}

/// Telemetry of one sampled run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SamplingStats {
    /// `(simulated time, new phase)` transitions in order.
    pub phase_log: Vec<(u64, Phase)>,
    /// `(simulated time, cause)` of every resample.
    pub resamples: Vec<(u64, ResampleCause)>,
    /// Valid samples measured, per task type.
    pub valid_samples: HashMap<u32, u64>,
    /// Tasks fast-forwarded.
    pub fast_tasks: u64,
    /// Tasks simulated in detail.
    pub detailed_tasks: u64,
}

impl SamplingStats {
    /// Number of resamples attributed to `cause`.
    pub fn resamples_by(&self, cause: ResampleCause) -> usize {
        self.resamples.iter().filter(|(_, c)| *c == cause).count()
    }
}

/// The TaskPoint mode controller. Create one per simulation run.
#[derive(Debug)]
pub struct TaskPointController {
    config: TaskPointConfig,
    phase: Phase,
    types: HashMap<TaskTypeId, TypeHistories>,
    /// Detailed completions per worker since the current warmup began.
    warmup_done: Vec<u64>,
    warmup_target: u64,
    /// Detailed completions per worker since the last unfilled-type
    /// encounter (rare-type cutoff tracking).
    since_unfilled: Vec<u64>,
    /// Fast-forwarded instances per worker since the last transition
    /// (periodic-policy tracking).
    fast_counts: Vec<u64>,
    /// Smoothed (EWMA) concurrency level observed at task starts.
    conc_ewma: f64,
    /// Smoothed concurrency recorded when sampling completed.
    sampled_conc: f64,
    workers_known: bool,
    stats: SamplingStats,
}

impl TaskPointController {
    /// Creates a controller with the given parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, or if its policy is
    /// [`SamplingPolicy::Adaptive`] — the confidence-driven policy runs
    /// through [`AdaptiveController`](taskpoint_accuracy::AdaptiveController)
    /// (the [`run_sampled`](crate::run_sampled) entry points dispatch on
    /// the policy automatically).
    pub fn new(config: TaskPointConfig) -> Self {
        config.validate();
        assert!(
            !config.policy.is_adaptive(),
            "SamplingPolicy::Adaptive requires the AdaptiveController; use run_adaptive / \
             run_clustered_adaptive, or run_sampled / run_clustered (which dispatch on the \
             policy)"
        );
        assert!(
            !config.policy.is_stratified(),
            "SamplingPolicy::Stratified requires the StratifiedController; use run_stratified, \
             or run_sampled (which dispatches on the policy)"
        );
        let warmup_target = config.warmup_instances;
        let mut controller = Self {
            config,
            phase: Phase::InitialWarmup,
            types: HashMap::new(),
            warmup_done: Vec::new(),
            warmup_target,
            since_unfilled: Vec::new(),
            fast_counts: Vec::new(),
            conc_ewma: 0.0,
            sampled_conc: 0.0,
            workers_known: false,
            stats: SamplingStats::default(),
        };
        controller.stats.phase_log.push((0, Phase::InitialWarmup));
        if warmup_target == 0 {
            // W = 0: no warmup at all — straight to sampling.
            controller.phase = Phase::Sampling;
            controller.stats.phase_log.push((0, Phase::Sampling));
        }
        controller
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The telemetry collected so far.
    pub fn stats(&self) -> &SamplingStats {
        &self.stats
    }

    /// Consumes the controller, returning its telemetry.
    pub fn into_stats(self) -> SamplingStats {
        self.stats
    }

    fn ensure_workers(&mut self, total: u32) {
        if !self.workers_known {
            let n = total as usize;
            self.warmup_done = vec![0; n];
            self.since_unfilled = vec![0; n];
            self.fast_counts = vec![0; n];
            self.workers_known = true;
        }
    }

    /// EWMA smoothing factor for the concurrency level (per task start).
    const CONC_ALPHA: f64 = 1.0 / 64.0;

    fn resample(&mut self, time: u64, cause: ResampleCause) {
        for h in self.types.values_mut() {
            h.valid.clear();
        }
        for w in &mut self.warmup_done {
            *w = 0;
        }
        for f in &mut self.fast_counts {
            *f = 0;
        }
        self.warmup_target = 1;
        self.phase = Phase::Rewarm;
        self.stats.resamples.push((time, cause));
        self.stats.phase_log.push((time, Phase::Rewarm));
    }

    fn enter_sampling(&mut self, time: u64) {
        self.phase = Phase::Sampling;
        for s in &mut self.since_unfilled {
            *s = 0;
        }
        self.stats.phase_log.push((time, Phase::Sampling));
    }

    fn enter_fast_forward(&mut self, time: u64, _concurrency: u32) {
        self.phase = Phase::FastForward;
        self.sampled_conc = self.conc_ewma.max(1.0);
        for f in &mut self.fast_counts {
            *f = 0;
        }
        self.stats.phase_log.push((time, Phase::FastForward));
    }

    /// True when every worker completed the warmup quota.
    fn warmup_complete(&self) -> bool {
        self.warmup_done.iter().all(|&c| c >= self.warmup_target)
    }

    /// True when every observed type's valid history is full (transition
    /// condition 1 of §III-B).
    fn all_types_sampled(&self) -> bool {
        self.types.values().all(|h| h.valid.is_full())
    }

    /// True when the rare-type cutoff expired (transition condition 2).
    fn rare_cutoff_expired(&self) -> bool {
        self.since_unfilled.iter().all(|&c| c >= self.config.rare_type_cutoff)
    }
}

impl ModeController for TaskPointController {
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode {
        self.ensure_workers(start.total_workers);
        let h = self.config.history_size;
        let is_new_type = !self.types.contains_key(&start.type_id);
        let histories = self.types.entry(start.type_id).or_insert_with(|| TypeHistories::new(h));
        histories.seen += 1;

        // Track the smoothed concurrency level at every task start.
        let conc = start.concurrency.max(1) as f64;
        if self.conc_ewma == 0.0 {
            self.conc_ewma = conc;
        } else {
            self.conc_ewma += (conc - self.conc_ewma) * Self::CONC_ALPHA;
        }

        if self.phase != Phase::FastForward {
            return ExecMode::Detailed;
        }

        // Fast-forward phase: check the event-driven resample triggers.
        if is_new_type {
            self.resample(start.time, ResampleCause::NewTaskType);
            return ExecMode::Detailed;
        }
        let ratio = self.config.concurrency_change_ratio;
        if self.conc_ewma > self.sampled_conc * ratio || self.conc_ewma < self.sampled_conc / ratio
        {
            // Sustained parallelism change (e.g. a new program phase):
            // contention differs, so the samples no longer represent
            // steady state. Transient queue drains barely move the EWMA.
            self.resample(start.time, ResampleCause::ConcurrencyChange);
            return ExecMode::Detailed;
        }
        let Some(ipc) = self.types[&start.type_id].fast_forward_ipc() else {
            self.resample(start.time, ResampleCause::EmptyHistories);
            return ExecMode::Detailed;
        };
        // Periodic policy: a thread that already fast-forwarded P instances
        // triggers resampling instead of fast-forwarding another one.
        if let SamplingPolicy::Periodic { period } = self.config.policy {
            let w = start.worker.index();
            if self.fast_counts[w] >= period {
                self.resample(start.time, ResampleCause::Policy);
                return ExecMode::Detailed;
            }
            self.fast_counts[w] += 1;
        }
        ExecMode::Fast { ipc }
    }

    fn on_task_complete(&mut self, report: &TaskReport) {
        match report.mode {
            SimMode::Fast => {
                self.stats.fast_tasks += 1;
            }
            SimMode::Detailed => {
                self.stats.detailed_tasks += 1;
                let ipc = if report.instructions > 0 && report.cycles() > 0 {
                    report.ipc()
                } else {
                    return;
                };
                let histories = self
                    .types
                    .get_mut(&report.type_id)
                    .expect("completed task of unregistered type");
                histories.all.push(ipc);
                let w = report.worker.index();
                match self.phase {
                    Phase::InitialWarmup | Phase::Rewarm => {
                        self.warmup_done[w] += 1;
                        if self.warmup_complete() {
                            self.enter_sampling(report.end);
                        }
                    }
                    Phase::Sampling => {
                        let was_full = histories.valid.is_full();
                        histories.valid.push(ipc);
                        *self.stats.valid_samples.entry(report.type_id.0).or_insert(0) += 1;
                        if was_full {
                            self.since_unfilled[w] += 1;
                        } else {
                            // Encountered an instance of an unfilled type:
                            // the cutoff clock restarts.
                            for s in &mut self.since_unfilled {
                                *s = 0;
                            }
                        }
                        if self.all_types_sampled() || self.rare_cutoff_expired() {
                            self.enter_fast_forward(report.end, report.concurrency);
                        }
                    }
                    Phase::FastForward => {
                        // A task that started detailed before the transition:
                        // all-samples only (already pushed above).
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_runtime::{TaskInstanceId, WorkerId};

    fn start(
        task: u64,
        type_id: u32,
        worker: u32,
        time: u64,
        concurrency: u32,
        total: u32,
    ) -> TaskStart {
        TaskStart {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            instructions: 1000,
            worker: WorkerId(worker),
            time,
            concurrency,
            total_workers: total,
        }
    }

    fn report(
        task: u64,
        type_id: u32,
        worker: u32,
        start_t: u64,
        end: u64,
        mode: SimMode,
    ) -> TaskReport {
        TaskReport {
            task: TaskInstanceId(task),
            type_id: TaskTypeId(type_id),
            worker: WorkerId(worker),
            start: start_t,
            end,
            instructions: 1000,
            mode,
            concurrency: 1,
        }
    }

    /// Drives a 1-worker controller through warmup and sampling of a single
    /// type until it fast-forwards.
    fn drive_to_fast(ctrl: &mut TaskPointController) -> u64 {
        let mut t = 0u64;
        for task in 0..100u64 {
            let s = start(task, 0, 0, t, 1, 1);
            match ctrl.mode_for_task(&s) {
                ExecMode::Detailed => {
                    ctrl.on_task_complete(&report(task, 0, 0, t, t + 500, SimMode::Detailed));
                }
                ExecMode::Fast { .. } => return task,
            }
            t += 500;
        }
        panic!("never reached fast-forward");
    }

    #[test]
    fn warmup_then_sampling_then_fast() {
        // W=2, H=4: 2 warmup + 4 valid samples = 6 detailed, 7th is fast.
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        let first_fast = drive_to_fast(&mut ctrl);
        assert_eq!(first_fast, 6);
        assert_eq!(ctrl.phase(), Phase::FastForward);
        assert_eq!(ctrl.stats().detailed_tasks, 6);
    }

    #[test]
    fn zero_warmup_skips_straight_to_sampling() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy().with_warmup(0));
        assert_eq!(ctrl.phase(), Phase::Sampling);
        let first_fast = drive_to_fast(&mut ctrl);
        assert_eq!(first_fast, 4, "H=4 samples then fast");
    }

    #[test]
    fn fast_ipc_is_history_mean() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        drive_to_fast(&mut ctrl);
        let s = start(99, 0, 0, 10_000, 1, 1);
        match ctrl.mode_for_task(&s) {
            ExecMode::Fast { ipc } => {
                // All detailed tasks had IPC 1000/500 = 2.0.
                assert!((ipc - 2.0).abs() < 1e-12);
            }
            ExecMode::Detailed => panic!("expected fast mode"),
        }
    }

    #[test]
    fn new_type_triggers_resample() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        drive_to_fast(&mut ctrl);
        // First instance of type 1 arrives during fast-forward.
        let s = start(200, 1, 0, 20_000, 1, 1);
        assert_eq!(ctrl.mode_for_task(&s), ExecMode::Detailed);
        assert_eq!(ctrl.phase(), Phase::Rewarm);
        assert_eq!(ctrl.stats().resamples_by(ResampleCause::NewTaskType), 1);
    }

    #[test]
    fn concurrency_change_triggers_resample() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        // 4 workers; drive all through warmup+sampling at concurrency 4.
        let total = 4u32;
        let mut task = 0u64;
        let mut t = 0u64;
        'outer: loop {
            for w in 0..total {
                let s = start(task, 0, w, t, 4, total);
                match ctrl.mode_for_task(&s) {
                    ExecMode::Detailed => {
                        let mut r = report(task, 0, w, t, t + 500, SimMode::Detailed);
                        r.concurrency = 4;
                        ctrl.on_task_complete(&r);
                    }
                    ExecMode::Fast { .. } => break 'outer,
                }
                task += 1;
            }
            t += 500;
        }
        assert_eq!(ctrl.phase(), Phase::FastForward);
        // A single dip to concurrency 1 must NOT fire (transient drain).
        let dip = start(task + 1, 0, 0, t + 1000, 1, total);
        assert!(matches!(ctrl.mode_for_task(&dip), ExecMode::Fast { .. }));
        assert_eq!(ctrl.stats().resamples_by(ResampleCause::ConcurrencyChange), 0);
        // A sustained drop to 1 thread shifts the EWMA and fires.
        let mut fired = false;
        for i in 0..400u64 {
            let s = start(task + 2 + i, 0, 0, t + 2000 + i, 1, total);
            if ctrl.mode_for_task(&s) == ExecMode::Detailed {
                fired = true;
                break;
            }
        }
        assert!(fired, "sustained concurrency change must trigger");
        assert_eq!(ctrl.stats().resamples_by(ResampleCause::ConcurrencyChange), 1);
    }

    #[test]
    fn periodic_policy_resamples_after_p_fast_instances() {
        let config =
            TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: 10 });
        let mut ctrl = TaskPointController::new(config);
        drive_to_fast(&mut ctrl);
        let mut fast = 0;
        let mut task = 1000u64;
        loop {
            let s = start(task, 0, 0, 100_000 + task, 1, 1);
            match ctrl.mode_for_task(&s) {
                ExecMode::Fast { .. } => fast += 1,
                ExecMode::Detailed => break,
            }
            task += 1;
            assert!(fast <= 9, "policy must fire after 10 total");
        }
        // drive_to_fast already consumed one fast slot, so 9 remain.
        assert_eq!(fast, 9);
        assert_eq!(ctrl.phase(), Phase::Rewarm);
        assert_eq!(ctrl.stats().resamples_by(ResampleCause::Policy), 1);
    }

    #[test]
    fn lazy_policy_never_fires_on_count() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        drive_to_fast(&mut ctrl);
        for i in 0..10_000u64 {
            let s = start(10_000 + i, 0, 0, 1_000_000 + i, 1, 1);
            assert!(
                matches!(ctrl.mode_for_task(&s), ExecMode::Fast { .. }),
                "lazy sampling fast-forwards indefinitely"
            );
        }
        assert_eq!(ctrl.stats().resamples.len(), 0);
    }

    #[test]
    fn rewarm_is_one_instance_per_thread() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        drive_to_fast(&mut ctrl);
        // Force a resample via a new type.
        let s = start(500, 1, 0, 50_000, 1, 1);
        assert_eq!(ctrl.mode_for_task(&s), ExecMode::Detailed);
        ctrl.on_task_complete(&report(500, 1, 0, 50_000, 50_500, SimMode::Detailed));
        // One detailed completion re-warms a 1-worker machine.
        assert_eq!(ctrl.phase(), Phase::Sampling);
    }

    #[test]
    fn valid_histories_cleared_on_resample() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        drive_to_fast(&mut ctrl);
        assert!(ctrl.types[&TaskTypeId(0)].valid.is_full());
        let s = start(500, 1, 0, 50_000, 1, 1);
        ctrl.mode_for_task(&s);
        assert!(ctrl.types[&TaskTypeId(0)].valid.is_empty());
        assert!(
            !ctrl.types[&TaskTypeId(0)].all.is_empty(),
            "all-samples history survives resampling"
        );
    }

    #[test]
    fn rare_type_cutoff_unblocks_sampling() {
        // Two types; type 1 appears once during warmup and never again.
        // Sampling must still reach fast-forward via the cutoff.
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        let mut t = 0u64;
        let mut task = 0u64;
        // Warmup: 2 instances of type 1 (so it is observed).
        for _ in 0..2 {
            let s = start(task, 1, 0, t, 1, 1);
            assert_eq!(ctrl.mode_for_task(&s), ExecMode::Detailed);
            ctrl.on_task_complete(&report(task, 1, 0, t, t + 500, SimMode::Detailed));
            task += 1;
            t += 500;
        }
        assert_eq!(ctrl.phase(), Phase::Sampling);
        // Sampling sees only type 0. Type 1's valid history never fills;
        // after H fills of type 0 plus `rare_type_cutoff` more instances,
        // fast-forward must begin.
        let mut detailed = 0;
        loop {
            let s = start(task, 0, 0, t, 1, 1);
            match ctrl.mode_for_task(&s) {
                ExecMode::Detailed => {
                    detailed += 1;
                    ctrl.on_task_complete(&report(task, 0, 0, t, t + 500, SimMode::Detailed));
                }
                ExecMode::Fast { .. } => break,
            }
            task += 1;
            t += 500;
            assert!(detailed < 50, "cutoff never fired");
        }
        // 4 to fill type 0 (first one resets the clock) + 5 cutoff.
        assert_eq!(detailed, 9);
    }

    #[test]
    fn fast_forward_uses_all_history_for_rare_types() {
        let mut ctrl = TaskPointController::new(TaskPointConfig::lazy());
        // Type 1 observed in warmup only -> empty valid, non-empty all.
        let s = start(0, 1, 0, 0, 1, 1);
        ctrl.mode_for_task(&s);
        ctrl.on_task_complete(&report(0, 1, 0, 0, 250, SimMode::Detailed)); // ipc 4.0
        let s = start(1, 1, 0, 250, 1, 1);
        ctrl.mode_for_task(&s);
        ctrl.on_task_complete(&report(1, 1, 0, 250, 500, SimMode::Detailed));
        drive_to_fast(&mut ctrl);
        // A rare type-1 instance in fast mode uses the all-history mean.
        let s = start(900, 1, 0, 90_000, 1, 1);
        match ctrl.mode_for_task(&s) {
            ExecMode::Fast { ipc } => assert!(ipc > 0.0),
            ExecMode::Detailed => panic!("rare type must fast-forward via all-history"),
        }
    }
}
