//! Complete task-based programs.
//!
//! A [`Program`] is what a workload generator produces and what the
//! simulator consumes: the task types, every task instance (with its trace
//! spec and region annotations) and the dependence DAG derived from the
//! annotations.

use crate::depgraph::{DependenceGraph, DependenceGraphBuilder};
use crate::regions::RegionAccess;
use crate::task::{TaskInstance, TaskInstanceId, TaskType, TaskTypeId};
use serde::{Deserialize, Serialize};
use taskpoint_trace::TraceSpec;

/// An immutable task-based program.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Program {
    name: String,
    types: Vec<TaskType>,
    instances: Vec<TaskInstance>,
    graph: DependenceGraph,
}

impl Program {
    /// Starts building a program with the given name.
    pub fn builder(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            types: Vec::new(),
            instances: Vec::new(),
            graph: DependenceGraphBuilder::new(),
        }
    }

    /// The program's name (the benchmark name in the evaluation).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared task types.
    pub fn types(&self) -> &[TaskType] {
        &self.types
    }

    /// All task instances in creation order.
    pub fn instances(&self) -> &[TaskInstance] {
        &self.instances
    }

    /// Looks up one instance.
    pub fn instance(&self, id: TaskInstanceId) -> &TaskInstance {
        &self.instances[id.index()]
    }

    /// Looks up one task type.
    pub fn task_type(&self, id: TaskTypeId) -> &TaskType {
        &self.types[id.0 as usize]
    }

    /// The dependence DAG.
    pub fn graph(&self) -> &DependenceGraph {
        &self.graph
    }

    /// Number of task types (Table I column "# Task Types").
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of task instances (Table I column "# Task Instances").
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Total dynamic instruction count over all instances.
    pub fn total_instructions(&self) -> u64 {
        self.instances.iter().map(TaskInstance::instructions).sum()
    }

    /// Instances per type, indexed by `TaskTypeId`.
    pub fn instances_per_type(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.types.len()];
        for inst in &self.instances {
            counts[inst.type_id().0 as usize] += 1;
        }
        counts
    }

    /// Instructions per type, indexed by `TaskTypeId`. The paper highlights
    /// dominant types (e.g. freqmine's type with 93% of all instructions).
    pub fn instructions_per_type(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.types.len()];
        for inst in &self.instances {
            counts[inst.type_id().0 as usize] += inst.instructions();
        }
        counts
    }
}

/// Builder for [`Program`]. Task ids are assigned densely in creation
/// order, exactly like a sequential OmpSs program creating tasks.
#[derive(Debug)]
pub struct ProgramBuilder {
    name: String,
    types: Vec<TaskType>,
    instances: Vec<TaskInstance>,
    graph: DependenceGraphBuilder,
}

impl ProgramBuilder {
    /// Declares a task type and returns its id.
    pub fn add_type(&mut self, name: impl Into<String>) -> TaskTypeId {
        let id = TaskTypeId(self.types.len() as u32);
        self.types.push(TaskType::new(id, name));
        id
    }

    /// Creates a task instance of `type_id` with the given trace and region
    /// annotations; returns its id. Dependences on earlier tasks are derived
    /// immediately.
    ///
    /// # Panics
    ///
    /// Panics if `type_id` has not been declared.
    pub fn add_task(
        &mut self,
        type_id: TaskTypeId,
        trace: TraceSpec,
        accesses: Vec<RegionAccess>,
    ) -> TaskInstanceId {
        assert!((type_id.0 as usize) < self.types.len(), "undeclared task type {type_id}");
        let id = TaskInstanceId(self.instances.len() as u64);
        self.graph.add_task(id, &accesses);
        self.instances.push(TaskInstance::new(id, type_id, trace, accesses));
        id
    }

    /// Number of instances added so far.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Finalizes the program.
    ///
    /// # Panics
    ///
    /// Panics if any declared type has zero instances (almost certainly a
    /// generator bug that would corrupt Table I counts).
    pub fn build(self) -> Program {
        let program = Program {
            name: self.name,
            types: self.types,
            instances: self.instances,
            graph: self.graph.build(),
        };
        for (i, count) in program.instances_per_type().iter().enumerate() {
            assert!(*count > 0, "task type {} ({}) has no instances", i, program.types[i].name());
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionAccess;
    use taskpoint_trace::MemRegion;

    fn trace(n: u64) -> TraceSpec {
        TraceSpec::synthetic(0, n)
    }

    #[test]
    fn builder_assigns_dense_ids() {
        let mut b = Program::builder("p");
        let t = b.add_type("work");
        let a = b.add_task(t, trace(10), vec![]);
        let c = b.add_task(t, trace(20), vec![]);
        assert_eq!(a, TaskInstanceId(0));
        assert_eq!(c, TaskInstanceId(1));
        let p = b.build();
        assert_eq!(p.num_instances(), 2);
        assert_eq!(p.num_types(), 1);
        assert_eq!(p.total_instructions(), 30);
    }

    #[test]
    fn per_type_statistics() {
        let mut b = Program::builder("p");
        let ta = b.add_type("a");
        let tb = b.add_type("b");
        b.add_task(ta, trace(100), vec![]);
        b.add_task(ta, trace(100), vec![]);
        b.add_task(tb, trace(50), vec![]);
        let p = b.build();
        assert_eq!(p.instances_per_type(), vec![2, 1]);
        assert_eq!(p.instructions_per_type(), vec![200, 50]);
        assert_eq!(p.task_type(ta).name(), "a");
    }

    #[test]
    fn graph_is_wired_through_builder() {
        let mut b = Program::builder("p");
        let t = b.add_type("w");
        let r = MemRegion::new(0x100, 0x10);
        let first = b.add_task(t, trace(1), vec![RegionAccess::output(r)]);
        let second = b.add_task(t, trace(1), vec![RegionAccess::input(r)]);
        let p = b.build();
        assert_eq!(p.graph().predecessors(second), &[first]);
        assert_eq!(p.graph().len(), 2);
    }

    #[test]
    #[should_panic(expected = "undeclared task type")]
    fn undeclared_type_rejected() {
        let mut b = Program::builder("p");
        b.add_task(TaskTypeId(0), trace(1), vec![]);
    }

    #[test]
    #[should_panic(expected = "has no instances")]
    fn empty_type_rejected() {
        let mut b = Program::builder("p");
        let _unused = b.add_type("never-instantiated");
        b.build();
    }
}
