//! Task types and task instances.
//!
//! The paper's central distinction (§II-A): *"Every execution of a task
//! declaration statement at runtime results in the creation of a task
//! instance. All task instances resulting from the same task declaration
//! statement in the source code are said to be of the same task type."*
//! TaskPoint leverages task types as its sampling-unit classes.

use crate::regions::RegionAccess;
use serde::{Deserialize, Serialize};
use taskpoint_trace::{TraceSource, TraceSpec};

/// Identifier of a task type (a task declaration in the source program).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskTypeId(pub u32);

impl std::fmt::Display for TaskTypeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a task instance (one dynamic execution of a declaration).
///
/// Instance ids are dense: the `i`-th task created by a program has id `i`,
/// which lets per-instance state live in plain vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TaskInstanceId(pub u64);

impl TaskInstanceId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for TaskInstanceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A task type: the static declaration all its instances share.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TaskType {
    id: TaskTypeId,
    name: String,
}

impl TaskType {
    /// Creates a task type. Normally done through
    /// [`ProgramBuilder::add_type`](crate::program::ProgramBuilder::add_type).
    pub fn new(id: TaskTypeId, name: impl Into<String>) -> Self {
        Self { id, name: name.into() }
    }

    /// The type's identifier.
    pub fn id(&self) -> TaskTypeId {
        self.id
    }

    /// The type's source-level name (e.g. `"gemm"`, `"lu0"`).
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A task instance: one dynamic execution with its own data and trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskInstance {
    id: TaskInstanceId,
    type_id: TaskTypeId,
    trace: TraceSpec,
    accesses: Vec<RegionAccess>,
}

impl TaskInstance {
    /// Creates a task instance. Normally done through
    /// [`ProgramBuilder::add_task`](crate::program::ProgramBuilder::add_task).
    pub fn new(
        id: TaskInstanceId,
        type_id: TaskTypeId,
        trace: TraceSpec,
        accesses: Vec<RegionAccess>,
    ) -> Self {
        Self { id, type_id, trace, accesses }
    }

    /// The instance's identifier (== creation order).
    pub fn id(&self) -> TaskInstanceId {
        self.id
    }

    /// The type this instance belongs to.
    pub fn type_id(&self) -> TaskTypeId {
        self.type_id
    }

    /// The instance's dynamic instruction stream.
    pub fn trace(&self) -> &TraceSpec {
        &self.trace
    }

    /// A fresh [`TraceSource`] over the instance's instruction stream,
    /// positioned at the start — what workloads hand the simulator's
    /// batched detailed pipeline.
    pub fn trace_source(&self) -> Box<dyn TraceSource> {
        Box::new(self.trace.source())
    }

    /// Dynamic instruction count — the `I_i` of the paper's fast-forward
    /// formula `C_i = I_i / IPC_T`.
    pub fn instructions(&self) -> u64 {
        self.trace.instructions()
    }

    /// The region annotations dependences are derived from.
    pub fn accesses(&self) -> &[RegionAccess] {
        &self.accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::AccessMode;
    use taskpoint_trace::MemRegion;

    #[test]
    fn ids_display_compactly() {
        assert_eq!(TaskTypeId(3).to_string(), "T3");
        assert_eq!(TaskInstanceId(42).to_string(), "t42");
    }

    #[test]
    fn instance_exposes_trace_instruction_count() {
        let trace = TraceSpec::synthetic(0, 777);
        let inst = TaskInstance::new(TaskInstanceId(0), TaskTypeId(0), trace, vec![]);
        assert_eq!(inst.instructions(), 777);
    }

    #[test]
    fn instance_keeps_accesses_in_order() {
        let r1 = RegionAccess::new(MemRegion::new(0, 8), AccessMode::In);
        let r2 = RegionAccess::new(MemRegion::new(8, 8), AccessMode::Out);
        let inst = TaskInstance::new(
            TaskInstanceId(1),
            TaskTypeId(0),
            TraceSpec::builder().build(),
            vec![r1, r2],
        );
        assert_eq!(inst.accesses(), &[r1, r2]);
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(TaskInstanceId(17).index(), 17);
    }

    #[test]
    fn trace_source_streams_the_instance_trace() {
        use taskpoint_trace::InstBlock;
        let trace = TraceSpec::synthetic(5, 300);
        let inst = TaskInstance::new(TaskInstanceId(0), TaskTypeId(0), trace.clone(), vec![]);
        let mut src = inst.trace_source();
        let mut block = InstBlock::new();
        let mut got = Vec::new();
        while src.fill(&mut block) > 0 {
            got.extend(block.iter());
        }
        assert!(got.iter().copied().eq(trace.iter()));
    }
}
