//! OmpSs-style dependence analysis and the resulting task DAG.
//!
//! Tasks are analyzed in creation (program) order. For every annotated
//! region the analysis keeps the classic last-writer/readers state:
//!
//! * a **reading** access depends on the region's last writer (RAW);
//! * a **writing** access depends on the last writer (WAW) *and* on every
//!   reader since that write (WAR), then becomes the new last writer.
//!
//! Regions are matched by identity (`base`, `len`), which is how OmpSs
//! programs are written in practice (tasks name whole tiles/blocks); the
//! analysis additionally asserts in debug builds that distinct region keys
//! never partially overlap, so identity matching is not silently unsound.

use crate::regions::RegionAccess;
use crate::task::TaskInstanceId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use taskpoint_trace::MemRegion;

/// Per-region dependence state during construction.
#[derive(Debug, Default, Clone)]
struct RegionState {
    last_writer: Option<TaskInstanceId>,
    readers_since_write: Vec<TaskInstanceId>,
}

/// Builds a [`DependenceGraph`] by registering tasks in creation order.
#[derive(Debug, Default)]
pub struct DependenceGraphBuilder {
    regions: HashMap<MemRegion, RegionState>,
    preds: Vec<Vec<TaskInstanceId>>,
    succs: Vec<Vec<TaskInstanceId>>,
    /// Debug-only soundness index: region base -> len, used to detect
    /// partially overlapping annotations in O(log n) per access.
    #[cfg(debug_assertions)]
    region_index: std::collections::BTreeMap<u64, u64>,
}

impl DependenceGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers the next task (ids must be dense and in creation order)
    /// and derives its dependences from `accesses`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not the next dense id.
    pub fn add_task(&mut self, id: TaskInstanceId, accesses: &[RegionAccess]) {
        assert_eq!(id.index(), self.preds.len(), "task ids must be dense and ordered");
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());

        #[cfg(debug_assertions)]
        self.check_no_partial_overlap(accesses);

        let mut deps: Vec<TaskInstanceId> = Vec::new();
        for acc in accesses {
            let state = self.regions.entry(acc.region).or_default();
            if acc.mode.reads() {
                if let Some(w) = state.last_writer {
                    deps.push(w);
                }
            }
            if acc.mode.writes() {
                if let Some(w) = state.last_writer {
                    deps.push(w);
                }
                deps.extend(state.readers_since_write.iter().copied());
            }
            // Update the state after computing dependences so a task never
            // depends on itself through its own annotations.
            if acc.mode.writes() {
                state.last_writer = Some(id);
                state.readers_since_write.clear();
            } else {
                state.readers_since_write.push(id);
            }
        }
        deps.retain(|&d| d != id);
        deps.sort_unstable();
        deps.dedup();
        for &d in &deps {
            self.succs[d.index()].push(id);
        }
        self.preds[id.index()] = deps;
    }

    #[cfg(debug_assertions)]
    fn check_no_partial_overlap(&mut self, accesses: &[RegionAccess]) {
        for acc in accesses {
            let r = acc.region;
            if r.is_empty() {
                continue;
            }
            // The closest region starting at or before `r.base` must either
            // be identical to `r` or end before it starts.
            if let Some((&base, &len)) = self.region_index.range(..=r.base).next_back() {
                let identical = base == r.base && len == r.len;
                assert!(
                    identical || base + len <= r.base,
                    "region {r} partially overlaps previously annotated [{base:#x}, {:#x}); \
                     identity-based dependence analysis would be unsound",
                    base + len
                );
            }
            // No region may start strictly inside `r`.
            if let Some((&base, &len)) = self.region_index.range(r.base + 1..r.end()).next() {
                panic!(
                    "region {r} partially overlaps previously annotated [{base:#x}, {:#x}); \
                     identity-based dependence analysis would be unsound",
                    base + len
                );
            }
            self.region_index.entry(r.base).or_insert(r.len);
        }
    }

    /// Finalizes the graph.
    pub fn build(self) -> DependenceGraph {
        DependenceGraph { preds: self.preds, succs: self.succs }
    }
}

/// An immutable task dependence DAG.
///
/// By construction (dependences only point at earlier creation indices) the
/// graph is acyclic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependenceGraph {
    preds: Vec<Vec<TaskInstanceId>>,
    succs: Vec<Vec<TaskInstanceId>>,
}

impl DependenceGraph {
    /// Number of tasks in the graph.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if the graph contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// The tasks `id` directly depends on (sorted, deduplicated).
    pub fn predecessors(&self, id: TaskInstanceId) -> &[TaskInstanceId] {
        &self.preds[id.index()]
    }

    /// The tasks that directly depend on `id` (in creation order).
    pub fn successors(&self, id: TaskInstanceId) -> &[TaskInstanceId] {
        &self.succs[id.index()]
    }

    /// Tasks with no predecessors, in creation order.
    pub fn roots(&self) -> Vec<TaskInstanceId> {
        (0..self.len() as u64)
            .map(TaskInstanceId)
            .filter(|id| self.preds[id.index()].is_empty())
            .collect()
    }

    /// Total number of dependence edges.
    pub fn edge_count(&self) -> usize {
        self.preds.iter().map(Vec::len).sum()
    }

    /// The length of the longest dependence chain (critical path measured
    /// in tasks). An empty graph has depth 0.
    pub fn critical_path_len(&self) -> usize {
        let mut depth = vec![0usize; self.len()];
        let mut max = 0;
        for i in 0..self.len() {
            let id = TaskInstanceId(i as u64);
            let d = self.predecessors(id).iter().map(|p| depth[p.index()] + 1).max().unwrap_or(1);
            depth[i] = d;
            max = max.max(d);
        }
        max
    }

    /// Creates the mutable ready-set used to execute this graph.
    pub fn ready_set(&self) -> ReadySet {
        ReadySet {
            remaining: self.preds.iter().map(|p| p.len() as u32).collect(),
            completed: vec![false; self.len()],
            pending: self.len(),
        }
    }
}

/// Incremental ready-tracking during execution: the runtime marks tasks
/// complete and learns which successors became ready.
#[derive(Debug, Clone)]
pub struct ReadySet {
    remaining: Vec<u32>,
    completed: Vec<bool>,
    pending: usize,
}

impl ReadySet {
    /// True if `id` currently has no unfinished predecessors and has not
    /// itself completed.
    pub fn is_ready(&self, id: TaskInstanceId) -> bool {
        !self.completed[id.index()] && self.remaining[id.index()] == 0
    }

    /// Number of tasks not yet completed.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// True once every task has completed.
    pub fn all_done(&self) -> bool {
        self.pending == 0
    }

    /// Marks `id` complete and returns the successors that became ready,
    /// in creation order.
    ///
    /// # Panics
    ///
    /// Panics if `id` completes twice or completes while predecessors are
    /// still outstanding (both indicate a scheduler bug).
    pub fn complete(&mut self, graph: &DependenceGraph, id: TaskInstanceId) -> Vec<TaskInstanceId> {
        assert!(!self.completed[id.index()], "task {id} completed twice");
        assert_eq!(self.remaining[id.index()], 0, "task {id} completed before its inputs");
        self.completed[id.index()] = true;
        self.pending -= 1;
        let mut newly_ready = Vec::new();
        for &s in graph.successors(id) {
            let r = &mut self.remaining[s.index()];
            *r -= 1;
            if *r == 0 {
                newly_ready.push(s);
            }
        }
        newly_ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionAccess;

    fn region(i: u64) -> MemRegion {
        MemRegion::new(0x1000 * i, 0x100)
    }

    fn graph(accesses: &[Vec<RegionAccess>]) -> DependenceGraph {
        let mut b = DependenceGraphBuilder::new();
        for (i, acc) in accesses.iter().enumerate() {
            b.add_task(TaskInstanceId(i as u64), acc);
        }
        b.build()
    }

    #[test]
    fn raw_dependence() {
        let g =
            graph(&[vec![RegionAccess::output(region(1))], vec![RegionAccess::input(region(1))]]);
        assert_eq!(g.predecessors(TaskInstanceId(1)), &[TaskInstanceId(0)]);
        assert_eq!(g.successors(TaskInstanceId(0)), &[TaskInstanceId(1)]);
    }

    #[test]
    fn war_dependence() {
        let g =
            graph(&[vec![RegionAccess::input(region(1))], vec![RegionAccess::output(region(1))]]);
        assert_eq!(g.predecessors(TaskInstanceId(1)), &[TaskInstanceId(0)]);
    }

    #[test]
    fn waw_dependence() {
        let g =
            graph(&[vec![RegionAccess::output(region(1))], vec![RegionAccess::output(region(1))]]);
        assert_eq!(g.predecessors(TaskInstanceId(1)), &[TaskInstanceId(0)]);
    }

    #[test]
    fn independent_readers_share_a_writer() {
        let g = graph(&[
            vec![RegionAccess::output(region(1))],
            vec![RegionAccess::input(region(1))],
            vec![RegionAccess::input(region(1))],
            vec![RegionAccess::output(region(1))], // WAR on both readers + WAW
        ]);
        assert_eq!(g.predecessors(TaskInstanceId(1)), &[TaskInstanceId(0)]);
        assert_eq!(g.predecessors(TaskInstanceId(2)), &[TaskInstanceId(0)]);
        assert_eq!(
            g.predecessors(TaskInstanceId(3)),
            &[TaskInstanceId(0), TaskInstanceId(1), TaskInstanceId(2)]
        );
    }

    #[test]
    fn disjoint_regions_are_independent() {
        let g =
            graph(&[vec![RegionAccess::output(region(1))], vec![RegionAccess::output(region(2))]]);
        assert!(g.predecessors(TaskInstanceId(1)).is_empty());
        assert_eq!(g.roots(), vec![TaskInstanceId(0), TaskInstanceId(1)]);
    }

    #[test]
    fn inout_chains_serialize() {
        let g = graph(&[
            vec![RegionAccess::inout(region(1))],
            vec![RegionAccess::inout(region(1))],
            vec![RegionAccess::inout(region(1))],
        ]);
        assert_eq!(g.predecessors(TaskInstanceId(2)), &[TaskInstanceId(1)]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn task_reading_and_writing_same_region_has_no_self_dep() {
        let g = graph(&[vec![RegionAccess::input(region(1)), RegionAccess::output(region(1))]]);
        assert!(g.predecessors(TaskInstanceId(0)).is_empty());
    }

    #[test]
    fn duplicate_dependences_are_merged() {
        // Task 1 depends on task 0 through two different regions.
        let g = graph(&[
            vec![RegionAccess::output(region(1)), RegionAccess::output(region(2))],
            vec![RegionAccess::input(region(1)), RegionAccess::input(region(2))],
        ]);
        assert_eq!(g.predecessors(TaskInstanceId(1)), &[TaskInstanceId(0)]);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn ready_set_executes_diamond() {
        //    0
        //   / \
        //  1   2
        //   \ /
        //    3
        let g = graph(&[
            vec![RegionAccess::output(region(1)), RegionAccess::output(region(2))],
            vec![RegionAccess::input(region(1)), RegionAccess::output(region(3))],
            vec![RegionAccess::input(region(2)), RegionAccess::output(region(4))],
            vec![RegionAccess::input(region(3)), RegionAccess::input(region(4))],
        ]);
        let mut rs = g.ready_set();
        assert_eq!(g.roots(), vec![TaskInstanceId(0)]);
        assert!(rs.is_ready(TaskInstanceId(0)));
        assert!(!rs.is_ready(TaskInstanceId(3)));
        let ready = rs.complete(&g, TaskInstanceId(0));
        assert_eq!(ready, vec![TaskInstanceId(1), TaskInstanceId(2)]);
        assert!(rs.complete(&g, TaskInstanceId(1)).is_empty());
        assert_eq!(rs.complete(&g, TaskInstanceId(2)), vec![TaskInstanceId(3)]);
        assert_eq!(rs.pending(), 1);
        assert!(rs.complete(&g, TaskInstanceId(3)).is_empty());
        assert!(rs.all_done());
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_panics() {
        let g = graph(&[vec![]]);
        let mut rs = g.ready_set();
        rs.complete(&g, TaskInstanceId(0));
        rs.complete(&g, TaskInstanceId(0));
    }

    #[test]
    #[should_panic(expected = "before its inputs")]
    fn premature_completion_panics() {
        let g =
            graph(&[vec![RegionAccess::output(region(1))], vec![RegionAccess::input(region(1))]]);
        let mut rs = g.ready_set();
        rs.complete(&g, TaskInstanceId(1));
    }

    #[test]
    fn critical_path_of_independent_tasks_is_one() {
        let g = graph(&[vec![], vec![], vec![]]);
        assert_eq!(g.critical_path_len(), 1);
        assert_eq!(graph(&[]).critical_path_len(), 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "partially overlaps")]
    fn partial_overlap_detected_in_debug() {
        let mut b = DependenceGraphBuilder::new();
        b.add_task(TaskInstanceId(0), &[RegionAccess::output(MemRegion::new(0, 100))]);
        b.add_task(TaskInstanceId(1), &[RegionAccess::input(MemRegion::new(50, 100))]);
    }
}
