//! Region access annotations.
//!
//! OmpSs tasks declare the memory regions they touch and in which direction
//! (`in`, `out`, `inout`). The runtime builds the task dependence graph from
//! these annotations; the simulator does not interpret them otherwise.

use serde::{Deserialize, Serialize};
use taskpoint_trace::MemRegion;

/// Direction of a region access, as written in an OmpSs task clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessMode {
    /// The task reads the region (`in(...)`).
    In,
    /// The task writes the whole region (`out(...)`).
    Out,
    /// The task reads and writes the region (`inout(...)`).
    InOut,
}

impl AccessMode {
    /// True if the access reads the previous contents.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::In | AccessMode::InOut)
    }

    /// True if the access produces a new version of the region.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Out | AccessMode::InOut)
    }
}

impl std::fmt::Display for AccessMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AccessMode::In => "in",
            AccessMode::Out => "out",
            AccessMode::InOut => "inout",
        })
    }
}

/// One region annotation of a task instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionAccess {
    /// The annotated memory region.
    pub region: MemRegion,
    /// The access direction.
    pub mode: AccessMode,
}

impl RegionAccess {
    /// Creates an annotation.
    pub fn new(region: MemRegion, mode: AccessMode) -> Self {
        Self { region, mode }
    }

    /// Shorthand for an `in(...)` annotation.
    pub fn input(region: MemRegion) -> Self {
        Self::new(region, AccessMode::In)
    }

    /// Shorthand for an `out(...)` annotation.
    pub fn output(region: MemRegion) -> Self {
        Self::new(region, AccessMode::Out)
    }

    /// Shorthand for an `inout(...)` annotation.
    pub fn inout(region: MemRegion) -> Self {
        Self::new(region, AccessMode::InOut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_read_write_classification() {
        assert!(AccessMode::In.reads() && !AccessMode::In.writes());
        assert!(!AccessMode::Out.reads() && AccessMode::Out.writes());
        assert!(AccessMode::InOut.reads() && AccessMode::InOut.writes());
    }

    #[test]
    fn shorthands_set_modes() {
        let r = MemRegion::new(0x100, 0x40);
        assert_eq!(RegionAccess::input(r).mode, AccessMode::In);
        assert_eq!(RegionAccess::output(r).mode, AccessMode::Out);
        assert_eq!(RegionAccess::inout(r).mode, AccessMode::InOut);
    }

    #[test]
    fn display_matches_clause_syntax() {
        assert_eq!(AccessMode::In.to_string(), "in");
        assert_eq!(AccessMode::Out.to_string(), "out");
        assert_eq!(AccessMode::InOut.to_string(), "inout");
    }
}
