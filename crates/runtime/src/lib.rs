//! OmpSs-style task runtime model.
//!
//! The paper's programs are written in OmpSs [Duran et al. 2011]: the
//! programmer declares *task types* and annotates their data *regions* with
//! directions (`in`, `out`, `inout`); every execution of a task declaration
//! creates a *task instance*; the runtime derives inter-task dependences
//! from overlapping region annotations and dynamically schedules ready
//! instances onto worker threads.
//!
//! This crate reproduces that model at the level of detail architectural
//! simulation needs:
//!
//! * [`task`] — task types, task instances and their identifiers;
//! * [`regions`] — region access annotations (`in`/`out`/`inout`);
//! * [`depgraph`] — OmpSs dependence analysis (RAW, WAR, WAW over regions)
//!   producing a DAG, plus the incremental ready-set used during execution;
//! * [`scheduler`] — dynamic schedulers (FIFO — the Nanos++ default — LIFO,
//!   and a locality-aware variant);
//! * [`program`] — a complete task-based program: types + instances + DAG.
//!
//! # Example
//!
//! ```
//! use taskpoint_runtime::{AccessMode, Program, RegionAccess};
//! use taskpoint_trace::{MemRegion, TraceSpec};
//!
//! let mut b = Program::builder("two-chained-tasks");
//! let t = b.add_type("work");
//! let data = MemRegion::new(0x1000, 64);
//! let trace = TraceSpec::synthetic(0, 100);
//! let first = b.add_task(t, trace.clone(), vec![RegionAccess::new(data, AccessMode::Out)]);
//! let second = b.add_task(t, trace, vec![RegionAccess::new(data, AccessMode::In)]);
//! let program = b.build();
//! // `second` reads what `first` writes: a RAW dependence.
//! assert_eq!(program.graph().predecessors(second), &[first]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod depgraph;
pub mod ingest;
pub mod program;
pub mod regions;
pub mod scheduler;
pub mod task;

pub use depgraph::{DependenceGraph, ReadySet};
pub use ingest::program_from_ingested;
pub use program::{Program, ProgramBuilder};
pub use regions::{AccessMode, RegionAccess};
pub use scheduler::{
    FifoScheduler, LifoScheduler, LocalityScheduler, Scheduler, SizeTieredScheduler, WorkerId,
};
pub use task::{TaskInstance, TaskInstanceId, TaskType, TaskTypeId};
