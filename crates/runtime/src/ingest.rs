//! Building a [`Program`] from an externally ingested trace.
//!
//! An [`IngestedTrace`] carries everything
//! a [`Program`] needs: the task types, every task instance in begin order
//! (dense ids), per-instance instruction counts, and the retired-before
//! dependences the recorded execution observed. This module converts that
//! into the runtime's program model; the companion converter in `tasksim`
//! (`RecordedTraces::from_ingested`) packages the concrete instruction
//! streams, and together they make a foreign trace a complete simulator
//! input.

use taskpoint_trace::ingest::IngestedTrace;
use taskpoint_trace::{InstKind, InstructionMix, MemRegion, TraceSpec};

use crate::program::Program;
use crate::regions::RegionAccess;

/// Base address of the synthetic dependence regions (far above any
/// plausible trace address so they never alias recorded data).
const DEP_REGION_BASE: u64 = 0xFFFF_0000_0000_0000;
/// Size of one synthetic dependence region.
const DEP_REGION_LEN: u64 = 64;

/// The synthetic region task `index` "writes" — dependence edges are
/// encoded as reads of predecessors' regions.
fn dep_region(index: u64) -> MemRegion {
    MemRegion::new(DEP_REGION_BASE + index * DEP_REGION_LEN, DEP_REGION_LEN)
}

/// Converts an ingested trace into a [`Program`].
///
/// * Task types and instances keep the trace's dense order, so the
///   program's `TaskInstanceId`s equal the trace's task indices — the
///   invariant `RecordedTraces::from_ingested` relies on.
/// * Each instance's [`TraceSpec`] carries the *recorded* instruction
///   count (what fast-forwarding reads) and the type's event rates, but a
///   pure-compute mix with no footprint: the spec is only the fallback
///   generator, and simulating an ingested program without its recorded
///   bundle would replay meaningless synthetic streams. Always pair the
///   program with the bundle built from the same trace.
/// * The trace's retired-before dependences are re-expressed as region
///   accesses (each task outputs a unique synthetic region; dependents
///   read their predecessors' regions), so the runtime's OmpSs dependence
///   analysis reconstructs exactly the recorded DAG edges.
pub fn program_from_ingested(name: impl Into<String>, trace: &IngestedTrace) -> Program {
    let mut b = Program::builder(name);
    let type_ids: Vec<_> = trace.types().iter().map(|t| b.add_type(t.name.clone())).collect();
    for task in trace.tasks() {
        let ty = &trace.types()[task.type_index as usize];
        let spec = TraceSpec::builder()
            .seed(task.index)
            .code_seed(task.type_index as u64)
            .instructions(task.instructions)
            .mix(InstructionMix::from_weights(&[(InstKind::IntAlu, 1.0)]))
            .branch_mispredict_rate(ty.branch_mispredict_rate)
            .dependency_rate(ty.dependency_rate)
            .build();
        let mut accesses = vec![RegionAccess::output(dep_region(task.index))];
        accesses.extend(task.deps.iter().map(|&d| RegionAccess::input(dep_region(d))));
        b.add_task(type_ids[task.type_index as usize], spec, accesses);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskInstanceId;

    const TRACE: &str = "\
%tptrace 1
T:3:alpha:0.05:0.4
T:4:beta
B:0:100:3
I:0:int_alu
I:0:fp_mul
E:0:100
B:1:200:4
M:1:load:8000:8
E:1:200
B:0:300:4:100,200
I:0:branch
E:0:300
";

    #[test]
    fn ingested_program_mirrors_the_trace() {
        let trace = IngestedTrace::parse_text(TRACE).unwrap();
        let p = program_from_ingested("ext", &trace);
        assert_eq!(p.name(), "ext");
        assert_eq!(p.num_types(), 2);
        assert_eq!(p.num_instances(), 3);
        assert_eq!(p.types()[0].name(), "alpha");
        assert_eq!(p.total_instructions(), 4);
        // Instruction counts come from the recording.
        assert_eq!(p.instance(TaskInstanceId(0)).instructions(), 2);
        assert_eq!(p.instance(TaskInstanceId(1)).instructions(), 1);
        // Event rates propagate from the type declaration.
        let spec = p.instance(TaskInstanceId(0)).trace();
        assert_eq!(spec.branch_mispredict_rate(), 0.05);
        assert_eq!(spec.dependency_rate(), 0.4);
        // The recorded dependences become DAG edges.
        assert_eq!(
            p.graph().predecessors(TaskInstanceId(2)),
            &[TaskInstanceId(0), TaskInstanceId(1)]
        );
        assert!(p.graph().predecessors(TaskInstanceId(0)).is_empty());
    }

    #[test]
    fn fallback_specs_are_pure_compute() {
        let trace = IngestedTrace::parse_text(TRACE).unwrap();
        let p = program_from_ingested("ext", &trace);
        for inst in p.instances() {
            assert!(inst.trace().iter().all(|i| !i.kind.is_memory()));
            assert_eq!(inst.trace().iter().count() as u64, inst.instructions());
        }
    }
}
