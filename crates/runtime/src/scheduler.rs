//! Dynamic task schedulers.
//!
//! The OmpSs runtime schedules ready task instances onto worker threads
//! dynamically; over-decomposition plus dynamic scheduling is what balances
//! load (paper §II-A) — and what makes per-thread instruction streams vary
//! between runs, defeating classical sampled simulation. The simulator asks
//! a [`Scheduler`] which task an idle worker should run next.
//!
//! * [`FifoScheduler`] — ready tasks run in readiness order (the Nanos++
//!   default breadth-first policy);
//! * [`LifoScheduler`] — newest-ready-first (depth-first, cache-friendlier);
//! * [`LocalityScheduler`] — per-worker queues keyed by a task's data
//!   affinity, with deterministic stealing.

use crate::program::Program;
use crate::task::TaskInstanceId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Identifier of a simulated worker thread (0-based, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub u32);

impl WorkerId {
    /// The id as a vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A dynamic scheduler: receives ready tasks, hands them to idle workers.
///
/// Implementations must be deterministic — given the same sequence of
/// `task_ready` / `pick` calls they must return the same tasks — because
/// the sampled and the detailed simulation must execute the same schedule
/// *modulo timing*, and reproducibility of experiments depends on it.
pub trait Scheduler {
    /// Registers a task whose dependences are all satisfied.
    fn task_ready(&mut self, task: TaskInstanceId);

    /// Picks the next task for `worker`, or `None` if no work is available.
    fn pick(&mut self, worker: WorkerId) -> Option<TaskInstanceId>;

    /// Number of ready-but-unclaimed tasks.
    fn ready_count(&self) -> usize;

    /// Human-readable policy name for logs and reports.
    fn name(&self) -> &'static str;
}

/// Breadth-first FIFO scheduler (Nanos++ default).
#[derive(Debug, Default, Clone)]
pub struct FifoScheduler {
    queue: VecDeque<TaskInstanceId>,
}

impl FifoScheduler {
    /// Creates an empty FIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for FifoScheduler {
    fn task_ready(&mut self, task: TaskInstanceId) {
        self.queue.push_back(task);
    }

    fn pick(&mut self, _worker: WorkerId) -> Option<TaskInstanceId> {
        self.queue.pop_front()
    }

    fn ready_count(&self) -> usize {
        self.queue.len()
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Depth-first LIFO scheduler: runs the most recently readied task first.
#[derive(Debug, Default, Clone)]
pub struct LifoScheduler {
    stack: Vec<TaskInstanceId>,
}

impl LifoScheduler {
    /// Creates an empty LIFO scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for LifoScheduler {
    fn task_ready(&mut self, task: TaskInstanceId) {
        self.stack.push(task);
    }

    fn pick(&mut self, _worker: WorkerId) -> Option<TaskInstanceId> {
        self.stack.pop()
    }

    fn ready_count(&self) -> usize {
        self.stack.len()
    }

    fn name(&self) -> &'static str {
        "lifo"
    }
}

/// Locality-aware scheduler: each task has an affinity worker derived from
/// its first annotated region (tasks touching the same tile prefer the same
/// worker, mirroring Nanos++'s affinity scheduler); idle workers steal from
/// the lowest-indexed non-empty queue, oldest task first.
#[derive(Debug, Clone)]
pub struct LocalityScheduler {
    queues: Vec<VecDeque<TaskInstanceId>>,
    affinity: Vec<u32>,
    ready: usize,
}

impl LocalityScheduler {
    /// Builds the affinity table from a program: a task's preferred worker
    /// is a deterministic hash of its first region's base address. Tasks
    /// without annotations hash their instance id instead.
    pub fn from_program(program: &Program, workers: u32) -> Self {
        assert!(workers > 0, "need at least one worker");
        let affinity = program
            .instances()
            .iter()
            .map(|inst| {
                let key = inst.accesses().first().map(|a| a.region.base).unwrap_or(inst.id().0);
                let mut st = key ^ 0x5851_F42D_4C95_7F2D;
                (taskpoint_stats::rng::splitmix64(&mut st) % workers as u64) as u32
            })
            .collect();
        Self { queues: (0..workers).map(|_| VecDeque::new()).collect(), affinity, ready: 0 }
    }
}

impl Scheduler for LocalityScheduler {
    fn task_ready(&mut self, task: TaskInstanceId) {
        let w = self.affinity[task.index()] as usize;
        self.queues[w].push_back(task);
        self.ready += 1;
    }

    fn pick(&mut self, worker: WorkerId) -> Option<TaskInstanceId> {
        let own = worker.index() % self.queues.len();
        let picked = self.queues[own].pop_front().or_else(|| {
            self.queues.iter_mut().find(|q| !q.is_empty()).and_then(VecDeque::pop_front)
        });
        if picked.is_some() {
            self.ready -= 1;
        }
        picked
    }

    fn ready_count(&self) -> usize {
        self.ready
    }

    fn name(&self) -> &'static str {
        "locality"
    }
}

/// Size-tiered scheduler for heterogeneous (big.LITTLE) machines: tasks at
/// or above an instruction-count threshold queue as "big" work, the rest as
/// "little" work. Workers below `big_workers` (the machine's leading big
/// group — the engine assigns group cores the lowest ids in listed order)
/// prefer the big queue, the others the little queue; both fall back to the
/// other queue rather than idle, so the policy shapes placement without
/// ever leaving a core unused while work is ready. Each queue is FIFO and
/// the whole policy is deterministic.
#[derive(Debug, Clone)]
pub struct SizeTieredScheduler {
    big: VecDeque<TaskInstanceId>,
    little: VecDeque<TaskInstanceId>,
    /// Per-instance instruction counts, indexed by `TaskInstanceId`.
    instructions: Vec<u64>,
    big_workers: u32,
    threshold: u64,
}

impl SizeTieredScheduler {
    /// Builds the size table from a program. Workers `0..big_workers`
    /// prefer tasks of at least `threshold` instructions.
    pub fn from_program(program: &Program, big_workers: u32, threshold: u64) -> Self {
        let instructions = program.instances().iter().map(|inst| inst.instructions()).collect();
        Self { big: VecDeque::new(), little: VecDeque::new(), instructions, big_workers, threshold }
    }

    /// Median-threshold convenience: big work is anything at or above the
    /// program's median task size, and the split adapts to the workload.
    pub fn median_split(program: &Program, big_workers: u32) -> Self {
        let mut sizes: Vec<u64> =
            program.instances().iter().map(|inst| inst.instructions()).collect();
        sizes.sort_unstable();
        let threshold = sizes.get(sizes.len() / 2).copied().unwrap_or(0);
        Self::from_program(program, big_workers, threshold)
    }
}

impl Scheduler for SizeTieredScheduler {
    fn task_ready(&mut self, task: TaskInstanceId) {
        if self.instructions[task.index()] >= self.threshold {
            self.big.push_back(task);
        } else {
            self.little.push_back(task);
        }
    }

    fn pick(&mut self, worker: WorkerId) -> Option<TaskInstanceId> {
        if worker.0 < self.big_workers {
            self.big.pop_front().or_else(|| self.little.pop_front())
        } else {
            self.little.pop_front().or_else(|| self.big.pop_front())
        }
    }

    fn ready_count(&self) -> usize {
        self.big.len() + self.little.len()
    }

    fn name(&self) -> &'static str {
        "size-tiered"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regions::RegionAccess;
    use taskpoint_trace::{MemRegion, TraceSpec};

    fn t(i: u64) -> TaskInstanceId {
        TaskInstanceId(i)
    }

    #[test]
    fn fifo_is_first_in_first_out() {
        let mut s = FifoScheduler::new();
        s.task_ready(t(0));
        s.task_ready(t(1));
        s.task_ready(t(2));
        assert_eq!(s.ready_count(), 3);
        assert_eq!(s.pick(WorkerId(0)), Some(t(0)));
        assert_eq!(s.pick(WorkerId(1)), Some(t(1)));
        assert_eq!(s.pick(WorkerId(0)), Some(t(2)));
        assert_eq!(s.pick(WorkerId(0)), None);
    }

    #[test]
    fn lifo_is_last_in_first_out() {
        let mut s = LifoScheduler::new();
        s.task_ready(t(0));
        s.task_ready(t(1));
        assert_eq!(s.pick(WorkerId(0)), Some(t(1)));
        assert_eq!(s.pick(WorkerId(0)), Some(t(0)));
        assert_eq!(s.pick(WorkerId(0)), None);
    }

    fn affinity_program() -> Program {
        let mut b = Program::builder("aff");
        let ty = b.add_type("w");
        for i in 0..8u64 {
            // Two tasks per tile: same region => same affinity worker.
            let r = MemRegion::new(0x1000 * (i / 2 + 1), 0x100);
            let mode = if i % 2 == 0 { RegionAccess::output(r) } else { RegionAccess::input(r) };
            b.add_task(ty, TraceSpec::synthetic(0, 1), vec![mode]);
        }
        b.build()
    }

    #[test]
    fn locality_groups_tasks_by_region() {
        let p = affinity_program();
        let s = LocalityScheduler::from_program(&p, 4);
        // Pairs (0,1), (2,3), (4,5), (6,7) share a region -> same affinity.
        for pair in 0..4usize {
            assert_eq!(s.affinity[2 * pair], s.affinity[2 * pair + 1]);
        }
    }

    #[test]
    fn locality_steals_when_own_queue_empty() {
        let p = affinity_program();
        let mut s = LocalityScheduler::from_program(&p, 4);
        s.task_ready(t(0));
        let home = s.affinity[0];
        let thief = WorkerId((home + 1) % 4);
        assert_eq!(s.pick(thief), Some(t(0)), "steal must find the only task");
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.pick(thief), None);
    }

    #[test]
    fn locality_ready_count_tracks_pushes_and_pops() {
        let p = affinity_program();
        let mut s = LocalityScheduler::from_program(&p, 2);
        for i in 0..8 {
            s.task_ready(t(i));
        }
        assert_eq!(s.ready_count(), 8);
        let mut picked = 0;
        while s.pick(WorkerId(0)).is_some() {
            picked += 1;
        }
        assert_eq!(picked, 8);
        assert_eq!(s.ready_count(), 0);
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(FifoScheduler::new().name(), "fifo");
        assert_eq!(LifoScheduler::new().name(), "lifo");
        let p = affinity_program();
        assert_eq!(LocalityScheduler::from_program(&p, 1).name(), "locality");
        assert_eq!(SizeTieredScheduler::from_program(&p, 1, 100).name(), "size-tiered");
    }

    /// Tasks 0..4 are 1000-instruction "big" work, 4..8 are 10-instruction
    /// "little" work.
    fn tiered_program() -> Program {
        let mut b = Program::builder("tiered");
        let ty = b.add_type("w");
        for i in 0..8u64 {
            let instrs = if i < 4 { 1000 } else { 10 };
            b.add_task(ty, TraceSpec::synthetic(i, instrs), vec![]);
        }
        b.build()
    }

    #[test]
    fn size_tiered_routes_by_threshold() {
        let p = tiered_program();
        let mut s = SizeTieredScheduler::from_program(&p, 2, 100);
        for i in 0..8 {
            s.task_ready(t(i));
        }
        assert_eq!(s.ready_count(), 8);
        // Big worker 0 drains the big queue first, in FIFO order.
        assert_eq!(s.pick(WorkerId(0)), Some(t(0)));
        assert_eq!(s.pick(WorkerId(1)), Some(t(1)));
        // Little worker 2 gets little work while big work remains.
        assert_eq!(s.pick(WorkerId(2)), Some(t(4)));
        assert_eq!(s.ready_count(), 5);
    }

    #[test]
    fn size_tiered_falls_back_instead_of_idling() {
        let p = tiered_program();
        let mut s = SizeTieredScheduler::from_program(&p, 1, 100);
        // Only little work ready: the big worker must take it.
        s.task_ready(t(5));
        assert_eq!(s.pick(WorkerId(0)), Some(t(5)));
        // Only big work ready: a little worker must take it.
        s.task_ready(t(1));
        assert_eq!(s.pick(WorkerId(3)), Some(t(1)));
        assert_eq!(s.ready_count(), 0);
        assert_eq!(s.pick(WorkerId(0)), None);
    }

    #[test]
    fn median_split_adapts_to_the_workload() {
        let p = tiered_program();
        let s = SizeTieredScheduler::median_split(&p, 2);
        // Sizes sorted: [10,10,10,10,1000,1000,1000,1000] -> median 1000.
        assert_eq!(s.threshold, 1000);
        let mut s = s;
        s.task_ready(t(0)); // 1000 instructions -> big queue
        s.task_ready(t(7)); // 10 instructions -> little queue
        assert_eq!(s.pick(WorkerId(0)), Some(t(0)));
        assert_eq!(s.pick(WorkerId(1)), Some(t(7)));
    }
}
