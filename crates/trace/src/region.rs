//! Memory regions.
//!
//! Workload generators lay every task instance's data out in a synthetic
//! address space; the same regions double as OmpSs-style dependence
//! annotations in `taskpoint-runtime`.

use serde::{Deserialize, Serialize};

/// A half-open region `[base, base + len)` of the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MemRegion {
    /// First byte address.
    pub base: u64,
    /// Length in bytes (may be zero for an empty region).
    pub len: u64,
}

impl MemRegion {
    /// Creates the region `[base, base + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the region would wrap the 64-bit address space.
    pub fn new(base: u64, len: u64) -> Self {
        assert!(base.checked_add(len).is_some(), "region wraps address space");
        Self { base, len }
    }

    /// The empty region at address zero.
    pub fn empty() -> Self {
        Self { base: 0, len: 0 }
    }

    /// True if the region has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.base + self.len
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// True if the two regions share at least one byte.
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        !self.is_empty() && !other.is_empty() && self.base < other.end() && other.base < self.end()
    }

    /// Clamps `offset` into the region and returns the resulting address.
    /// Offsets beyond the length wrap around (modulo), which is how the
    /// access-pattern generators keep streams inside their footprint.
    ///
    /// # Panics
    ///
    /// Panics if the region is empty.
    pub fn wrap(&self, offset: u64) -> u64 {
        assert!(!self.is_empty(), "cannot address into an empty region");
        self.base + offset % self.len
    }

    /// Splits the region into `n` equal-ish chunks (the last chunk absorbs
    /// the remainder). Useful for blocking a data structure into per-task
    /// footprints.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn split(&self, n: u64) -> Vec<MemRegion> {
        assert!(n > 0, "cannot split into zero chunks");
        let chunk = self.len / n;
        (0..n)
            .map(|i| {
                let base = self.base + i * chunk;
                let len = if i == n - 1 { self.len - i * chunk } else { chunk };
                MemRegion { base, len }
            })
            .collect()
    }
}

impl Default for MemRegion {
    /// The empty region.
    fn default() -> Self {
        MemRegion::empty()
    }
}

impl std::fmt::Display for MemRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.base, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_and_end() {
        let r = MemRegion::new(100, 10);
        assert!(r.contains(100));
        assert!(r.contains(109));
        assert!(!r.contains(110));
        assert!(!r.contains(99));
        assert_eq!(r.end(), 110);
    }

    #[test]
    fn overlap_cases() {
        let a = MemRegion::new(0, 100);
        let b = MemRegion::new(50, 100);
        let c = MemRegion::new(100, 10);
        let e = MemRegion::empty();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c)); // touching, not overlapping
        assert!(!a.overlaps(&e));
        assert!(!e.overlaps(&e));
    }

    #[test]
    fn wrap_stays_inside() {
        let r = MemRegion::new(1000, 64);
        for off in [0u64, 1, 63, 64, 65, 1000, u64::MAX / 2] {
            let a = r.wrap(off);
            assert!(r.contains(a), "offset {off} -> {a}");
        }
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn wrap_empty_panics() {
        MemRegion::empty().wrap(0);
    }

    #[test]
    fn split_covers_whole_region() {
        let r = MemRegion::new(0x1000, 1003);
        let parts = r.split(7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts[0].base, r.base);
        assert_eq!(parts.last().unwrap().end(), r.end());
        let total: u64 = parts.iter().map(|p| p.len).sum();
        assert_eq!(total, r.len);
        // chunks tile without overlap
        for w in parts.windows(2) {
            assert_eq!(w[0].end(), w[1].base);
        }
    }

    #[test]
    #[should_panic(expected = "wraps address space")]
    fn wrapping_region_rejected() {
        MemRegion::new(u64::MAX - 1, 10);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(MemRegion::new(16, 16).to_string(), "[0x10, 0x20)");
    }
}
