//! Batched instruction blocks and the [`TraceSource`] abstraction.
//!
//! The detailed hot path of the simulator consumes millions of trace
//! instructions. Producing them one `Option<Instruction>` at a time through
//! an iterator puts a branchy, cache-unfriendly dispatch between the trace
//! generator and the core model. This module replaces that boundary with a
//! batched, structure-of-arrays pipeline:
//!
//! * [`InstBlock`] — a fixed-capacity block holding parallel `kind` /
//!   `addr` / `size` arrays (SoA), refilled in bulk and consumed linearly
//!   by the core model;
//! * [`TraceSource`] — the producer abstraction: anything that can refill
//!   an `InstBlock` ([`TraceSource::fill`]). Implemented by
//!   [`SpecSource`] (the procedural generator behind
//!   [`TraceSpec`](crate::TraceSpec), current behavior) and by
//!   [`RecordedTrace`] (a pre-recorded stream in the
//!   [`encode`](crate::encode) binary format, streamed via `bytes::Buf`) —
//!   which makes real recorded traces a first-class simulator input.
//!
//! Both sources produce *identical* instruction sequences for identical
//! content: `SpecSource` draws from the same RNG streams in the same order
//! as the legacy iterator (which is now a thin shim over a `SpecSource`,
//! see [`TraceIter`](crate::TraceIter)), and `RecordedTrace` replays
//! whatever was encoded, byte for byte.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::encode::DecodeError;
use crate::inst::{InstKind, Instruction};
use crate::mix::InstructionMix;
use crate::pattern::AddressStream;
use bytes::Bytes;
use taskpoint_stats::rng::Xoshiro256pp;

/// Default capacity of an [`InstBlock`] in instructions.
///
/// Large enough to amortize refill overhead, small enough that a block of
/// three parallel arrays (~2.5 KiB) stays L1-resident while the core model
/// walks it.
pub const BLOCK_CAPACITY: usize = 256;

/// Process-wide count of [`InstBlock`] constructions.
///
/// Blocks sit on the simulator's detailed hot path; allocating one per
/// task (instead of recycling per worker) costs three heap allocations per
/// task boundary. This counter lets allocation-discipline tests assert the
/// engine's recycling actually holds — it is a plain relaxed counter, so
/// its overhead is a single uncontended atomic increment per *block*, not
/// per instruction.
static BLOCKS_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A fixed-capacity batch of trace instructions in structure-of-arrays
/// layout.
///
/// The three arrays are always parallel and equally long: non-memory
/// instructions carry `addr == 0` and `size == 0`, exactly like
/// [`Instruction::compute`]. Consumers on the hot path read the
/// [`kinds`](InstBlock::kinds) / [`addrs`](InstBlock::addrs) slices
/// directly; [`InstBlock::get`] and [`InstBlock::iter`] provide the AoS
/// view for tests and tools.
#[derive(Debug, Clone)]
pub struct InstBlock {
    kinds: Vec<InstKind>,
    addrs: Vec<u64>,
    sizes: Vec<u8>,
    capacity: usize,
}

impl InstBlock {
    /// An empty block with the default [`BLOCK_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(BLOCK_CAPACITY)
    }

    /// An empty block with an explicit capacity (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity >= 1, "instruction block needs capacity >= 1");
        BLOCKS_ALLOCATED.fetch_add(1, Ordering::Relaxed);
        Self {
            kinds: Vec::with_capacity(capacity),
            addrs: Vec::with_capacity(capacity),
            sizes: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Total number of `InstBlock`s constructed by this process so far
    /// (monotonic; never reset). Subtract two readings to count the
    /// blocks a region of code allocated — see the engine's
    /// block-recycling tests.
    pub fn blocks_allocated() -> u64 {
        BLOCKS_ALLOCATED.load(Ordering::Relaxed)
    }

    /// Number of instructions currently in the block.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The block's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Free instruction slots left before the block is full.
    pub fn remaining_capacity(&self) -> usize {
        self.capacity - self.len()
    }

    /// Empties the block (capacity is retained).
    pub fn clear(&mut self) {
        self.kinds.clear();
        self.addrs.clear();
        self.sizes.clear();
    }

    /// Appends a non-memory instruction.
    ///
    /// # Panics
    ///
    /// Panics if the block is full; debug-panics if `kind` is a memory kind
    /// (those must carry an address, use [`InstBlock::push_memory`]).
    pub fn push_compute(&mut self, kind: InstKind) {
        debug_assert!(!kind.is_memory(), "memory instruction without address");
        assert!(self.len() < self.capacity, "instruction block overflow");
        self.kinds.push(kind);
        self.addrs.push(0);
        self.sizes.push(0);
    }

    /// Appends a memory instruction with its effective address and size.
    ///
    /// # Panics
    ///
    /// Panics if the block is full; debug-panics if `kind` is not a memory
    /// kind.
    pub fn push_memory(&mut self, kind: InstKind, addr: u64, size: u8) {
        debug_assert!(kind.is_memory(), "non-memory instruction with address");
        assert!(self.len() < self.capacity, "instruction block overflow");
        self.kinds.push(kind);
        self.addrs.push(addr);
        self.sizes.push(size);
    }

    /// Appends any instruction (dispatching on its kind).
    pub fn push(&mut self, inst: Instruction) {
        if inst.kind.is_memory() {
            self.push_memory(inst.kind, inst.addr, inst.size);
        } else {
            self.push_compute(inst.kind);
        }
    }

    /// The parallel kind array.
    pub fn kinds(&self) -> &[InstKind] {
        &self.kinds
    }

    /// The parallel effective-address array (0 for non-memory kinds).
    pub fn addrs(&self) -> &[u64] {
        &self.addrs
    }

    /// The parallel access-size array (0 for non-memory kinds).
    pub fn sizes(&self) -> &[u8] {
        &self.sizes
    }

    /// The `i`-th instruction as an AoS value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn get(&self, i: usize) -> Instruction {
        Instruction { kind: self.kinds[i], addr: self.addrs[i], size: self.sizes[i] }
    }

    /// Iterates the block's instructions as AoS values.
    pub fn iter(&self) -> impl Iterator<Item = Instruction> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

impl Default for InstBlock {
    fn default() -> Self {
        Self::new()
    }
}

/// A producer of trace instructions in block-sized batches.
///
/// This is the boundary between trace representation (procedural spec,
/// recorded file, future ingestion formats) and the simulator's detailed
/// hot path: the engine refills one block at a time and the core model
/// consumes the SoA arrays linearly.
pub trait TraceSource {
    /// Clears `block` and refills it with up to `block.capacity()`
    /// instructions from the stream; returns the number appended.
    ///
    /// A return of `0` means the stream is exhausted; `fill` must keep
    /// returning `0` afterwards.
    fn fill(&mut self, block: &mut InstBlock) -> usize;
}

/// The procedural trace generator behind a [`TraceSpec`](crate::TraceSpec),
/// in batched form.
///
/// Draws instruction kinds from the code RNG and addresses from the data
/// RNG in exactly the per-instruction order the legacy iterator used, so a
/// `SpecSource` and `spec.iter()` produce bit-identical streams.
#[derive(Debug, Clone)]
pub struct SpecSource {
    remaining: u64,
    /// Drives the kind sequence — identical for all instances of a type.
    code_rng: Xoshiro256pp,
    /// Drives data-dependent choices (addresses).
    data_rng: Xoshiro256pp,
    addresses: Option<AddressStream>,
    mix: InstructionMix,
}

impl SpecSource {
    pub(crate) fn new(
        remaining: u64,
        code_rng: Xoshiro256pp,
        data_rng: Xoshiro256pp,
        addresses: Option<AddressStream>,
        mix: InstructionMix,
    ) -> Self {
        Self { remaining, code_rng, data_rng, addresses, mix }
    }

    /// Instructions left in the stream.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl TraceSource for SpecSource {
    fn fill(&mut self, block: &mut InstBlock) -> usize {
        block.clear();
        let n = (block.capacity() as u64).min(self.remaining) as usize;
        // Phase 1: the kind column (code RNG only — the "machine code"
        // shared by all instances of the task type).
        for _ in 0..n {
            block.kinds.push(self.mix.sample(&mut self.code_rng));
        }
        // Phase 2: the address/size columns (data RNG only). The phases
        // consume disjoint RNG streams, so splitting them preserves each
        // stream's draw order and the block equals the per-instruction
        // interleaving bit for bit.
        match self.addresses.as_mut() {
            Some(stream) => stream.fill_addrs(
                &block.kinds,
                &mut block.addrs,
                &mut block.sizes,
                &mut self.data_rng,
            ),
            None => {
                // Unreachable for specs built through `TraceSpecBuilder`:
                // a memory-carrying mix without a footprint is rejected at
                // build time (`TraceSpecError::MemoryMixWithoutFootprint`).
                assert!(
                    !block.kinds.iter().any(|k| k.is_memory()),
                    "memory instruction from a spec without footprint (rejected at build)"
                );
                block.addrs.resize(n, 0);
                block.sizes.resize(n, 0);
            }
        }
        self.remaining -= n as u64;
        n
    }
}

/// A pre-recorded instruction stream in the [`encode`](crate::encode)
/// binary format, replayed as a [`TraceSource`].
///
/// The whole buffer is validated once at construction (record framing and
/// kind discriminants), after which [`TraceSource::fill`] streams records
/// without further error paths. Storage is an `Arc<[u8]>` plus a read
/// cursor, so cloning a trace — which is how `tasksim::RecordedTraces`
/// hands a fresh source to the engine for every detailed task — shares
/// the encoded bytes instead of copying them. This is the ingestion point
/// for traces recorded from real executions: anything that writes the
/// `encode` record format (including the [`ingest`](crate::ingest)
/// frontend) can drive the detailed model.
#[derive(Debug, Clone)]
pub struct RecordedTrace {
    data: Arc<[u8]>,
    pos: usize,
    instructions: u64,
}

impl RecordedTrace {
    /// Wraps an encoded stream, validating every record.
    ///
    /// The bytes are copied once into shared storage; prefer
    /// [`RecordedTrace::from_arc`] when the caller already holds an
    /// `Arc<[u8]>`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Truncated`] if the buffer ends mid-record and
    /// [`DecodeError::BadKind`] for invalid kind bytes.
    pub fn new(bytes: Bytes) -> Result<Self, DecodeError> {
        Self::from_arc(Arc::from(bytes.as_ref()))
    }

    /// Wraps an already-shared encoded stream without copying, validating
    /// every record.
    ///
    /// # Errors
    ///
    /// Same as [`RecordedTrace::new`].
    pub fn from_arc(data: Arc<[u8]>) -> Result<Self, DecodeError> {
        let instructions = Self::validate(&data)?;
        Ok(Self { data, pos: 0, instructions })
    }

    /// Scans the record framing without materializing instructions;
    /// returns the record count.
    fn validate(mut data: &[u8]) -> Result<u64, DecodeError> {
        let mut count = 0u64;
        while let Some((&kind_byte, rest)) = data.split_first() {
            let kind = InstKind::from_u8(kind_byte).ok_or(DecodeError::BadKind(kind_byte))?;
            data = if kind.is_memory() {
                if rest.len() < 9 {
                    return Err(DecodeError::Truncated);
                }
                &rest[9..]
            } else {
                rest
            };
            count += 1;
        }
        Ok(count)
    }

    /// Total number of recorded instructions.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The encoded bytes not yet consumed by [`TraceSource::fill`].
    ///
    /// A clone resets nothing: it shares the same storage *and* keeps its
    /// own cursor, so cloning a freshly constructed trace yields a source
    /// positioned at the start of the whole stream.
    pub fn bytes(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl TraceSource for RecordedTrace {
    fn fill(&mut self, block: &mut InstBlock) -> usize {
        block.clear();
        let cap = block.capacity();
        let data: &[u8] = &self.data;
        while block.len() < cap && self.pos < data.len() {
            let kind = InstKind::from_u8(data[self.pos]).expect("validated at construction");
            self.pos += 1;
            if kind.is_memory() {
                let addr = u64::from_le_bytes(
                    data[self.pos..self.pos + 8].try_into().expect("validated at construction"),
                );
                let size = data[self.pos + 8];
                self.pos += 9;
                block.push_memory(kind, addr, size);
            } else {
                block.push_compute(kind);
            }
        }
        block.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::mix::InstructionMix;
    use crate::pattern::{AccessPattern, ACCESS_SIZE};
    use crate::region::MemRegion;
    use crate::spec::TraceSpec;

    fn spec(seed: u64, n: u64) -> TraceSpec {
        TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::strided(64, 2))
            .footprint(MemRegion::new(0x4000_0000, 1 << 16))
            .build()
    }

    /// Drains a source through repeated fills.
    fn drain(source: &mut dyn TraceSource, capacity: usize) -> Vec<Instruction> {
        let mut block = InstBlock::with_capacity(capacity);
        let mut out = Vec::new();
        while source.fill(&mut block) > 0 {
            out.extend(block.iter());
        }
        out
    }

    #[test]
    fn block_push_and_get_round_trip() {
        let mut b = InstBlock::with_capacity(4);
        assert!(b.is_empty());
        b.push(Instruction::compute(InstKind::IntAlu));
        b.push(Instruction::memory(InstKind::Load, 0xBEEF, 8));
        assert_eq!(b.len(), 2);
        assert_eq!(b.remaining_capacity(), 2);
        assert_eq!(b.get(0), Instruction::compute(InstKind::IntAlu));
        assert_eq!(b.get(1), Instruction::memory(InstKind::Load, 0xBEEF, 8));
        assert_eq!(b.kinds(), &[InstKind::IntAlu, InstKind::Load]);
        assert_eq!(b.addrs(), &[0, 0xBEEF]);
        assert_eq!(b.sizes(), &[0, 8]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn block_overflow_rejected() {
        let mut b = InstBlock::with_capacity(1);
        b.push_compute(InstKind::IntAlu);
        b.push_compute(InstKind::IntAlu);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_capacity_rejected() {
        let _ = InstBlock::with_capacity(0);
    }

    #[test]
    fn spec_source_matches_iterator_for_any_capacity() {
        let s = spec(99, 5000);
        let via_iter: Vec<Instruction> = s.iter().collect();
        for capacity in [1, 7, 64, BLOCK_CAPACITY, 5000, 9000] {
            let got = drain(&mut s.source(), capacity);
            assert_eq!(got, via_iter, "capacity {capacity}");
        }
    }

    #[test]
    fn spec_source_reports_remaining() {
        let s = spec(3, 300);
        let mut src = s.source();
        assert_eq!(src.remaining(), 300);
        let mut block = InstBlock::with_capacity(128);
        assert_eq!(src.fill(&mut block), 128);
        assert_eq!(src.remaining(), 172);
        assert_eq!(src.fill(&mut block), 128);
        assert_eq!(src.fill(&mut block), 44);
        assert_eq!(src.remaining(), 0);
        assert_eq!(src.fill(&mut block), 0);
        assert_eq!(src.fill(&mut block), 0, "exhausted source stays exhausted");
    }

    /// The pre-refactor trace algorithm, reconstructed one instruction at
    /// a time from the public pieces: sample a kind, then (for memory
    /// kinds) draw the next address. Pins the batched/specialized fill
    /// paths to the original per-instruction semantics.
    fn naive_stream(s: &TraceSpec) -> Vec<Instruction> {
        let mut code_rng = Xoshiro256pp::seed_from_u64(s.code_seed());
        let mut data_rng = Xoshiro256pp::seed_from_u64(s.seed());
        let mut addresses = (!s.footprint().is_empty())
            .then(|| AddressStream::new(s.pattern(), s.footprint(), s.shared(), s.seed()));
        (0..s.instructions())
            .map(|_| {
                let kind = s.mix().sample(&mut code_rng);
                if kind.is_memory() {
                    let addr =
                        addresses.as_mut().expect("footprint").next_addr(kind, &mut data_rng);
                    Instruction::memory(kind, addr, ACCESS_SIZE)
                } else {
                    Instruction::compute(kind)
                }
            })
            .collect()
    }

    #[test]
    fn batched_fill_matches_per_instruction_algorithm_for_every_pattern() {
        let patterns = [
            AccessPattern::sequential(8),
            AccessPattern::sequential(192),
            AccessPattern::strided(128, 4),
            AccessPattern::Random,
            AccessPattern::Gather { hot_probability: 0.8, hot_fraction: 0.1 },
            AccessPattern::PointerChase,
            AccessPattern::Stencil { planes: 3, plane_stride: 1024 },
        ];
        for (i, pattern) in patterns.into_iter().enumerate() {
            for mix in [InstructionMix::balanced(), InstructionMix::atomic_heavy()] {
                for shared in [MemRegion::empty(), MemRegion::new(0x9000_0000, 2048)] {
                    let s = TraceSpec::builder()
                        .seed(1000 + i as u64)
                        .code_seed(7)
                        .instructions(4000)
                        .mix(mix.clone())
                        .pattern(pattern)
                        .footprint(MemRegion::new(0x4000_0000, 1 << 16))
                        .shared(shared)
                        .build();
                    let got = drain(&mut s.source(), 100);
                    assert_eq!(got, naive_stream(&s), "pattern {pattern:?} shared {shared:?}");
                }
            }
        }
    }

    #[test]
    fn pure_compute_fill_zeroes_address_columns() {
        let s = TraceSpec::builder()
            .instructions(500)
            .mix(InstructionMix::from_weights(&[(InstKind::IntAlu, 0.8), (InstKind::Branch, 0.2)]))
            .build();
        let mut src = s.source();
        let mut block = InstBlock::with_capacity(128);
        while src.fill(&mut block) > 0 {
            assert!(block.addrs().iter().all(|&a| a == 0));
            assert!(block.sizes().iter().all(|&z| z == 0));
            assert_eq!(block.addrs().len(), block.len());
            assert_eq!(block.sizes().len(), block.len());
        }
    }

    #[test]
    fn recorded_trace_replays_encoded_stream() {
        let s = spec(7, 2500);
        let original: Vec<Instruction> = s.iter().collect();
        let mut recorded = RecordedTrace::new(encode(original.iter().copied())).unwrap();
        assert_eq!(recorded.instructions(), 2500);
        let got = drain(&mut recorded, 100);
        assert_eq!(got, original);
    }

    #[test]
    fn recorded_trace_rejects_corrupt_input() {
        assert_eq!(
            RecordedTrace::new(Bytes::from(vec![0xFF])).unwrap_err(),
            DecodeError::BadKind(0xFF)
        );
        // A memory record cut short.
        let good = encode([Instruction::memory(InstKind::Store, 0x1000, 8)]);
        let cut = good.slice(0..good.len() - 1);
        assert_eq!(RecordedTrace::new(cut).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn cloned_recorded_trace_shares_bytes_and_replays_from_start() {
        let s = spec(5, 600);
        let original: Vec<Instruction> = s.iter().collect();
        let arc: Arc<[u8]> = Arc::from(encode(original.iter().copied()).as_ref());
        let fresh = RecordedTrace::from_arc(Arc::clone(&arc)).unwrap();
        // No copy at construction from an Arc: 1 (local) + 1 (trace) owners.
        assert_eq!(Arc::strong_count(&arc), 2);
        let mut a = fresh.clone();
        // Clones share the storage rather than duplicating it.
        assert_eq!(Arc::strong_count(&arc), 3);
        // Partially consume the first clone, then clone again: the second
        // clone resumes from the first's cursor (it is a snapshot), while a
        // clone of the untouched original replays from the start.
        let mut block = InstBlock::with_capacity(100);
        assert_eq!(a.fill(&mut block), 100);
        let mut resumed = a.clone();
        assert_eq!(resumed.bytes(), a.bytes());
        assert_eq!(drain(&mut resumed, 64), original[100..]);
        let replay = drain(&mut fresh.clone(), 64);
        assert_eq!(replay, original);
    }

    #[test]
    fn empty_recorded_trace_is_valid_and_exhausted() {
        let mut r = RecordedTrace::new(Bytes::from(Vec::new())).unwrap();
        assert_eq!(r.instructions(), 0);
        let mut block = InstBlock::new();
        assert_eq!(r.fill(&mut block), 0);
    }
}
