//! External trace ingestion: the `*.tptrace` event-stream formats.
//!
//! The original TaskPoint evaluation consumes traces of real OmpSs
//! executions recorded by the TaskSim toolchain (Paraver-style event
//! streams: task begin/end markers interleaved across threads, plus the
//! dynamic instruction stream of every task instance). This module is the
//! reproduction's frontend for such *foreign* traces: it parses a
//! documented on-disk format — one text and one binary encoding of the
//! same event model, see `docs/TRACE_FORMATS.md` — into an
//! [`IngestedTrace`], from which the simulator-facing crates build a
//! `Program` plus a `RecordedTraces` bundle that replays through the
//! batched [`TraceSource`](crate::TraceSource) pipeline.
//!
//! # Event model
//!
//! A trace is a sequence of events over a set of *threads*:
//!
//! * `T` — declare a task type (id, name, and the two per-type
//!   microarchitectural event rates the detailed core model needs:
//!   branch-misprediction and instruction-dependency probability);
//! * `B` — a task instance begins on a thread (with the ids of the tasks
//!   it depends on, all of which must already have ended);
//! * `I` / `M` — the thread's open task executes one compute / memory
//!   instruction;
//! * `E` — the open task ends.
//!
//! Tasks on *different* threads interleave arbitrarily, exactly like a
//! Paraver timeline; each thread runs at most one task at a time.
//!
//! # Validation
//!
//! Parsing is strict and total: malformed records, unknown instruction
//! kinds, unknown or unused task types, out-of-order events (instructions
//! outside a task, mismatched or missing ends, dependencies on tasks that
//! have not retired) are all reported as typed [`IngestError`]s — never
//! panics, whatever the input bytes.
//!
//! # Example
//!
//! ```
//! use taskpoint_trace::ingest::IngestedTrace;
//!
//! let text = "\
//! %tptrace 1
//! T:0:gemm
//! B:0:0:0
//! I:0:int_alu
//! M:0:load:1f400:8
//! E:0:0
//! ";
//! let trace = IngestedTrace::parse_text(text).unwrap();
//! assert_eq!(trace.num_tasks(), 1);
//! assert_eq!(trace.total_instructions(), 2);
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use crate::inst::{InstKind, Instruction};

/// Magic prefix of the binary `*.tptrace` encoding.
pub const BINARY_MAGIC: &[u8; 4] = b"TPTB";
/// Header line of the text `*.tptrace` encoding.
pub const TEXT_HEADER: &str = "%tptrace 1";
/// The only format version this parser understands.
pub const FORMAT_VERSION: u16 = 1;

/// A malformed or semantically invalid external trace.
///
/// `line` fields are 1-based input positions: the line number for text
/// input, the record ordinal for binary input. Offsets are byte positions
/// into binary input.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// Text input does not start with the `%tptrace <version>` header.
    MissingHeader,
    /// The header names a format version this parser does not support.
    UnsupportedVersion {
        /// The version string found in the header.
        found: String,
    },
    /// Input routed to the text parser is not valid UTF-8.
    InvalidUtf8,
    /// Binary input does not start with [`BINARY_MAGIC`].
    BadMagic,
    /// Binary input ended in the middle of a record.
    Truncated {
        /// Byte offset at which more input was required.
        offset: usize,
    },
    /// Binary input contains an unknown record tag.
    BadEventTag {
        /// Byte offset of the tag.
        offset: usize,
        /// The unknown tag byte.
        tag: u8,
    },
    /// Binary input contains an invalid instruction-kind discriminant.
    BadKindByte {
        /// Byte offset of the kind byte.
        offset: usize,
        /// The invalid discriminant.
        byte: u8,
    },
    /// A record could not be tokenized (wrong field count, unparsable
    /// number, non-UTF-8 type name, …).
    Malformed {
        /// Input position (see type docs).
        line: u64,
        /// What was wrong.
        reason: String,
    },
    /// A text record names an instruction kind that does not exist.
    UnknownKindName {
        /// Input position.
        line: u64,
        /// The unknown kind name.
        kind: String,
    },
    /// A type name that cannot survive both serializations: empty, longer
    /// than 65535 bytes, or containing `':'` / control characters.
    BadTypeName {
        /// Input position.
        line: u64,
        /// The rejected name.
        name: String,
    },
    /// A per-type event rate is outside `[0, 1]`.
    RateOutOfRange {
        /// Input position.
        line: u64,
        /// The offending value.
        value: f64,
    },
    /// A type id was declared twice.
    DuplicateType {
        /// Input position of the second declaration.
        line: u64,
        /// The redeclared type id.
        type_id: u32,
    },
    /// A declared type has no task instances (the runtime's `Program`
    /// rejects instance-free types, so ingestion does too).
    UnusedType {
        /// The unused type id.
        type_id: u32,
    },
    /// A begin record references an undeclared task type.
    UnknownTaskType {
        /// Input position.
        line: u64,
        /// The undeclared type id.
        type_id: u32,
    },
    /// A task id began twice.
    DuplicateTask {
        /// Input position of the second begin.
        line: u64,
        /// The duplicated task id.
        task: u64,
    },
    /// A task began on a thread that already has an open task.
    ThreadBusy {
        /// Input position.
        line: u64,
        /// The busy thread.
        thread: u32,
        /// The task already open on it.
        running: u64,
    },
    /// An instruction or end record hit a thread with no open task.
    NoOpenTask {
        /// Input position.
        line: u64,
        /// The idle thread.
        thread: u32,
    },
    /// An end record's task id does not match the thread's open task.
    EndMismatch {
        /// Input position.
        line: u64,
        /// The thread the end was recorded on.
        thread: u32,
        /// The task actually open on the thread.
        expected: u64,
        /// The task id the end record carries.
        found: u64,
    },
    /// A compute record (`I`) carries a memory kind — memory instructions
    /// must carry an address via `M`.
    MemoryKindInCompute {
        /// Input position.
        line: u64,
        /// The memory kind found.
        kind: InstKind,
    },
    /// A memory record (`M`) carries a non-memory kind.
    ComputeKindInMemory {
        /// Input position.
        line: u64,
        /// The non-memory kind found.
        kind: InstKind,
    },
    /// A begin record depends on a task id never seen.
    UnknownDependency {
        /// Input position.
        line: u64,
        /// The beginning task.
        task: u64,
        /// The unknown dependency id.
        dep: u64,
    },
    /// A task depends on itself.
    SelfDependency {
        /// Input position.
        line: u64,
        /// The task id.
        task: u64,
    },
    /// A begin record depends on a task that had not ended yet — a
    /// recorded execution can only have retired dependences.
    DependencyNotRetired {
        /// Input position.
        line: u64,
        /// The beginning task.
        task: u64,
        /// The still-running dependency.
        dep: u64,
    },
    /// The input ended while a task was still open.
    UnclosedTask {
        /// The thread whose task never ended.
        thread: u32,
        /// The unclosed task id.
        task: u64,
    },
    /// A task ended with zero instructions.
    EmptyTask {
        /// Input position of the end record.
        line: u64,
        /// The empty task id.
        task: u64,
    },
    /// The trace contains no tasks at all.
    EmptyTrace,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::MissingHeader => {
                write!(f, "missing `{TEXT_HEADER}` header line")
            }
            IngestError::UnsupportedVersion { found } => {
                write!(f, "unsupported tptrace version {found:?} (expected {FORMAT_VERSION})")
            }
            IngestError::InvalidUtf8 => write!(f, "text trace is not valid UTF-8"),
            IngestError::BadMagic => write!(f, "not a binary tptrace (bad magic)"),
            IngestError::Truncated { offset } => {
                write!(f, "binary trace truncated at byte {offset}")
            }
            IngestError::BadEventTag { offset, tag } => {
                write!(f, "unknown record tag 0x{tag:02x} at byte {offset}")
            }
            IngestError::BadKindByte { offset, byte } => {
                write!(f, "invalid instruction kind byte 0x{byte:02x} at byte {offset}")
            }
            IngestError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            IngestError::UnknownKindName { line, kind } => {
                write!(f, "line {line}: unknown instruction kind {kind:?}")
            }
            IngestError::BadTypeName { line, name } => {
                write!(
                    f,
                    "line {line}: invalid type name {name:?} (must be non-empty, <= 65535 bytes, \
                     without ':' or control characters)"
                )
            }
            IngestError::RateOutOfRange { line, value } => {
                write!(f, "line {line}: event rate {value} outside [0, 1]")
            }
            IngestError::DuplicateType { line, type_id } => {
                write!(f, "line {line}: task type {type_id} declared twice")
            }
            IngestError::UnusedType { type_id } => {
                write!(f, "task type {type_id} has no task instances")
            }
            IngestError::UnknownTaskType { line, type_id } => {
                write!(f, "line {line}: undeclared task type {type_id}")
            }
            IngestError::DuplicateTask { line, task } => {
                write!(f, "line {line}: task {task} began twice")
            }
            IngestError::ThreadBusy { line, thread, running } => {
                write!(f, "line {line}: thread {thread} already runs task {running}")
            }
            IngestError::NoOpenTask { line, thread } => {
                write!(f, "line {line}: thread {thread} has no open task")
            }
            IngestError::EndMismatch { line, thread, expected, found } => write!(
                f,
                "line {line}: end of task {found} on thread {thread}, but task {expected} is open"
            ),
            IngestError::MemoryKindInCompute { line, kind } => {
                write!(f, "line {line}: memory kind {kind} in a compute record (needs an address)")
            }
            IngestError::ComputeKindInMemory { line, kind } => {
                write!(f, "line {line}: non-memory kind {kind} in a memory record")
            }
            IngestError::UnknownDependency { line, task, dep } => {
                write!(f, "line {line}: task {task} depends on unknown task {dep}")
            }
            IngestError::SelfDependency { line, task } => {
                write!(f, "line {line}: task {task} depends on itself")
            }
            IngestError::DependencyNotRetired { line, task, dep } => {
                write!(f, "line {line}: task {task} depends on task {dep}, which has not ended")
            }
            IngestError::UnclosedTask { thread, task } => {
                write!(f, "input ended while task {task} was still open on thread {thread}")
            }
            IngestError::EmptyTask { line, task } => {
                write!(f, "line {line}: task {task} ended with zero instructions")
            }
            IngestError::EmptyTrace => write!(f, "trace contains no tasks"),
        }
    }
}

impl std::error::Error for IngestError {}

/// A task type declared by an ingested trace.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestedType {
    /// The id the file uses for this type.
    pub id: u32,
    /// The type's source-level name.
    pub name: String,
    /// Branch-misprediction probability of the type's instances.
    pub branch_mispredict_rate: f64,
    /// Instruction-dependency probability of the type's instances.
    pub dependency_rate: f64,
}

/// One ingested task instance with its concrete instruction stream.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestedTask {
    /// The id the file uses for this task.
    pub task_id: u64,
    /// Dense index in begin order — the `TaskInstanceId` the converted
    /// program assigns.
    pub index: u64,
    /// Dense index (declaration order) of the task's type.
    pub type_index: u32,
    /// The thread the task ran on in the recorded execution.
    pub thread: u32,
    /// Dense indices of the tasks this one depends on.
    pub deps: Vec<u64>,
    /// Number of instructions the task executed.
    pub instructions: u64,
    /// The instruction stream in the [`encode`](crate::encode) record
    /// format, shared (`Arc`) so bundles replay it without copying.
    pub bytes: Arc<[u8]>,
}

/// A fully validated external trace: declared task types plus every task
/// instance's dependences and concrete instruction stream.
///
/// Produced by [`IngestedTrace::parse_text`] /
/// [`parse_binary`](IngestedTrace::parse_binary) / the auto-detecting
/// [`parse`](IngestedTrace::parse); serialized back out by
/// [`to_text`](IngestedTrace::to_text) and
/// [`to_binary`](IngestedTrace::to_binary). Serialization is *canonical*:
/// type declarations first, then each task's events contiguously in begin
/// order — the original inter-thread interleaving is not preserved, but
/// re-parsing yields an equal `IngestedTrace`.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestedTrace {
    types: Vec<IngestedType>,
    tasks: Vec<IngestedTask>,
    threads: u32,
}

/// One parsed event, position-tagged, before semantic validation.
enum Event {
    Type { id: u32, name: String, branch_rate: f64, dep_rate: f64 },
    Begin { thread: u32, task: u64, type_id: u32, deps: Vec<u64> },
    Inst { thread: u32, kind: InstKind },
    Mem { thread: u32, kind: InstKind, addr: u64, size: u8 },
    End { thread: u32, task: u64 },
}

/// Semantic validator and accumulator shared by both syntaxes.
#[derive(Default)]
struct Assembler {
    types: Vec<IngestedType>,
    type_index: HashMap<u32, u32>,
    tasks: Vec<TaskBuild>,
    task_index: HashMap<u64, usize>,
    /// thread id -> dense index of its open task.
    open: HashMap<u32, usize>,
    threads: u32,
}

struct TaskBuild {
    task_id: u64,
    type_index: u32,
    thread: u32,
    deps: Vec<u64>,
    instructions: u64,
    bytes: Vec<u8>,
    ended: bool,
}

impl Assembler {
    fn event(&mut self, at: u64, ev: Event) -> Result<(), IngestError> {
        match ev {
            Event::Type { id, name, branch_rate, dep_rate } => {
                // Names must survive both serializations: non-empty, no
                // ':' (the text field separator) or control characters,
                // and at most 65535 bytes (the binary length prefix).
                // The binary parser would otherwise accept names whose
                // canonical text form cannot be re-parsed.
                if name.is_empty()
                    || name.len() > u16::MAX as usize
                    || name.chars().any(|c| c == ':' || c.is_control())
                {
                    return Err(IngestError::BadTypeName { line: at, name });
                }
                for rate in [branch_rate, dep_rate] {
                    if !(0.0..=1.0).contains(&rate) {
                        return Err(IngestError::RateOutOfRange { line: at, value: rate });
                    }
                }
                if self.type_index.contains_key(&id) {
                    return Err(IngestError::DuplicateType { line: at, type_id: id });
                }
                self.type_index.insert(id, self.types.len() as u32);
                self.types.push(IngestedType {
                    id,
                    name,
                    branch_mispredict_rate: branch_rate,
                    dependency_rate: dep_rate,
                });
                Ok(())
            }
            Event::Begin { thread, task, type_id, deps } => {
                let Some(&type_index) = self.type_index.get(&type_id) else {
                    return Err(IngestError::UnknownTaskType { line: at, type_id });
                };
                if self.task_index.contains_key(&task) {
                    return Err(IngestError::DuplicateTask { line: at, task });
                }
                if let Some(&running) = self.open.get(&thread) {
                    let running = self.tasks[running].task_id;
                    return Err(IngestError::ThreadBusy { line: at, thread, running });
                }
                // The binary encoding prefixes the dependency list with a
                // u16 count, so longer lists could not round-trip.
                if deps.len() > u16::MAX as usize {
                    return Err(malformed(
                        at,
                        format!("task {task} lists {} dependencies (max 65535)", deps.len()),
                    ));
                }
                let mut dense_deps = Vec::with_capacity(deps.len());
                for dep in deps {
                    if dep == task {
                        return Err(IngestError::SelfDependency { line: at, task });
                    }
                    let Some(&dep_idx) = self.task_index.get(&dep) else {
                        return Err(IngestError::UnknownDependency { line: at, task, dep });
                    };
                    if !self.tasks[dep_idx].ended {
                        return Err(IngestError::DependencyNotRetired { line: at, task, dep });
                    }
                    dense_deps.push(dep_idx as u64);
                }
                // `threads` is "max id + 1"; id u32::MAX would overflow it.
                let Some(thread_count) = thread.checked_add(1) else {
                    return Err(malformed(at, format!("thread id {thread} out of range")));
                };
                let index = self.tasks.len();
                self.task_index.insert(task, index);
                self.open.insert(thread, index);
                self.threads = self.threads.max(thread_count);
                self.tasks.push(TaskBuild {
                    task_id: task,
                    type_index,
                    thread,
                    deps: dense_deps,
                    instructions: 0,
                    bytes: Vec::new(),
                    ended: false,
                });
                Ok(())
            }
            Event::Inst { thread, kind } => {
                if kind.is_memory() {
                    return Err(IngestError::MemoryKindInCompute { line: at, kind });
                }
                let task = self.open_task(at, thread)?;
                task.bytes.push(kind as u8);
                task.instructions += 1;
                Ok(())
            }
            Event::Mem { thread, kind, addr, size } => {
                if !kind.is_memory() {
                    return Err(IngestError::ComputeKindInMemory { line: at, kind });
                }
                let task = self.open_task(at, thread)?;
                task.bytes.push(kind as u8);
                task.bytes.extend_from_slice(&addr.to_le_bytes());
                task.bytes.push(size);
                task.instructions += 1;
                Ok(())
            }
            Event::End { thread, task } => {
                let open = self.open_task(at, thread)?;
                if open.task_id != task {
                    let expected = open.task_id;
                    return Err(IngestError::EndMismatch {
                        line: at,
                        thread,
                        expected,
                        found: task,
                    });
                }
                if open.instructions == 0 {
                    return Err(IngestError::EmptyTask { line: at, task });
                }
                open.ended = true;
                self.open.remove(&thread);
                Ok(())
            }
        }
    }

    fn open_task(&mut self, at: u64, thread: u32) -> Result<&mut TaskBuild, IngestError> {
        match self.open.get(&thread) {
            Some(&idx) => Ok(&mut self.tasks[idx]),
            None => Err(IngestError::NoOpenTask { line: at, thread }),
        }
    }

    fn finish(self) -> Result<IngestedTrace, IngestError> {
        if let Some((&thread, &idx)) = self.open.iter().min_by_key(|(&t, _)| t) {
            return Err(IngestError::UnclosedTask { thread, task: self.tasks[idx].task_id });
        }
        if self.tasks.is_empty() {
            return Err(IngestError::EmptyTrace);
        }
        let mut used = vec![false; self.types.len()];
        for t in &self.tasks {
            used[t.type_index as usize] = true;
        }
        if let Some(unused) = used.iter().position(|&u| !u) {
            return Err(IngestError::UnusedType { type_id: self.types[unused].id });
        }
        let tasks = self
            .tasks
            .into_iter()
            .enumerate()
            .map(|(index, t)| IngestedTask {
                task_id: t.task_id,
                index: index as u64,
                type_index: t.type_index,
                thread: t.thread,
                deps: t.deps,
                instructions: t.instructions,
                bytes: Arc::from(t.bytes),
            })
            .collect();
        Ok(IngestedTrace { types: self.types, tasks, threads: self.threads })
    }
}

/// Default branch-misprediction rate when a text `T` record omits rates.
pub const DEFAULT_BRANCH_RATE: f64 = 0.02;
/// Default instruction-dependency rate when a text `T` record omits rates.
pub const DEFAULT_DEPENDENCY_RATE: f64 = 0.15;

fn malformed(line: u64, reason: impl Into<String>) -> IngestError {
    IngestError::Malformed { line, reason: reason.into() }
}

fn parse_num<T: std::str::FromStr>(line: u64, field: &str, what: &str) -> Result<T, IngestError> {
    field.parse().map_err(|_| malformed(line, format!("invalid {what} {field:?}")))
}

fn parse_rate(line: u64, field: &str) -> Result<f64, IngestError> {
    field.parse().map_err(|_| malformed(line, format!("invalid rate {field:?}")))
}

fn parse_size(line: u64, field: &str) -> Result<u8, IngestError> {
    let size: u8 = parse_num(line, field, "access size")?;
    if size == 0 {
        return Err(malformed(line, "access size must be >= 1"));
    }
    Ok(size)
}

fn parse_kind(line: u64, field: &str) -> Result<InstKind, IngestError> {
    InstKind::from_name(field)
        .ok_or_else(|| IngestError::UnknownKindName { line, kind: field.to_string() })
}

impl IngestedTrace {
    /// Parses the text `*.tptrace` encoding.
    ///
    /// # Errors
    ///
    /// Any lexical or semantic violation of the format, as a typed
    /// [`IngestError`]; this function never panics on any input.
    pub fn parse_text(text: &str) -> Result<Self, IngestError> {
        let mut lines = text.lines().enumerate().map(|(i, l)| (i as u64 + 1, l.trim()));
        let header = lines
            .by_ref()
            .find(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .ok_or(IngestError::MissingHeader)?
            .1;
        match header.strip_prefix("%tptrace") {
            None => return Err(IngestError::MissingHeader),
            Some(version) if version.trim() != FORMAT_VERSION.to_string() => {
                return Err(IngestError::UnsupportedVersion { found: version.trim().to_string() })
            }
            Some(_) => {}
        }
        let mut asm = Assembler::default();
        for (at, line) in lines {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(':').collect();
            let arity = |want: &[usize]| -> Result<(), IngestError> {
                if want.contains(&(fields.len() - 1)) {
                    Ok(())
                } else {
                    Err(malformed(
                        at,
                        format!("record {:?} has {} fields", fields[0], fields.len() - 1),
                    ))
                }
            };
            let ev = match fields[0] {
                "T" => {
                    arity(&[2, 4])?;
                    let (branch_rate, dep_rate) = if fields.len() == 5 {
                        (parse_rate(at, fields[3])?, parse_rate(at, fields[4])?)
                    } else {
                        (DEFAULT_BRANCH_RATE, DEFAULT_DEPENDENCY_RATE)
                    };
                    Event::Type {
                        id: parse_num(at, fields[1], "type id")?,
                        name: fields[2].to_string(),
                        branch_rate,
                        dep_rate,
                    }
                }
                "B" => {
                    arity(&[3, 4])?;
                    let deps = match fields.get(4) {
                        None => Vec::new(),
                        Some(list) => list
                            .split(',')
                            .map(|d| parse_num(at, d, "dependency id"))
                            .collect::<Result<_, _>>()?,
                    };
                    Event::Begin {
                        thread: parse_num(at, fields[1], "thread id")?,
                        task: parse_num(at, fields[2], "task id")?,
                        type_id: parse_num(at, fields[3], "type id")?,
                        deps,
                    }
                }
                "I" => {
                    arity(&[2])?;
                    Event::Inst {
                        thread: parse_num(at, fields[1], "thread id")?,
                        kind: parse_kind(at, fields[2])?,
                    }
                }
                "M" => {
                    arity(&[4])?;
                    Event::Mem {
                        thread: parse_num(at, fields[1], "thread id")?,
                        kind: parse_kind(at, fields[2])?,
                        addr: u64::from_str_radix(fields[3], 16).map_err(|_| {
                            malformed(at, format!("invalid hex address {:?}", fields[3]))
                        })?,
                        size: parse_size(at, fields[4])?,
                    }
                }
                "E" => {
                    arity(&[2])?;
                    Event::End {
                        thread: parse_num(at, fields[1], "thread id")?,
                        task: parse_num(at, fields[2], "task id")?,
                    }
                }
                other => return Err(malformed(at, format!("unknown record {other:?}"))),
            };
            asm.event(at, ev)?;
        }
        asm.finish()
    }

    /// Parses the binary `*.tptrace` encoding.
    ///
    /// # Errors
    ///
    /// Any framing or semantic violation, as a typed [`IngestError`];
    /// never panics on any input.
    pub fn parse_binary(data: &[u8]) -> Result<Self, IngestError> {
        let Some(rest) = data.strip_prefix(BINARY_MAGIC) else {
            return Err(IngestError::BadMagic);
        };
        let mut cur = Cursor { data: rest, pos: 0, base: BINARY_MAGIC.len() };
        let version = cur.u16()?;
        if version != FORMAT_VERSION {
            return Err(IngestError::UnsupportedVersion { found: version.to_string() });
        }
        let mut asm = Assembler::default();
        let mut record = 0u64;
        while !cur.done() {
            record += 1;
            let tag_offset = cur.offset();
            let tag = cur.u8()?;
            let ev = match tag {
                b'T' => {
                    let id = cur.u32()?;
                    let len = cur.u16()? as usize;
                    let name_offset = cur.offset();
                    let name = std::str::from_utf8(cur.bytes(len)?)
                        .map_err(|_| {
                            malformed(record, format!("non-UTF-8 type name at byte {name_offset}"))
                        })?
                        .to_string();
                    let branch_rate = f64::from_bits(cur.u64()?);
                    let dep_rate = f64::from_bits(cur.u64()?);
                    Event::Type { id, name, branch_rate, dep_rate }
                }
                b'B' => {
                    let thread = cur.u32()?;
                    let task = cur.u64()?;
                    let type_id = cur.u32()?;
                    let ndeps = cur.u16()? as usize;
                    let deps = (0..ndeps).map(|_| cur.u64()).collect::<Result<_, _>>()?;
                    Event::Begin { thread, task, type_id, deps }
                }
                b'I' => {
                    let thread = cur.u32()?;
                    Event::Inst { thread, kind: cur.kind()? }
                }
                b'M' => {
                    let thread = cur.u32()?;
                    let kind = cur.kind()?;
                    let addr = cur.u64()?;
                    let size = cur.u8()?;
                    if size == 0 {
                        return Err(malformed(record, "access size must be >= 1"));
                    }
                    Event::Mem { thread, kind, addr, size }
                }
                b'E' => {
                    let thread = cur.u32()?;
                    Event::End { thread, task: cur.u64()? }
                }
                tag => return Err(IngestError::BadEventTag { offset: tag_offset, tag }),
            };
            asm.event(record, ev)?;
        }
        asm.finish()
    }

    /// Parses either encoding, auto-detected: input starting with
    /// [`BINARY_MAGIC`] is binary, everything else is treated as text.
    ///
    /// # Errors
    ///
    /// See [`parse_text`](Self::parse_text) and
    /// [`parse_binary`](Self::parse_binary); non-UTF-8 input without the
    /// binary magic is [`IngestError::InvalidUtf8`].
    pub fn parse(data: &[u8]) -> Result<Self, IngestError> {
        if data.starts_with(BINARY_MAGIC) {
            Self::parse_binary(data)
        } else {
            Self::parse_text(std::str::from_utf8(data).map_err(|_| IngestError::InvalidUtf8)?)
        }
    }

    /// The declared task types, in declaration (dense-index) order.
    pub fn types(&self) -> &[IngestedType] {
        &self.types
    }

    /// The task instances, in begin (dense-index) order.
    pub fn tasks(&self) -> &[IngestedTask] {
        &self.tasks
    }

    /// Number of task types.
    pub fn num_types(&self) -> usize {
        self.types.len()
    }

    /// Number of task instances.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// Number of threads the recorded execution used (max thread id + 1).
    pub fn threads(&self) -> u32 {
        self.threads
    }

    /// Total instruction count over all tasks.
    pub fn total_instructions(&self) -> u64 {
        self.tasks.iter().map(|t| t.instructions).sum()
    }

    /// Instructions per type, indexed by dense type index.
    pub fn instructions_per_type(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.types.len()];
        for t in &self.tasks {
            counts[t.type_index as usize] += t.instructions;
        }
        counts
    }

    /// Task instances per type, indexed by dense type index.
    pub fn tasks_per_type(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.types.len()];
        for t in &self.tasks {
            counts[t.type_index as usize] += 1;
        }
        counts
    }

    /// Decodes one task's instruction stream into concrete instructions.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range (the stream bytes themselves were
    /// validated during ingestion and always decode).
    pub fn instructions_of(&self, index: usize) -> Vec<Instruction> {
        let task = &self.tasks[index];
        crate::encode::decode(bytes::Bytes::from(task.bytes.to_vec()))
            .expect("ingested streams are valid encode records")
    }

    /// Serializes to the canonical text encoding (header, type
    /// declarations, then each task's events contiguously in begin order).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{TEXT_HEADER}");
        for ty in &self.types {
            let _ = writeln!(
                out,
                "T:{}:{}:{}:{}",
                ty.id, ty.name, ty.branch_mispredict_rate, ty.dependency_rate
            );
        }
        for (index, task) in self.tasks.iter().enumerate() {
            let _ = write!(
                out,
                "B:{}:{}:{}",
                task.thread, task.task_id, self.types[task.type_index as usize].id
            );
            if !task.deps.is_empty() {
                let deps: Vec<String> =
                    task.deps.iter().map(|&d| self.tasks[d as usize].task_id.to_string()).collect();
                let _ = write!(out, ":{}", deps.join(","));
            }
            out.push('\n');
            for inst in self.instructions_of(index) {
                if inst.kind.is_memory() {
                    let _ = writeln!(
                        out,
                        "M:{}:{}:{:x}:{}",
                        task.thread, inst.kind, inst.addr, inst.size
                    );
                } else {
                    let _ = writeln!(out, "I:{}:{}", task.thread, inst.kind);
                }
            }
            let _ = writeln!(out, "E:{}:{}", task.thread, task.task_id);
        }
        out
    }

    /// Serializes to the canonical binary encoding (same record order as
    /// [`to_text`](Self::to_text)).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(BINARY_MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for ty in &self.types {
            out.push(b'T');
            out.extend_from_slice(&ty.id.to_le_bytes());
            out.extend_from_slice(&(ty.name.len() as u16).to_le_bytes());
            out.extend_from_slice(ty.name.as_bytes());
            out.extend_from_slice(&ty.branch_mispredict_rate.to_bits().to_le_bytes());
            out.extend_from_slice(&ty.dependency_rate.to_bits().to_le_bytes());
        }
        for (index, task) in self.tasks.iter().enumerate() {
            out.push(b'B');
            out.extend_from_slice(&task.thread.to_le_bytes());
            out.extend_from_slice(&task.task_id.to_le_bytes());
            out.extend_from_slice(&self.types[task.type_index as usize].id.to_le_bytes());
            out.extend_from_slice(&(task.deps.len() as u16).to_le_bytes());
            for &d in &task.deps {
                out.extend_from_slice(&self.tasks[d as usize].task_id.to_le_bytes());
            }
            for inst in self.instructions_of(index) {
                if inst.kind.is_memory() {
                    out.push(b'M');
                    out.extend_from_slice(&task.thread.to_le_bytes());
                    out.push(inst.kind as u8);
                    out.extend_from_slice(&inst.addr.to_le_bytes());
                    out.push(inst.size);
                } else {
                    out.push(b'I');
                    out.extend_from_slice(&task.thread.to_le_bytes());
                    out.push(inst.kind as u8);
                }
            }
            out.push(b'E');
            out.extend_from_slice(&task.thread.to_le_bytes());
            out.extend_from_slice(&task.task_id.to_le_bytes());
        }
        out
    }
}

/// Bounds-checked reader over the binary payload.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
    /// Bytes preceding `data` in the file (for error offsets).
    base: usize,
}

impl<'a> Cursor<'a> {
    fn offset(&self) -> usize {
        self.base + self.pos
    }

    fn done(&self) -> bool {
        self.pos == self.data.len()
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], IngestError> {
        match self.data.get(self.pos..self.pos + n) {
            Some(b) => {
                self.pos += n;
                Ok(b)
            }
            None => Err(IngestError::Truncated { offset: self.base + self.data.len() }),
        }
    }

    fn u8(&mut self) -> Result<u8, IngestError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, IngestError> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().expect("length checked")))
    }

    fn u32(&mut self) -> Result<u32, IngestError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().expect("length checked")))
    }

    fn u64(&mut self) -> Result<u64, IngestError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().expect("length checked")))
    }

    fn kind(&mut self) -> Result<InstKind, IngestError> {
        let offset = self.offset();
        let byte = self.u8()?;
        InstKind::from_u8(byte).ok_or(IngestError::BadKindByte { offset, byte })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &str = "\
%tptrace 1
# a tile DAG fragment over two threads
T:0:potrf:0.01:0.3
T:7:gemm
B:0:0:0
I:0:int_alu
M:0:load:1f400:8
B:1:10:7
I:1:fp_mul
I:0:branch
E:0:0
M:1:store:2e000:8
B:0:1:7:0
I:0:fp_alu
E:1:10
E:0:1
";

    fn valid() -> IngestedTrace {
        IngestedTrace::parse_text(VALID).expect("fixture is valid")
    }

    #[test]
    fn parses_interleaved_threads_and_remaps_densely() {
        let t = valid();
        assert_eq!(t.num_types(), 2);
        assert_eq!(t.num_tasks(), 3);
        assert_eq!(t.threads(), 2);
        assert_eq!(t.total_instructions(), 6);
        assert_eq!(t.tasks_per_type(), vec![1, 2]);
        assert_eq!(t.instructions_per_type(), vec![3, 3]);
        // Dense indices follow begin order: 0, 10, 1 -> 0, 1, 2.
        assert_eq!(t.tasks()[1].task_id, 10);
        assert_eq!(t.tasks()[1].index, 1);
        assert_eq!(t.tasks()[1].type_index, 1);
        // Task "1" depends on original id 0 -> dense 0.
        assert_eq!(t.tasks()[2].deps, vec![0]);
        // Interleaving is per thread: task 0's stream is alu, load, branch.
        let insts = t.instructions_of(0);
        assert_eq!(insts.len(), 3);
        assert_eq!(insts[0], Instruction::compute(InstKind::IntAlu));
        assert_eq!(insts[1], Instruction::memory(InstKind::Load, 0x1f400, 8));
        assert_eq!(insts[2], Instruction::compute(InstKind::Branch));
    }

    #[test]
    fn per_type_rates_parse_with_defaults() {
        let t = valid();
        assert_eq!(t.types()[0].branch_mispredict_rate, 0.01);
        assert_eq!(t.types()[0].dependency_rate, 0.3);
        assert_eq!(t.types()[1].branch_mispredict_rate, DEFAULT_BRANCH_RATE);
        assert_eq!(t.types()[1].dependency_rate, DEFAULT_DEPENDENCY_RATE);
    }

    #[test]
    fn text_and_binary_round_trip_canonically() {
        let t = valid();
        let text = t.to_text();
        assert_eq!(IngestedTrace::parse_text(&text).unwrap(), t);
        let bin = t.to_binary();
        assert_eq!(IngestedTrace::parse_binary(&bin).unwrap(), t);
        // Auto-detection picks the right parser for both encodings.
        assert_eq!(IngestedTrace::parse(text.as_bytes()).unwrap(), t);
        assert_eq!(IngestedTrace::parse(&bin).unwrap(), t);
    }

    #[test]
    fn header_errors() {
        assert_eq!(IngestedTrace::parse_text(""), Err(IngestError::MissingHeader));
        assert_eq!(IngestedTrace::parse_text("# only comments\n"), Err(IngestError::MissingHeader));
        assert_eq!(IngestedTrace::parse_text("T:0:x\n"), Err(IngestError::MissingHeader));
        assert_eq!(
            IngestedTrace::parse_text("%tptrace 9\n"),
            Err(IngestError::UnsupportedVersion { found: "9".into() })
        );
        assert_eq!(IngestedTrace::parse(&[0xC0, 0xAF]), Err(IngestError::InvalidUtf8));
        assert_eq!(IngestedTrace::parse_binary(b"nope"), Err(IngestError::BadMagic));
    }

    /// Replaces the first line containing `pat` with `repl`.
    fn mutate(pat: &str, repl: &str) -> Result<IngestedTrace, IngestError> {
        let mutated: Vec<String> = VALID
            .lines()
            .map(|l| if l.contains(pat) { repl.to_string() } else { l.to_string() })
            .collect();
        IngestedTrace::parse_text(&(mutated.join("\n") + "\n"))
    }

    #[test]
    fn semantic_errors_are_typed() {
        assert_eq!(
            mutate("B:0:0:0", "B:0:0:3"),
            Err(IngestError::UnknownTaskType { line: 5, type_id: 3 })
        );
        assert_eq!(
            mutate("B:1:10:7", "B:1:0:7"),
            Err(IngestError::DuplicateTask { line: 8, task: 0 })
        );
        assert_eq!(
            mutate("B:1:10:7", "B:0:10:7"),
            Err(IngestError::ThreadBusy { line: 8, thread: 0, running: 0 })
        );
        assert_eq!(
            mutate("I:1:fp_mul", "I:2:fp_mul"),
            Err(IngestError::NoOpenTask { line: 9, thread: 2 })
        );
        assert_eq!(
            mutate("E:0:0", "E:0:99"),
            Err(IngestError::EndMismatch { line: 11, thread: 0, expected: 0, found: 99 })
        );
        assert_eq!(
            mutate("I:0:int_alu", "I:0:load"),
            Err(IngestError::MemoryKindInCompute { line: 6, kind: InstKind::Load })
        );
        assert_eq!(
            mutate("M:0:load:1f400:8", "M:0:branch:1f400:8"),
            Err(IngestError::ComputeKindInMemory { line: 7, kind: InstKind::Branch })
        );
        assert_eq!(
            mutate("B:0:1:7:0", "B:0:1:7:55"),
            Err(IngestError::UnknownDependency { line: 13, task: 1, dep: 55 })
        );
        assert_eq!(
            mutate("B:0:1:7:0", "B:0:1:7:1"),
            Err(IngestError::SelfDependency { line: 13, task: 1 })
        );
        assert_eq!(
            mutate("B:0:1:7:0", "B:0:1:7:10"),
            Err(IngestError::DependencyNotRetired { line: 13, task: 1, dep: 10 })
        );
        assert_eq!(
            mutate("T:7:gemm", "T:0:gemm"),
            Err(IngestError::DuplicateType { line: 4, type_id: 0 })
        );
        assert_eq!(
            mutate("E:0:1", "# gone"),
            Err(IngestError::UnclosedTask { thread: 0, task: 1 })
        );
        assert_eq!(
            mutate("T:0:potrf:0.01:0.3", "T:0:potrf:1.5:0.3"),
            Err(IngestError::RateOutOfRange { line: 3, value: 1.5 })
        );
    }

    #[test]
    fn lexical_errors_are_typed() {
        assert!(matches!(mutate("I:0:int_alu", "I:0:frobnicate"),
            Err(IngestError::UnknownKindName { line: 6, ref kind }) if kind == "frobnicate"));
        assert!(matches!(
            mutate("I:0:int_alu", "X:0:1"),
            Err(IngestError::Malformed { line: 6, .. })
        ));
        assert!(matches!(
            mutate("I:0:int_alu", "I:zz:int_alu"),
            Err(IngestError::Malformed { line: 6, .. })
        ));
        assert!(matches!(
            mutate("M:0:load:1f400:8", "M:0:load:0xGG:8"),
            Err(IngestError::Malformed { line: 7, .. })
        ));
        assert!(matches!(
            mutate("M:0:load:1f400:8", "M:0:load:1f400:0"),
            Err(IngestError::Malformed { line: 7, .. })
        ));
        assert!(matches!(
            mutate("I:0:int_alu", "I:0"),
            Err(IngestError::Malformed { line: 6, .. })
        ));
        assert!(matches!(
            mutate("B:0:1:7:0", "B:0:1:7:"),
            Err(IngestError::Malformed { line: 13, .. })
        ));
    }

    #[test]
    fn empty_task_and_empty_trace_rejected() {
        let empty_task = "%tptrace 1\nT:0:x\nB:0:0:0\nE:0:0\n";
        assert_eq!(
            IngestedTrace::parse_text(empty_task),
            Err(IngestError::EmptyTask { line: 4, task: 0 })
        );
        assert_eq!(IngestedTrace::parse_text("%tptrace 1\n"), Err(IngestError::EmptyTrace));
        assert_eq!(
            IngestedTrace::parse_text("%tptrace 1\nT:0:x\n"),
            Err(IngestError::EmptyTrace),
            "task-free traces are empty before they are type-checked"
        );
        let unused = "%tptrace 1\nT:0:x\nT:1:y\nB:0:0:0\nI:0:int_alu\nE:0:0\n";
        assert_eq!(IngestedTrace::parse_text(unused), Err(IngestError::UnusedType { type_id: 1 }));
    }

    #[test]
    fn binary_framing_errors_are_typed() {
        let good = valid().to_binary();
        // Truncation anywhere inside the payload is detected (offset points
        // past the end of what remained).
        for cut in [5, 7, 10, good.len() - 1] {
            assert!(matches!(
                IngestedTrace::parse_binary(&good[..cut]),
                Err(IngestError::Truncated { .. } | IngestError::UnsupportedVersion { .. })
            ));
        }
        // A corrupted record tag.
        let mut bad_tag = good.clone();
        bad_tag[6] = 0xAA;
        assert_eq!(
            IngestedTrace::parse_binary(&bad_tag),
            Err(IngestError::BadEventTag { offset: 6, tag: 0xAA })
        );
        // Invalid kind discriminant inside an I record: find one.
        let t = valid();
        let mut bin = Vec::new();
        bin.extend_from_slice(BINARY_MAGIC);
        bin.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        bin.push(b'T');
        bin.extend_from_slice(&0u32.to_le_bytes());
        bin.extend_from_slice(&1u16.to_le_bytes());
        bin.push(b'x');
        bin.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
        bin.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
        bin.push(b'B');
        bin.extend_from_slice(&0u32.to_le_bytes());
        bin.extend_from_slice(&0u64.to_le_bytes());
        bin.extend_from_slice(&0u32.to_le_bytes());
        bin.extend_from_slice(&0u16.to_le_bytes());
        bin.push(b'I');
        bin.extend_from_slice(&0u32.to_le_bytes());
        let kind_offset = bin.len();
        bin.push(0xFF);
        assert_eq!(
            IngestedTrace::parse_binary(&bin),
            Err(IngestError::BadKindByte { offset: kind_offset, byte: 0xFF })
        );
        drop(t);
    }

    #[test]
    fn hostile_edge_values_are_typed_errors_not_panics() {
        // Thread id u32::MAX must not overflow the thread count.
        let t = "%tptrace 1\nT:0:x\nB:4294967295:0:0\nI:4294967295:int_alu\nE:4294967295:0\n";
        assert!(matches!(
            IngestedTrace::parse_text(t),
            Err(IngestError::Malformed { line: 3, .. })
        ));
        // An empty type name cannot round-trip through the text encoding.
        assert!(matches!(
            IngestedTrace::parse_text("%tptrace 1\nT:0:\n"),
            Err(IngestError::BadTypeName { line: 2, .. })
        ));
        // A dependency list longer than the binary u16 count prefix.
        let mut many_deps = String::from("%tptrace 1\nT:0:x\nB:0:0:0\nI:0:int_alu\nE:0:0\n");
        many_deps.push_str("B:0:1:0:");
        many_deps.push_str(&vec!["0"; 70_000].join(","));
        many_deps.push('\n');
        assert!(matches!(
            IngestedTrace::parse_text(&many_deps),
            Err(IngestError::Malformed { line: 6, .. })
        ));
    }

    #[test]
    fn binary_type_names_that_cannot_round_trip_are_rejected() {
        // The binary length-prefixed name can carry bytes the text field
        // syntax cannot (':' and newlines); both parsers must reject them
        // or `to_text` would emit an unparseable file.
        for name in ["ge:mm", "ge\nmm", ""] {
            let mut bin = Vec::new();
            bin.extend_from_slice(BINARY_MAGIC);
            bin.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            bin.push(b'T');
            bin.extend_from_slice(&0u32.to_le_bytes());
            bin.extend_from_slice(&(name.len() as u16).to_le_bytes());
            bin.extend_from_slice(name.as_bytes());
            bin.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
            bin.extend_from_slice(&0.0f64.to_bits().to_le_bytes());
            assert!(
                matches!(
                    IngestedTrace::parse_binary(&bin),
                    Err(IngestError::BadTypeName { line: 1, .. })
                ),
                "name {name:?}"
            );
        }
    }

    #[test]
    fn error_display_is_informative() {
        let cases: Vec<(IngestError, &str)> = vec![
            (IngestError::MissingHeader, "%tptrace"),
            (IngestError::UnsupportedVersion { found: "9".into() }, "9"),
            (IngestError::Truncated { offset: 12 }, "12"),
            (IngestError::UnknownTaskType { line: 3, type_id: 7 }, "undeclared"),
            (IngestError::DependencyNotRetired { line: 4, task: 1, dep: 2 }, "not ended"),
            (IngestError::UnclosedTask { thread: 0, task: 9 }, "still open"),
            (IngestError::EmptyTrace, "no tasks"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }
}
