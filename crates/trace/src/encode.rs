//! Compact binary encoding for concrete instruction streams.
//!
//! Procedural traces rarely need to be stored, but golden tests and external
//! tooling benefit from a stable on-disk format. The encoding is a flat
//! sequence of records:
//!
//! ```text
//! record := kind:u8 | addr:u64 LE | size:u8        (memory kinds)
//!         | kind:u8                                 (non-memory kinds)
//! ```
//!
//! Non-memory instructions omit the address/size fields, which shrinks
//! typical streams by ~2/3.

use crate::inst::{InstKind, Instruction};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Errors produced by [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended in the middle of a record.
    Truncated,
    /// An unknown instruction-kind discriminant was encountered.
    BadKind(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated instruction record"),
            DecodeError::BadKind(k) => write!(f, "unknown instruction kind {k}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Encodes an instruction stream into the binary record format.
pub fn encode<I: IntoIterator<Item = Instruction>>(stream: I) -> Bytes {
    let mut buf = BytesMut::new();
    for inst in stream {
        buf.put_u8(inst.kind as u8);
        if inst.kind.is_memory() {
            buf.put_u64_le(inst.addr);
            buf.put_u8(inst.size);
        }
    }
    buf.freeze()
}

/// Decodes a byte buffer produced by [`encode`] back into instructions.
///
/// # Errors
///
/// Returns [`DecodeError::Truncated`] if the buffer ends mid-record and
/// [`DecodeError::BadKind`] for invalid kind bytes.
pub fn decode(mut bytes: Bytes) -> Result<Vec<Instruction>, DecodeError> {
    let mut out = Vec::new();
    while bytes.has_remaining() {
        let kind_byte = bytes.get_u8();
        let kind = InstKind::from_u8(kind_byte).ok_or(DecodeError::BadKind(kind_byte))?;
        if kind.is_memory() {
            if bytes.remaining() < 9 {
                return Err(DecodeError::Truncated);
            }
            let addr = bytes.get_u64_le();
            let size = bytes.get_u8();
            out.push(Instruction { kind, addr, size });
        } else {
            out.push(Instruction::compute(kind));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mix::InstructionMix;
    use crate::pattern::AccessPattern;
    use crate::region::MemRegion;
    use crate::spec::TraceSpec;

    fn sample_stream() -> Vec<Instruction> {
        TraceSpec::builder()
            .seed(2024)
            .instructions(5_000)
            .mix(InstructionMix::memory_bound())
            .pattern(AccessPattern::Random)
            .footprint(MemRegion::new(0x1000, 1 << 14))
            .build()
            .iter()
            .collect()
    }

    #[test]
    fn round_trip_identity() {
        let stream = sample_stream();
        let encoded = encode(stream.iter().copied());
        let decoded = decode(encoded).unwrap();
        assert_eq!(stream, decoded);
    }

    #[test]
    fn empty_stream_round_trips() {
        assert_eq!(decode(encode(std::iter::empty())).unwrap(), vec![]);
    }

    #[test]
    fn truncated_memory_record_detected() {
        let encoded = encode([Instruction::memory(InstKind::Load, 0x1234, 8)]);
        let cut = encoded.slice(0..encoded.len() - 1);
        assert_eq!(decode(cut), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_kind_detected() {
        let bytes = Bytes::from_static(&[0xFF]);
        assert_eq!(decode(bytes), Err(DecodeError::BadKind(0xFF)));
    }

    #[test]
    fn compute_records_are_one_byte() {
        let encoded = encode([
            Instruction::compute(InstKind::IntAlu),
            Instruction::compute(InstKind::Branch),
        ]);
        assert_eq!(encoded.len(), 2);
    }

    #[test]
    fn memory_records_are_ten_bytes() {
        let encoded = encode([Instruction::memory(InstKind::Store, u64::MAX, 8)]);
        assert_eq!(encoded.len(), 10);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(DecodeError::Truncated.to_string().contains("truncated"));
        assert!(DecodeError::BadKind(42).to_string().contains("42"));
    }
}
