//! Procedural per-task-instance instruction traces.
//!
//! The original TaskPoint evaluation drives the TaskSim simulator with
//! application traces recorded from native OmpSs executions: for every task
//! instance the trace holds the dynamic instruction stream the task executed
//! (instruction kinds plus memory addresses). Recording real traces is not
//! possible here, and storing billions of instructions would be impractical
//! anyway, so this crate represents a task instance's trace *procedurally*:
//!
//! * a [`TraceSpec`] describes the stream — a seed, an instruction count, an
//!   [`InstructionMix`] and an [`AccessPattern`] over memory regions;
//! * [`TraceSpec::source`] regenerates the *identical* concrete instruction
//!   stream on every call (seeded xoshiro256++), which is exactly the
//!   property a trace file has: the detailed simulation and the sampled
//!   simulation of the same program observe the same instructions.
//!
//! Streams are produced in batches: a [`TraceSource`] refills a
//! structure-of-arrays [`InstBlock`] ([`block`]), which the simulator's
//! detailed hot path consumes linearly. [`TraceSpec::iter`] remains as a
//! per-instruction compatibility shim over that pipeline. Pre-recorded
//! streams in the [`encode`] binary format are a first-class source too
//! ([`RecordedTrace`]), so traces captured from real executions can drive
//! the same machinery. The [`ingest`] module parses *external* traces —
//! Paraver/TaskSim-style `*.tptrace` event streams, in a documented text
//! and binary encoding (see `docs/TRACE_FORMATS.md`) — into per-task
//! recorded streams ready for that pipeline.
//!
//! Small concrete streams can still be materialized and round-tripped
//! through a compact binary encoding ([`encode`]) for golden tests.
//!
//! # Example
//!
//! ```
//! use taskpoint_trace::{AccessPattern, InstructionMix, MemRegion, TraceSpec};
//!
//! let spec = TraceSpec::builder()
//!     .seed(42)
//!     .instructions(1_000)
//!     .mix(InstructionMix::memory_bound())
//!     .pattern(AccessPattern::sequential(64))
//!     .footprint(MemRegion::new(0x1000_0000, 1 << 20))
//!     .build();
//! let n = spec.iter().count();
//! assert_eq!(n, 1_000);
//! // Deterministic: a second pass yields the same stream.
//! assert!(spec.iter().eq(spec.iter()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod block;
pub mod encode;
pub mod ingest;
pub mod inst;
pub mod mix;
pub mod pattern;
pub mod region;
pub mod spec;

pub use block::{InstBlock, RecordedTrace, SpecSource, TraceSource, BLOCK_CAPACITY};
pub use ingest::{IngestError, IngestedTask, IngestedTrace, IngestedType};
pub use inst::{InstKind, Instruction};
pub use mix::InstructionMix;
pub use pattern::AccessPattern;
pub use region::MemRegion;
pub use spec::{TraceIter, TraceSpec, TraceSpecBuilder, TraceSpecError};
