//! Trace specifications — the procedural stand-in for recorded task traces.

use crate::inst::Instruction;
use crate::mix::InstructionMix;
use crate::pattern::{AccessPattern, AddressStream, ACCESS_SIZE};
use crate::region::MemRegion;
use serde::{Deserialize, Serialize};
use taskpoint_stats::rng::Xoshiro256pp;

/// A complete, self-contained description of one task instance's dynamic
/// instruction stream.
///
/// Two iterations of the same spec produce identical streams; that property
/// replaces the trace files of the original TaskSim setup. Construct with
/// [`TraceSpec::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    seed: u64,
    code_seed: u64,
    instructions: u64,
    mix: InstructionMix,
    pattern: AccessPattern,
    footprint: MemRegion,
    shared: MemRegion,
    branch_mispredict_rate: f64,
    dependency_rate: f64,
}

impl TraceSpec {
    /// Starts building a spec. See [`TraceSpecBuilder`].
    pub fn builder() -> TraceSpecBuilder {
        TraceSpecBuilder::default()
    }

    /// A ready-made spec for tests and examples: balanced mix, sequential
    /// walk over a seed-derived 64 KiB scratch footprint.
    pub fn synthetic(seed: u64, instructions: u64) -> Self {
        let base = 0x1000_0000 + (seed % 4096) * (1 << 16);
        TraceSpec::builder()
            .seed(seed)
            .instructions(instructions)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::sequential(8))
            .footprint(MemRegion::new(base, 1 << 16))
            .build()
    }

    /// Dynamic instruction count of the stream.
    ///
    /// TaskPoint's fast-forward mechanism reads this from the trace to
    /// compute a task's burst-mode duration (`C_i = I_i / IPC_T`).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The seed identifying this concrete instance (data-dependent
    /// behaviour: addresses, branch outcomes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed identifying the *code* of this task type. All instances of
    /// a task type share one code seed, so they execute the identical kind
    /// sequence (the same machine code) and differ only in data-dependent
    /// behaviour — which is precisely the regularity TaskPoint exploits.
    pub fn code_seed(&self) -> u64 {
        self.code_seed
    }

    /// The instruction mix of the stream.
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }

    /// The access pattern of the stream.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// The private data footprint of the instance.
    pub fn footprint(&self) -> MemRegion {
        self.footprint
    }

    /// The shared region targeted by atomics (may be empty).
    pub fn shared(&self) -> MemRegion {
        self.shared
    }

    /// Probability that a branch instruction mispredicts. Control-flow
    /// divergent workloads (the paper singles out freqmine's nested-if task
    /// bodies) carry higher rates.
    pub fn branch_mispredict_rate(&self) -> f64 {
        self.branch_mispredict_rate
    }

    /// Probability that the next instruction depends on the current one's
    /// result (serializing their execution). Models ILP: low for unrolled
    /// numeric kernels, high for pointer-chasing code.
    pub fn dependency_rate(&self) -> f64 {
        self.dependency_rate
    }

    /// Iterates the concrete instruction stream. Each call restarts from the
    /// beginning and yields the identical sequence.
    pub fn iter(&self) -> TraceIter {
        // Pure-compute specs may have an empty footprint; they never emit
        // memory instructions (enforced in `build`), so no stream is needed.
        let addresses = (!self.footprint.is_empty())
            .then(|| AddressStream::new(self.pattern, self.footprint, self.shared, self.seed));
        TraceIter {
            remaining: self.instructions,
            code_rng: Xoshiro256pp::seed_from_u64(self.code_seed),
            data_rng: Xoshiro256pp::seed_from_u64(self.seed),
            addresses,
            mix: self.mix.clone(),
        }
    }
}

/// Builder for [`TraceSpec`]. All fields have sensible defaults except the
/// footprint, which must be set for specs whose mix contains memory
/// operations.
#[derive(Debug, Clone)]
pub struct TraceSpecBuilder {
    seed: u64,
    code_seed: u64,
    instructions: u64,
    mix: Option<InstructionMix>,
    pattern: AccessPattern,
    footprint: MemRegion,
    shared: MemRegion,
    branch_mispredict_rate: f64,
    dependency_rate: f64,
}

impl Default for TraceSpecBuilder {
    fn default() -> Self {
        Self {
            seed: 0,
            code_seed: 0,
            instructions: 0,
            mix: None,
            pattern: AccessPattern::default(),
            footprint: MemRegion::empty(),
            shared: MemRegion::empty(),
            branch_mispredict_rate: 0.02,
            dependency_rate: 0.15,
        }
    }
}

impl TraceSpecBuilder {
    /// Sets the RNG seed identifying this instance's concrete data
    /// (addresses, branch outcomes).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the code seed shared by all instances of the task type (the
    /// kind sequence / static code; default 0).
    pub fn code_seed(mut self, seed: u64) -> Self {
        self.code_seed = seed;
        self
    }

    /// Sets the dynamic instruction count.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Sets the instruction mix (default: [`InstructionMix::balanced`]).
    pub fn mix(mut self, mix: InstructionMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Sets the access pattern (default: sequential, 8-byte stride).
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the private data footprint.
    pub fn footprint(mut self, region: MemRegion) -> Self {
        self.footprint = region;
        self
    }

    /// Sets the shared region for atomic operations.
    pub fn shared(mut self, region: MemRegion) -> Self {
        self.shared = region;
        self
    }

    /// Sets the branch misprediction probability (default 0.02).
    pub fn branch_mispredict_rate(mut self, rate: f64) -> Self {
        self.branch_mispredict_rate = rate;
        self
    }

    /// Sets the instruction dependency probability (default 0.15).
    pub fn dependency_rate(mut self, rate: f64) -> Self {
        self.dependency_rate = rate;
        self
    }

    /// Finalizes the spec.
    ///
    /// # Panics
    ///
    /// Panics if the mix contains memory instructions but the footprint is
    /// empty, or the pattern parameters are invalid.
    pub fn build(self) -> TraceSpec {
        let mix = self.mix.unwrap_or_default();
        self.pattern.validate();
        if self.instructions > 0 && mix.memory_fraction() > 0.0 {
            assert!(
                !self.footprint.is_empty(),
                "trace with memory instructions needs a non-empty footprint"
            );
        }
        assert!(
            (0.0..=1.0).contains(&self.branch_mispredict_rate),
            "branch mispredict rate out of range"
        );
        assert!((0.0..=1.0).contains(&self.dependency_rate), "dependency rate out of range");
        TraceSpec {
            seed: self.seed,
            code_seed: self.code_seed,
            instructions: self.instructions,
            mix,
            pattern: self.pattern,
            footprint: self.footprint,
            shared: self.shared,
            branch_mispredict_rate: self.branch_mispredict_rate,
            dependency_rate: self.dependency_rate,
        }
    }
}

/// Iterator over a [`TraceSpec`]'s concrete instruction stream.
#[derive(Debug, Clone)]
pub struct TraceIter {
    remaining: u64,
    /// Drives the kind sequence — identical for all instances of a type.
    code_rng: Xoshiro256pp,
    /// Drives data-dependent choices (addresses).
    data_rng: Xoshiro256pp,
    addresses: Option<AddressStream>,
    mix: InstructionMix,
}

impl Iterator for TraceIter {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let kind = self.mix.sample(&mut self.code_rng);
        Some(if kind.is_memory() {
            let stream =
                self.addresses.as_mut().expect("memory instruction from a spec without footprint");
            let addr = stream.next_addr(kind, &mut self.data_rng);
            Instruction::memory(kind, addr, ACCESS_SIZE)
        } else {
            Instruction::compute(kind)
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = usize::try_from(self.remaining).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;

    fn spec(seed: u64, n: u64) -> TraceSpec {
        TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::strided(64, 2))
            .footprint(MemRegion::new(0x4000_0000, 1 << 16))
            .build()
    }

    #[test]
    fn yields_exactly_n_instructions() {
        assert_eq!(spec(1, 0).iter().count(), 0);
        assert_eq!(spec(1, 1).iter().count(), 1);
        assert_eq!(spec(1, 12345).iter().count(), 12345);
    }

    #[test]
    fn exact_size_hint() {
        let mut it = spec(1, 10).iter();
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }

    #[test]
    fn deterministic_replay() {
        let s = spec(99, 5000);
        let a: Vec<Instruction> = s.iter().collect();
        let b: Vec<Instruction> = s.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_data_seeds_change_addresses_not_kinds() {
        // Same code seed => identical kind sequences (same machine code);
        // a data-dependent pattern draws different addresses per instance.
        let mk = |seed| {
            TraceSpec::builder()
                .seed(seed)
                .instructions(1000)
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::Random)
                .footprint(MemRegion::new(0x4000_0000, 1 << 16))
                .build()
        };
        let a: Vec<Instruction> = mk(1).iter().collect();
        let b: Vec<Instruction> = mk(2).iter().collect();
        assert_ne!(a, b, "addresses must differ");
        let kinds_a: Vec<_> = a.iter().map(|i| i.kind).collect();
        let kinds_b: Vec<_> = b.iter().map(|i| i.kind).collect();
        assert_eq!(kinds_a, kinds_b, "kind sequence is the type's code");
    }

    #[test]
    fn different_code_seeds_change_kind_sequence() {
        let mk = |code| {
            TraceSpec::builder()
                .code_seed(code)
                .instructions(1000)
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(MemRegion::new(0x4000_0000, 1 << 16))
                .build()
        };
        let a: Vec<_> = mk(1).iter().map(|i| i.kind).collect();
        let b: Vec<_> = mk(2).iter().map(|i| i.kind).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn memory_instructions_carry_addresses_inside_footprint() {
        let s = spec(7, 10_000);
        let region = s.footprint();
        for inst in s.iter() {
            if inst.kind.is_memory() {
                assert!(region.contains(inst.addr));
                assert_eq!(inst.size, ACCESS_SIZE);
            } else {
                assert_eq!(inst.addr, 0);
                assert_eq!(inst.size, 0);
            }
        }
    }

    #[test]
    fn observed_mix_matches_spec() {
        let s = spec(11, 100_000);
        let loads = s.iter().filter(|i| i.kind == InstKind::Load).count();
        let expected = s.mix().probability(InstKind::Load);
        let observed = loads as f64 / 100_000.0;
        assert!((expected - observed).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-empty footprint")]
    fn memory_mix_without_footprint_rejected() {
        let _ = TraceSpec::builder().instructions(10).mix(InstructionMix::memory_bound()).build();
    }

    #[test]
    fn pure_compute_spec_needs_no_footprint() {
        let s = TraceSpec::builder()
            .instructions(100)
            .mix(InstructionMix::from_weights(&[(InstKind::IntAlu, 0.8), (InstKind::Branch, 0.2)]))
            .build();
        assert_eq!(s.iter().count(), 100);
        assert!(s.iter().all(|i| !i.kind.is_memory()));
    }

    #[test]
    fn cloned_spec_replays_identically() {
        let s = spec(123, 500);
        let s2 = s.clone();
        assert!(s.iter().eq(s2.iter()));
    }
}
