//! Trace specifications — the procedural stand-in for recorded task traces.

use crate::block::{InstBlock, SpecSource, TraceSource};
use crate::inst::Instruction;
use crate::mix::InstructionMix;
use crate::pattern::{AccessPattern, AddressStream};
use crate::region::MemRegion;
use serde::{Deserialize, Serialize};
use taskpoint_stats::rng::Xoshiro256pp;

/// A spec rejected by [`TraceSpecBuilder::try_build`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceSpecError {
    /// The instruction mix can emit memory kinds but no footprint was set,
    /// so there is no region to draw addresses from.
    MemoryMixWithoutFootprint,
    /// The branch misprediction probability is outside `[0, 1]`.
    BranchRateOutOfRange(f64),
    /// The instruction dependency probability is outside `[0, 1]`.
    DependencyRateOutOfRange(f64),
}

impl std::fmt::Display for TraceSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceSpecError::MemoryMixWithoutFootprint => {
                write!(f, "trace with memory instructions needs a non-empty footprint")
            }
            TraceSpecError::BranchRateOutOfRange(r) => {
                write!(f, "branch mispredict rate {r} out of range")
            }
            TraceSpecError::DependencyRateOutOfRange(r) => {
                write!(f, "dependency rate {r} out of range")
            }
        }
    }
}

impl std::error::Error for TraceSpecError {}

/// A complete, self-contained description of one task instance's dynamic
/// instruction stream.
///
/// Two iterations of the same spec produce identical streams; that property
/// replaces the trace files of the original TaskSim setup. Construct with
/// [`TraceSpec::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    seed: u64,
    code_seed: u64,
    instructions: u64,
    mix: InstructionMix,
    pattern: AccessPattern,
    footprint: MemRegion,
    shared: MemRegion,
    branch_mispredict_rate: f64,
    dependency_rate: f64,
}

impl TraceSpec {
    /// Starts building a spec. See [`TraceSpecBuilder`].
    pub fn builder() -> TraceSpecBuilder {
        TraceSpecBuilder::default()
    }

    /// A ready-made spec for tests and examples: balanced mix, sequential
    /// walk over a seed-derived 64 KiB scratch footprint.
    pub fn synthetic(seed: u64, instructions: u64) -> Self {
        let base = 0x1000_0000 + (seed % 4096) * (1 << 16);
        TraceSpec::builder()
            .seed(seed)
            .instructions(instructions)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::sequential(8))
            .footprint(MemRegion::new(base, 1 << 16))
            .build()
    }

    /// Dynamic instruction count of the stream.
    ///
    /// TaskPoint's fast-forward mechanism reads this from the trace to
    /// compute a task's burst-mode duration (`C_i = I_i / IPC_T`).
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// The seed identifying this concrete instance (data-dependent
    /// behaviour: addresses, branch outcomes).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The seed identifying the *code* of this task type. All instances of
    /// a task type share one code seed, so they execute the identical kind
    /// sequence (the same machine code) and differ only in data-dependent
    /// behaviour — which is precisely the regularity TaskPoint exploits.
    pub fn code_seed(&self) -> u64 {
        self.code_seed
    }

    /// The instruction mix of the stream.
    pub fn mix(&self) -> &InstructionMix {
        &self.mix
    }

    /// The access pattern of the stream.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// The private data footprint of the instance.
    pub fn footprint(&self) -> MemRegion {
        self.footprint
    }

    /// The shared region targeted by atomics (may be empty).
    pub fn shared(&self) -> MemRegion {
        self.shared
    }

    /// Probability that a branch instruction mispredicts. Control-flow
    /// divergent workloads (the paper singles out freqmine's nested-if task
    /// bodies) carry higher rates.
    pub fn branch_mispredict_rate(&self) -> f64 {
        self.branch_mispredict_rate
    }

    /// Probability that the next instruction depends on the current one's
    /// result (serializing their execution). Models ILP: low for unrolled
    /// numeric kernels, high for pointer-chasing code.
    pub fn dependency_rate(&self) -> f64 {
        self.dependency_rate
    }

    /// Creates a fresh [`TraceSource`] over the concrete instruction
    /// stream — the batched producer the simulator's detailed hot path
    /// consumes. Each call restarts from the beginning and yields the
    /// identical sequence.
    pub fn source(&self) -> SpecSource {
        // Pure-compute specs may have an empty footprint; they never emit
        // memory instructions (enforced in `build`), so no stream is needed.
        let addresses = (!self.footprint.is_empty())
            .then(|| AddressStream::new(self.pattern, self.footprint, self.shared, self.seed));
        SpecSource::new(
            self.instructions,
            Xoshiro256pp::seed_from_u64(self.code_seed),
            Xoshiro256pp::seed_from_u64(self.seed),
            addresses,
            self.mix.clone(),
        )
    }

    /// Iterates the concrete instruction stream. Each call restarts from the
    /// beginning and yields the identical sequence.
    ///
    /// This is a compatibility shim over [`TraceSpec::source`]: it drains
    /// block refills one instruction at a time. Performance-sensitive
    /// consumers should use the block pipeline directly.
    pub fn iter(&self) -> TraceIter {
        TraceIter { source: self.source(), block: InstBlock::new(), cursor: 0 }
    }
}

/// Builder for [`TraceSpec`]. All fields have sensible defaults except the
/// footprint, which must be set for specs whose mix contains memory
/// operations.
#[derive(Debug, Clone)]
pub struct TraceSpecBuilder {
    seed: u64,
    code_seed: u64,
    instructions: u64,
    mix: Option<InstructionMix>,
    pattern: AccessPattern,
    footprint: MemRegion,
    shared: MemRegion,
    branch_mispredict_rate: f64,
    dependency_rate: f64,
}

impl Default for TraceSpecBuilder {
    fn default() -> Self {
        Self {
            seed: 0,
            code_seed: 0,
            instructions: 0,
            mix: None,
            pattern: AccessPattern::default(),
            footprint: MemRegion::empty(),
            shared: MemRegion::empty(),
            branch_mispredict_rate: 0.02,
            dependency_rate: 0.15,
        }
    }
}

impl TraceSpecBuilder {
    /// Sets the RNG seed identifying this instance's concrete data
    /// (addresses, branch outcomes).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the code seed shared by all instances of the task type (the
    /// kind sequence / static code; default 0).
    pub fn code_seed(mut self, seed: u64) -> Self {
        self.code_seed = seed;
        self
    }

    /// Sets the dynamic instruction count.
    pub fn instructions(mut self, n: u64) -> Self {
        self.instructions = n;
        self
    }

    /// Sets the instruction mix (default: [`InstructionMix::balanced`]).
    pub fn mix(mut self, mix: InstructionMix) -> Self {
        self.mix = Some(mix);
        self
    }

    /// Sets the access pattern (default: sequential, 8-byte stride).
    pub fn pattern(mut self, pattern: AccessPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Sets the private data footprint.
    pub fn footprint(mut self, region: MemRegion) -> Self {
        self.footprint = region;
        self
    }

    /// Sets the shared region for atomic operations.
    pub fn shared(mut self, region: MemRegion) -> Self {
        self.shared = region;
        self
    }

    /// Sets the branch misprediction probability (default 0.02).
    pub fn branch_mispredict_rate(mut self, rate: f64) -> Self {
        self.branch_mispredict_rate = rate;
        self
    }

    /// Sets the instruction dependency probability (default 0.15).
    pub fn dependency_rate(mut self, rate: f64) -> Self {
        self.dependency_rate = rate;
        self
    }

    /// Finalizes the spec, validating that every concrete stream it
    /// describes can actually be generated.
    ///
    /// In particular, a mix that can emit memory kinds requires a
    /// non-empty footprint — catching at build time what used to be a
    /// runtime panic deep inside trace generation.
    ///
    /// # Errors
    ///
    /// See [`TraceSpecError`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern parameters are invalid (see
    /// [`AccessPattern::validate`]).
    pub fn try_build(self) -> Result<TraceSpec, TraceSpecError> {
        let mix = self.mix.unwrap_or_default();
        self.pattern.validate();
        if self.instructions > 0 && mix.memory_fraction() > 0.0 && self.footprint.is_empty() {
            return Err(TraceSpecError::MemoryMixWithoutFootprint);
        }
        if !(0.0..=1.0).contains(&self.branch_mispredict_rate) {
            return Err(TraceSpecError::BranchRateOutOfRange(self.branch_mispredict_rate));
        }
        if !(0.0..=1.0).contains(&self.dependency_rate) {
            return Err(TraceSpecError::DependencyRateOutOfRange(self.dependency_rate));
        }
        Ok(TraceSpec {
            seed: self.seed,
            code_seed: self.code_seed,
            instructions: self.instructions,
            mix,
            pattern: self.pattern,
            footprint: self.footprint,
            shared: self.shared,
            branch_mispredict_rate: self.branch_mispredict_rate,
            dependency_rate: self.dependency_rate,
        })
    }

    /// Finalizes the spec, panicking on invalid configurations.
    ///
    /// # Panics
    ///
    /// Panics with the [`TraceSpecError`] message if
    /// [`try_build`](TraceSpecBuilder::try_build) would return an error, or if the
    /// pattern parameters are invalid.
    pub fn build(self) -> TraceSpec {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Iterator over a [`TraceSpec`]'s concrete instruction stream.
///
/// A thin compatibility shim over the block pipeline: it holds a
/// [`SpecSource`] and an [`InstBlock`] of default capacity and hands the
/// block out one instruction per `next()`. Yields exactly the sequence the
/// batched path produces (by construction — they share the generator).
#[derive(Debug, Clone)]
pub struct TraceIter {
    source: SpecSource,
    block: InstBlock,
    cursor: usize,
}

impl Iterator for TraceIter {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.cursor == self.block.len() {
            if self.source.fill(&mut self.block) == 0 {
                return None;
            }
            self.cursor = 0;
        }
        let inst = self.block.get(self.cursor);
        self.cursor += 1;
        Some(inst)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let buffered = (self.block.len() - self.cursor) as u64;
        let n = usize::try_from(self.source.remaining() + buffered).unwrap_or(usize::MAX);
        (n, Some(n))
    }
}

impl ExactSizeIterator for TraceIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstKind;
    use crate::pattern::ACCESS_SIZE;

    fn spec(seed: u64, n: u64) -> TraceSpec {
        TraceSpec::builder()
            .seed(seed)
            .instructions(n)
            .mix(InstructionMix::balanced())
            .pattern(AccessPattern::strided(64, 2))
            .footprint(MemRegion::new(0x4000_0000, 1 << 16))
            .build()
    }

    #[test]
    fn yields_exactly_n_instructions() {
        assert_eq!(spec(1, 0).iter().count(), 0);
        assert_eq!(spec(1, 1).iter().count(), 1);
        assert_eq!(spec(1, 12345).iter().count(), 12345);
    }

    #[test]
    fn exact_size_hint() {
        let mut it = spec(1, 10).iter();
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
    }

    #[test]
    fn deterministic_replay() {
        let s = spec(99, 5000);
        let a: Vec<Instruction> = s.iter().collect();
        let b: Vec<Instruction> = s.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_data_seeds_change_addresses_not_kinds() {
        // Same code seed => identical kind sequences (same machine code);
        // a data-dependent pattern draws different addresses per instance.
        let mk = |seed| {
            TraceSpec::builder()
                .seed(seed)
                .instructions(1000)
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::Random)
                .footprint(MemRegion::new(0x4000_0000, 1 << 16))
                .build()
        };
        let a: Vec<Instruction> = mk(1).iter().collect();
        let b: Vec<Instruction> = mk(2).iter().collect();
        assert_ne!(a, b, "addresses must differ");
        let kinds_a: Vec<_> = a.iter().map(|i| i.kind).collect();
        let kinds_b: Vec<_> = b.iter().map(|i| i.kind).collect();
        assert_eq!(kinds_a, kinds_b, "kind sequence is the type's code");
    }

    #[test]
    fn different_code_seeds_change_kind_sequence() {
        let mk = |code| {
            TraceSpec::builder()
                .code_seed(code)
                .instructions(1000)
                .mix(InstructionMix::balanced())
                .pattern(AccessPattern::sequential(8))
                .footprint(MemRegion::new(0x4000_0000, 1 << 16))
                .build()
        };
        let a: Vec<_> = mk(1).iter().map(|i| i.kind).collect();
        let b: Vec<_> = mk(2).iter().map(|i| i.kind).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn memory_instructions_carry_addresses_inside_footprint() {
        let s = spec(7, 10_000);
        let region = s.footprint();
        for inst in s.iter() {
            if inst.kind.is_memory() {
                assert!(region.contains(inst.addr));
                assert_eq!(inst.size, ACCESS_SIZE);
            } else {
                assert_eq!(inst.addr, 0);
                assert_eq!(inst.size, 0);
            }
        }
    }

    #[test]
    fn observed_mix_matches_spec() {
        let s = spec(11, 100_000);
        let loads = s.iter().filter(|i| i.kind == InstKind::Load).count();
        let expected = s.mix().probability(InstKind::Load);
        let observed = loads as f64 / 100_000.0;
        assert!((expected - observed).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "non-empty footprint")]
    fn memory_mix_without_footprint_rejected() {
        let _ = TraceSpec::builder().instructions(10).mix(InstructionMix::memory_bound()).build();
    }

    #[test]
    fn try_build_reports_missing_footprint_as_error() {
        let err = TraceSpec::builder()
            .instructions(10)
            .mix(InstructionMix::memory_bound())
            .try_build()
            .unwrap_err();
        assert_eq!(err, TraceSpecError::MemoryMixWithoutFootprint);
        assert!(err.to_string().contains("non-empty footprint"));
    }

    #[test]
    fn try_build_reports_out_of_range_rates() {
        let bad_branch = TraceSpec::builder().branch_mispredict_rate(1.5).try_build().unwrap_err();
        assert_eq!(bad_branch, TraceSpecError::BranchRateOutOfRange(1.5));
        assert!(bad_branch.to_string().contains("out of range"));
        let bad_dep = TraceSpec::builder().dependency_rate(-0.1).try_build().unwrap_err();
        assert_eq!(bad_dep, TraceSpecError::DependencyRateOutOfRange(-0.1));
    }

    #[test]
    fn try_build_accepts_valid_specs() {
        let s = TraceSpec::builder()
            .instructions(5)
            .mix(InstructionMix::memory_bound())
            .footprint(MemRegion::new(0x1000, 4096))
            .try_build()
            .unwrap();
        assert_eq!(s.instructions(), 5);
    }

    #[test]
    fn source_and_iter_agree() {
        use crate::block::{InstBlock, TraceSource};
        let s = spec(21, 3000);
        let mut src = s.source();
        let mut block = InstBlock::new();
        let mut from_source = Vec::new();
        while src.fill(&mut block) > 0 {
            from_source.extend(block.iter());
        }
        let from_iter: Vec<Instruction> = s.iter().collect();
        assert_eq!(from_source, from_iter);
    }

    #[test]
    fn pure_compute_spec_needs_no_footprint() {
        let s = TraceSpec::builder()
            .instructions(100)
            .mix(InstructionMix::from_weights(&[(InstKind::IntAlu, 0.8), (InstKind::Branch, 0.2)]))
            .build();
        assert_eq!(s.iter().count(), 100);
        assert!(s.iter().all(|i| !i.kind.is_memory()));
    }

    #[test]
    fn cloned_spec_replays_identically() {
        let s = spec(123, 500);
        let s2 = s.clone();
        assert!(s.iter().eq(s2.iter()));
    }
}
