//! The instruction model.
//!
//! TaskSim's detailed mode (the ROB occupancy analysis model) only needs to
//! know an instruction's broad class — its execution latency category and
//! whether it touches memory — plus the effective address of memory
//! operations. That is what a trace record carries.

use serde::{Deserialize, Serialize};

/// Broad instruction classes distinguished by the core timing model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum InstKind {
    /// Simple integer ALU operation (add, logic, shift, compare).
    IntAlu = 0,
    /// Integer multiply.
    IntMul = 1,
    /// Integer divide (long latency, unpipelined).
    IntDiv = 2,
    /// Floating-point add/sub/convert.
    FpAlu = 3,
    /// Floating-point multiply (and FMA).
    FpMul = 4,
    /// Floating-point divide / sqrt (long latency, unpipelined).
    FpDiv = 5,
    /// Memory load.
    Load = 6,
    /// Memory store.
    Store = 7,
    /// Conditional or unconditional branch.
    Branch = 8,
    /// Atomic read-modify-write (locked memory operation).
    Atomic = 9,
    /// Memory fence / full synchronization.
    Fence = 10,
}

impl InstKind {
    /// All instruction kinds, in discriminant order.
    pub const ALL: [InstKind; 11] = [
        InstKind::IntAlu,
        InstKind::IntMul,
        InstKind::IntDiv,
        InstKind::FpAlu,
        InstKind::FpMul,
        InstKind::FpDiv,
        InstKind::Load,
        InstKind::Store,
        InstKind::Branch,
        InstKind::Atomic,
        InstKind::Fence,
    ];

    /// True if the instruction reads or writes memory (and therefore carries
    /// an address in the trace).
    pub fn is_memory(self) -> bool {
        matches!(self, InstKind::Load | InstKind::Store | InstKind::Atomic)
    }

    /// True if the instruction writes memory.
    pub fn writes_memory(self) -> bool {
        matches!(self, InstKind::Store | InstKind::Atomic)
    }

    /// Round-trips the discriminant; `None` for invalid encodings.
    pub fn from_u8(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// Parses the [`Display`](std::fmt::Display) name back into a kind
    /// (`"int_alu"`, `"load"`, …); `None` for unknown names. This is the
    /// inverse of `to_string()` and the kind syntax of the text
    /// [`ingest`](crate::ingest) format.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "int_alu" => InstKind::IntAlu,
            "int_mul" => InstKind::IntMul,
            "int_div" => InstKind::IntDiv,
            "fp_alu" => InstKind::FpAlu,
            "fp_mul" => InstKind::FpMul,
            "fp_div" => InstKind::FpDiv,
            "load" => InstKind::Load,
            "store" => InstKind::Store,
            "branch" => InstKind::Branch,
            "atomic" => InstKind::Atomic,
            "fence" => InstKind::Fence,
            _ => return None,
        })
    }
}

impl std::fmt::Display for InstKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InstKind::IntAlu => "int_alu",
            InstKind::IntMul => "int_mul",
            InstKind::IntDiv => "int_div",
            InstKind::FpAlu => "fp_alu",
            InstKind::FpMul => "fp_mul",
            InstKind::FpDiv => "fp_div",
            InstKind::Load => "load",
            InstKind::Store => "store",
            InstKind::Branch => "branch",
            InstKind::Atomic => "atomic",
            InstKind::Fence => "fence",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction of a task instance's trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Instruction {
    /// Instruction class.
    pub kind: InstKind,
    /// Effective address for memory operations; 0 for non-memory kinds.
    pub addr: u64,
    /// Access size in bytes for memory operations; 0 otherwise.
    pub size: u8,
}

impl Instruction {
    /// A non-memory instruction of the given kind.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `kind` is a memory kind — those must carry
    /// an address; use [`Instruction::memory`].
    pub fn compute(kind: InstKind) -> Self {
        debug_assert!(!kind.is_memory(), "memory instruction without address");
        Self { kind, addr: 0, size: 0 }
    }

    /// A memory instruction with its effective address and access size.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `kind` is not a memory kind.
    pub fn memory(kind: InstKind, addr: u64, size: u8) -> Self {
        debug_assert!(kind.is_memory(), "non-memory instruction with address");
        Self { kind, addr, size }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_classification() {
        assert!(InstKind::Load.is_memory());
        assert!(InstKind::Store.is_memory());
        assert!(InstKind::Atomic.is_memory());
        assert!(!InstKind::IntAlu.is_memory());
        assert!(!InstKind::Branch.is_memory());
        assert!(!InstKind::Fence.is_memory());
    }

    #[test]
    fn write_classification() {
        assert!(InstKind::Store.writes_memory());
        assert!(InstKind::Atomic.writes_memory());
        assert!(!InstKind::Load.writes_memory());
    }

    #[test]
    fn name_round_trip() {
        for k in InstKind::ALL {
            assert_eq!(InstKind::from_name(&k.to_string()), Some(k));
        }
        assert_eq!(InstKind::from_name("LOAD"), None);
        assert_eq!(InstKind::from_name(""), None);
    }

    #[test]
    fn u8_round_trip() {
        for k in InstKind::ALL {
            assert_eq!(InstKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(InstKind::from_u8(11), None);
        assert_eq!(InstKind::from_u8(255), None);
    }

    #[test]
    fn display_is_nonempty_and_unique() {
        let mut names: Vec<String> = InstKind::ALL.iter().map(|k| k.to_string()).collect();
        assert!(names.iter().all(|n| !n.is_empty()));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), InstKind::ALL.len());
    }

    #[test]
    fn constructors() {
        let c = Instruction::compute(InstKind::FpMul);
        assert_eq!(c.addr, 0);
        let m = Instruction::memory(InstKind::Load, 0xdead_beef, 8);
        assert_eq!(m.addr, 0xdead_beef);
        assert_eq!(m.size, 8);
    }
}
