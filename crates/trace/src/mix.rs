//! Instruction mixes.
//!
//! An [`InstructionMix`] is a discrete probability distribution over
//! [`InstKind`]s. Each benchmark's task types are assigned mixes that match
//! the paper's qualitative descriptions (compute bound, memory bound, atomic
//! operations, irregular, ...).

use crate::inst::InstKind;
use serde::{Deserialize, Serialize};
use taskpoint_stats::rng::Xoshiro256pp;

/// A normalized probability distribution over instruction kinds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    // Cumulative distribution over InstKind::ALL, last entry == 1.0.
    cumulative: [f64; 11],
}

impl InstructionMix {
    /// Builds a mix from `(kind, weight)` pairs. Unlisted kinds get weight 0.
    /// Weights are normalized; they need not sum to one.
    ///
    /// # Panics
    ///
    /// Panics if all weights are zero/negative or any weight is negative or
    /// non-finite.
    pub fn from_weights(weights: &[(InstKind, f64)]) -> Self {
        let mut w = [0.0f64; 11];
        for &(kind, weight) in weights {
            assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight} for {kind}");
            w[kind as usize] += weight;
        }
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "instruction mix has zero total weight");
        let mut cumulative = [0.0f64; 11];
        let mut acc = 0.0;
        for i in 0..11 {
            acc += w[i] / total;
            cumulative[i] = acc;
        }
        cumulative[10] = 1.0; // close any rounding gap
        Self { cumulative }
    }

    /// Probability of the given kind.
    pub fn probability(&self, kind: InstKind) -> f64 {
        let i = kind as usize;
        let prev = if i == 0 { 0.0 } else { self.cumulative[i - 1] };
        self.cumulative[i] - prev
    }

    /// Fraction of memory instructions (loads + stores + atomics).
    pub fn memory_fraction(&self) -> f64 {
        self.probability(InstKind::Load)
            + self.probability(InstKind::Store)
            + self.probability(InstKind::Atomic)
    }

    /// Draws one instruction kind.
    pub fn sample(&self, rng: &mut Xoshiro256pp) -> InstKind {
        let x = rng.next_f64();
        // 11 entries: linear scan beats binary search at this size.
        for (i, &c) in self.cumulative.iter().enumerate() {
            if x < c {
                return InstKind::ALL[i];
            }
        }
        InstKind::Fence
    }

    // ---- presets matching the paper's workload descriptions ----

    /// Compute-bound floating-point kernel (dense matmul, swaptions,
    /// monte-carlo): few memory references, lots of FP.
    pub fn compute_bound() -> Self {
        Self::from_weights(&[
            (InstKind::IntAlu, 0.22),
            (InstKind::FpAlu, 0.25),
            (InstKind::FpMul, 0.30),
            (InstKind::FpDiv, 0.01),
            (InstKind::Load, 0.12),
            (InstKind::Store, 0.04),
            (InstKind::Branch, 0.06),
        ])
    }

    /// Memory/streaming-bound kernel (vector-operation, spmv): high
    /// load/store share, little arithmetic per element.
    pub fn memory_bound() -> Self {
        Self::from_weights(&[
            (InstKind::IntAlu, 0.25),
            (InstKind::FpAlu, 0.10),
            (InstKind::FpMul, 0.05),
            (InstKind::Load, 0.35),
            (InstKind::Store, 0.15),
            (InstKind::Branch, 0.10),
        ])
    }

    /// Balanced integer/floating-point mix (stencils, convolutions).
    pub fn balanced() -> Self {
        Self::from_weights(&[
            (InstKind::IntAlu, 0.30),
            (InstKind::FpAlu, 0.15),
            (InstKind::FpMul, 0.12),
            (InstKind::Load, 0.25),
            (InstKind::Store, 0.08),
            (InstKind::Branch, 0.10),
        ])
    }

    /// Atomic-heavy mix (histogram): scattered atomic updates to shared bins.
    pub fn atomic_heavy() -> Self {
        Self::from_weights(&[
            (InstKind::IntAlu, 0.35),
            (InstKind::Load, 0.25),
            (InstKind::Atomic, 0.15),
            (InstKind::Store, 0.05),
            (InstKind::Branch, 0.20),
        ])
    }

    /// Integer/branch-heavy irregular mix (dedup, freqmine, canneal):
    /// pointer chasing, hashing, data-dependent branching.
    pub fn irregular_int() -> Self {
        Self::from_weights(&[
            (InstKind::IntAlu, 0.38),
            (InstKind::IntMul, 0.04),
            (InstKind::IntDiv, 0.01),
            (InstKind::Load, 0.30),
            (InstKind::Store, 0.09),
            (InstKind::Branch, 0.18),
        ])
    }
}

impl Default for InstructionMix {
    /// The [`InstructionMix::balanced`] mix.
    fn default() -> Self {
        Self::balanced()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn presets() -> Vec<InstructionMix> {
        vec![
            InstructionMix::compute_bound(),
            InstructionMix::memory_bound(),
            InstructionMix::balanced(),
            InstructionMix::atomic_heavy(),
            InstructionMix::irregular_int(),
        ]
    }

    #[test]
    fn probabilities_sum_to_one() {
        for mix in presets() {
            let total: f64 = InstKind::ALL.iter().map(|&k| mix.probability(k)).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn weights_are_normalized() {
        let a = InstructionMix::from_weights(&[(InstKind::Load, 1.0), (InstKind::Store, 1.0)]);
        let b = InstructionMix::from_weights(&[(InstKind::Load, 50.0), (InstKind::Store, 50.0)]);
        assert_eq!(a, b);
        assert!((a.probability(InstKind::Load) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_kinds_accumulate() {
        let m = InstructionMix::from_weights(&[
            (InstKind::Load, 1.0),
            (InstKind::Load, 1.0),
            (InstKind::Store, 2.0),
        ]);
        assert!((m.probability(InstKind::Load) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero total weight")]
    fn zero_weight_rejected() {
        let _ = InstructionMix::from_weights(&[(InstKind::Load, 0.0)]);
    }

    #[test]
    fn sampling_frequency_matches_probability() {
        let mix = InstructionMix::balanced();
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let n = 200_000;
        let mut counts = [0usize; 11];
        for _ in 0..n {
            counts[mix.sample(&mut rng) as usize] += 1;
        }
        for k in InstKind::ALL {
            let expected = mix.probability(k);
            let observed = counts[k as usize] as f64 / n as f64;
            assert!(
                (expected - observed).abs() < 0.01,
                "{k}: expected {expected}, observed {observed}"
            );
        }
    }

    #[test]
    fn memory_fraction_matches_construction() {
        let mix = InstructionMix::memory_bound();
        assert!((mix.memory_fraction() - 0.5).abs() < 1e-9);
        assert!(InstructionMix::compute_bound().memory_fraction() < 0.2);
    }
}
