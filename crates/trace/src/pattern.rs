//! Memory access patterns.
//!
//! Each benchmark kernel in the paper is characterized by how it walks
//! memory ("strided memory accesses", "irregular memory accesses", "atomic
//! operations", "high data reuse", ...). An [`AccessPattern`] is a compact,
//! serializable description of such a walk; [`AddressStream`] is the
//! stateful generator that turns it into concrete addresses inside a task
//! instance's footprint.

use crate::inst::InstKind;
use crate::region::MemRegion;
use serde::{Deserialize, Serialize};
use taskpoint_stats::rng::Xoshiro256pp;

/// Description of how a task instance's memory operations walk its
/// footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Pure streaming: consecutive accesses advance by `stride` bytes and
    /// wrap at the footprint end. `stride == access size` models unit-stride
    /// vector code; larger strides model column walks.
    Sequential {
        /// Bytes between consecutive accesses.
        stride: u32,
    },
    /// `streams` independent sequential streams visited round-robin, each
    /// advancing by `stride`. Models row+halo accesses of convolutions and
    /// stencils (one stream per matrix row / plane).
    Strided {
        /// Bytes between consecutive accesses of one stream.
        stride: u32,
        /// Number of interleaved streams (≥ 1).
        streams: u32,
    },
    /// Uniformly random accesses over the footprint. Models hash tables and
    /// canneal's random element swaps.
    Random,
    /// Random accesses with reuse: with probability `hot_probability` the
    /// access falls in the first `hot_fraction` of the footprint. Models
    /// gather-heavy kernels (n-body neighbor lists, spmv source vector).
    Gather {
        /// Probability of hitting the hot subset.
        hot_probability: f64,
        /// Fraction of the footprint that is hot (0 < f ≤ 1).
        hot_fraction: f64,
    },
    /// Dependent chain through the footprint (next address derived from the
    /// previous one). Models linked data structures (freqmine's FP-tree,
    /// dedup's hash chains).
    PointerChase,
    /// `planes` parallel sequential walks separated by `plane_stride` bytes,
    /// advancing together; models 3D stencils touching z-1/z/z+1 planes.
    Stencil {
        /// Number of planes touched per sweep position (≥ 1).
        planes: u32,
        /// Byte distance between consecutive planes.
        plane_stride: u64,
    },
}

impl AccessPattern {
    /// Unit-stride sequential access with the given stride in bytes.
    pub fn sequential(stride: u32) -> Self {
        AccessPattern::Sequential { stride }
    }

    /// Convenience constructor for [`AccessPattern::Strided`].
    pub fn strided(stride: u32, streams: u32) -> Self {
        AccessPattern::Strided { stride, streams }
    }

    /// Validates parameter ranges; called by the trace builder.
    ///
    /// # Panics
    ///
    /// Panics on a zero stride/stream/plane count or an out-of-range
    /// probability/fraction.
    pub fn validate(&self) {
        match *self {
            AccessPattern::Sequential { stride } => assert!(stride > 0, "zero stride"),
            AccessPattern::Strided { stride, streams } => {
                assert!(stride > 0, "zero stride");
                assert!(streams > 0, "zero streams");
            }
            AccessPattern::Random | AccessPattern::PointerChase => {}
            AccessPattern::Gather { hot_probability, hot_fraction } => {
                assert!(
                    (0.0..=1.0).contains(&hot_probability),
                    "hot_probability {hot_probability} out of range"
                );
                assert!(
                    hot_fraction > 0.0 && hot_fraction <= 1.0,
                    "hot_fraction {hot_fraction} out of range"
                );
            }
            AccessPattern::Stencil { planes, plane_stride } => {
                assert!(planes > 0, "zero planes");
                assert!(plane_stride > 0, "zero plane stride");
            }
        }
    }
}

impl Default for AccessPattern {
    fn default() -> Self {
        AccessPattern::sequential(8)
    }
}

/// Stateful address generator for one task instance.
///
/// Created per trace iteration; deterministic given the same RNG stream.
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AccessPattern,
    footprint: MemRegion,
    shared: MemRegion,
    /// Per-stream offsets for Sequential/Strided/Stencil; chase cursor for
    /// PointerChase.
    offsets: Vec<u64>,
    turn: usize,
}

/// Default access size in bytes for generated memory operations.
pub const ACCESS_SIZE: u8 = 8;

impl AddressStream {
    /// Creates a stream over `footprint`; atomics are directed at `shared`
    /// when it is non-empty (shared histogram bins, reduction cells, ...).
    ///
    /// `instance_seed` randomizes where a *sequential* walk starts inside
    /// the footprint (line-aligned): two instances working on the same
    /// block touch different windows of it, as different inputs would.
    /// Strided and stencil walks keep their structural origins.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is empty (an address stream needs memory) or
    /// the pattern parameters are invalid.
    pub fn new(
        pattern: AccessPattern,
        footprint: MemRegion,
        shared: MemRegion,
        instance_seed: u64,
    ) -> Self {
        assert!(!footprint.is_empty(), "address stream over empty footprint");
        pattern.validate();
        let offsets = match pattern {
            AccessPattern::Strided { streams, .. } => {
                // Spread stream origins evenly across the footprint.
                let step = footprint.len / streams as u64;
                (0..streams as u64).map(|i| i * step).collect()
            }
            AccessPattern::Stencil { planes, plane_stride } => {
                (0..planes as u64).map(|i| i * plane_stride).collect()
            }
            AccessPattern::Sequential { .. } => {
                let mut st = instance_seed ^ 0x5E0F_F5E7_0000_0001;
                let lines = (footprint.len / 64).max(1);
                let start = (taskpoint_stats::rng::splitmix64(&mut st) % lines) * 64;
                vec![start]
            }
            _ => vec![0],
        };
        Self { pattern, footprint, shared, offsets, turn: 0 }
    }

    /// Fills the address/size columns of a block for the given kind
    /// column: memory kinds receive the next effective address (and
    /// [`ACCESS_SIZE`]), non-memory kinds receive zeros.
    ///
    /// Produces *exactly* the sequence of per-instruction
    /// [`AddressStream::next_addr`] calls would — including the data-RNG
    /// draw order — but hoists the pattern dispatch out of the inner loop
    /// and specializes the hottest walks. Pinned against the one-at-a-time
    /// path by the block-pipeline equivalence tests.
    pub fn fill_addrs(
        &mut self,
        kinds: &[InstKind],
        addrs: &mut Vec<u64>,
        sizes: &mut Vec<u8>,
        rng: &mut Xoshiro256pp,
    ) {
        // Atomics divert to the shared region when one exists — a per-kind
        // decision, so only the generic loop applies.
        if !self.shared.is_empty() {
            for &kind in kinds {
                if kind.is_memory() {
                    addrs.push(self.next_addr(kind, rng));
                    sizes.push(ACCESS_SIZE);
                } else {
                    addrs.push(0);
                    sizes.push(0);
                }
            }
            return;
        }
        match self.pattern {
            AccessPattern::Sequential { stride } => {
                let mut off = self.offsets[0];
                for &kind in kinds {
                    if kind.is_memory() {
                        addrs.push(self.footprint.wrap(off));
                        off = off.wrapping_add(stride as u64);
                        sizes.push(ACCESS_SIZE);
                    } else {
                        addrs.push(0);
                        sizes.push(0);
                    }
                }
                self.offsets[0] = off;
            }
            AccessPattern::Random => {
                let slots = (self.footprint.len / ACCESS_SIZE as u64).max(1);
                let base = self.footprint.base;
                for &kind in kinds {
                    if kind.is_memory() {
                        addrs.push(base + rng.next_below(slots) * ACCESS_SIZE as u64);
                        sizes.push(ACCESS_SIZE);
                    } else {
                        addrs.push(0);
                        sizes.push(0);
                    }
                }
            }
            // Multi-stream and stateful walks: per-access generation, but
            // the pattern dispatch still happens once per block.
            _ => {
                for &kind in kinds {
                    if kind.is_memory() {
                        addrs.push(self.next_addr(kind, rng));
                        sizes.push(ACCESS_SIZE);
                    } else {
                        addrs.push(0);
                        sizes.push(0);
                    }
                }
            }
        }
    }

    /// Produces the next effective address for an instruction of `kind`.
    ///
    /// Atomic operations target the shared region when one exists so that
    /// different task instances contend on the same lines (the coherence
    /// traffic the paper attributes to "invalidating data residing in remote
    /// caches").
    pub fn next_addr(&mut self, kind: InstKind, rng: &mut Xoshiro256pp) -> u64 {
        if kind == InstKind::Atomic && !self.shared.is_empty() {
            // Atomics hit a random shared cell, aligned to the access size.
            let cells = (self.shared.len / ACCESS_SIZE as u64).max(1);
            return self.shared.base + rng.next_below(cells) * ACCESS_SIZE as u64;
        }
        match self.pattern {
            AccessPattern::Sequential { stride } => {
                let addr = self.footprint.wrap(self.offsets[0]);
                self.offsets[0] = self.offsets[0].wrapping_add(stride as u64);
                addr
            }
            AccessPattern::Strided { stride, streams } => {
                let s = self.turn % streams as usize;
                self.turn = self.turn.wrapping_add(1);
                let addr = self.footprint.wrap(self.offsets[s]);
                self.offsets[s] = self.offsets[s].wrapping_add(stride as u64);
                addr
            }
            AccessPattern::Random => {
                let slots = (self.footprint.len / ACCESS_SIZE as u64).max(1);
                self.footprint.base + rng.next_below(slots) * ACCESS_SIZE as u64
            }
            AccessPattern::Gather { hot_probability, hot_fraction } => {
                let hot_len = ((self.footprint.len as f64 * hot_fraction) as u64)
                    .clamp(ACCESS_SIZE as u64, self.footprint.len);
                let region_len =
                    if rng.next_bool(hot_probability) { hot_len } else { self.footprint.len };
                let slots = (region_len / ACCESS_SIZE as u64).max(1);
                self.footprint.base + rng.next_below(slots) * ACCESS_SIZE as u64
            }
            AccessPattern::PointerChase => {
                // Mix the previous cursor into the next slot index: a
                // deterministic dependent chain with no spatial locality.
                let slots = (self.footprint.len / ACCESS_SIZE as u64).max(1);
                let mut st = self.offsets[0] ^ 0xA076_1D64_78BD_642F;
                let next = taskpoint_stats::rng::splitmix64(&mut st) % slots;
                self.offsets[0] = next;
                self.footprint.base + next * ACCESS_SIZE as u64
            }
            AccessPattern::Stencil { planes, plane_stride: _ } => {
                let p = self.turn % planes as usize;
                self.turn = self.turn.wrapping_add(1);
                let addr = self.footprint.wrap(self.offsets[p]);
                // All planes advance in lockstep once the last one was used.
                if p as u32 == planes - 1 {
                    for o in &mut self.offsets {
                        *o = o.wrapping_add(ACCESS_SIZE as u64);
                    }
                }
                addr
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> MemRegion {
        MemRegion::new(0x10_0000, 4096)
    }

    #[test]
    fn sequential_advances_by_stride_and_wraps() {
        let mut s = AddressStream::new(AccessPattern::sequential(64), fp(), MemRegion::empty(), 0);
        let mut rng = Xoshiro256pp::seed_from_u64(0);
        let a0 = s.next_addr(InstKind::Load, &mut rng);
        let a1 = s.next_addr(InstKind::Load, &mut rng);
        assert_eq!(a1 - a0, 64);
        // 4096/64 = 64 accesses wrap around
        for _ in 0..62 {
            s.next_addr(InstKind::Load, &mut rng);
        }
        let wrapped = s.next_addr(InstKind::Load, &mut rng);
        assert_eq!(wrapped, a0);
    }

    #[test]
    fn all_patterns_stay_inside_footprint() {
        let patterns = [
            AccessPattern::sequential(8),
            AccessPattern::strided(128, 4),
            AccessPattern::Random,
            AccessPattern::Gather { hot_probability: 0.8, hot_fraction: 0.1 },
            AccessPattern::PointerChase,
            AccessPattern::Stencil { planes: 3, plane_stride: 1024 },
        ];
        for p in patterns {
            let mut s = AddressStream::new(p, fp(), MemRegion::empty(), 0);
            let mut rng = Xoshiro256pp::seed_from_u64(3);
            for i in 0..10_000 {
                let a = s.next_addr(InstKind::Load, &mut rng);
                assert!(fp().contains(a), "{p:?} access {i} at {a:#x} escaped");
            }
        }
    }

    #[test]
    fn atomics_hit_shared_region() {
        let shared = MemRegion::new(0x900_0000, 256);
        let mut s = AddressStream::new(AccessPattern::Random, fp(), shared, 0);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        for _ in 0..1000 {
            let a = s.next_addr(InstKind::Atomic, &mut rng);
            assert!(shared.contains(a));
        }
        // Plain loads still hit the private footprint.
        let a = s.next_addr(InstKind::Load, &mut rng);
        assert!(fp().contains(a));
    }

    #[test]
    fn gather_prefers_hot_subset() {
        let region = MemRegion::new(0, 1 << 20);
        let mut s = AddressStream::new(
            AccessPattern::Gather { hot_probability: 0.9, hot_fraction: 0.01 },
            region,
            MemRegion::empty(),
            0,
        );
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let hot_end = region.base + (region.len as f64 * 0.01) as u64;
        let n = 20_000;
        let hot_hits = (0..n).filter(|_| s.next_addr(InstKind::Load, &mut rng) < hot_end).count();
        let frac = hot_hits as f64 / n as f64;
        // 90% targeted + ~1% of the cold accesses landing in the hot range.
        assert!(frac > 0.85, "hot fraction {frac}");
    }

    #[test]
    fn pointer_chase_is_deterministic_chain() {
        let mk = || AddressStream::new(AccessPattern::PointerChase, fp(), MemRegion::empty(), 0);
        let mut a = mk();
        let mut b = mk();
        let mut rng1 = Xoshiro256pp::seed_from_u64(6);
        let mut rng2 = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..100 {
            assert_eq!(
                a.next_addr(InstKind::Load, &mut rng1),
                b.next_addr(InstKind::Load, &mut rng2)
            );
        }
    }

    #[test]
    fn stencil_touches_distinct_planes() {
        let mut s = AddressStream::new(
            AccessPattern::Stencil { planes: 3, plane_stride: 1024 },
            fp(),
            MemRegion::empty(),
            0,
        );
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let a0 = s.next_addr(InstKind::Load, &mut rng);
        let a1 = s.next_addr(InstKind::Load, &mut rng);
        let a2 = s.next_addr(InstKind::Load, &mut rng);
        assert_eq!(a1 - a0, 1024);
        assert_eq!(a2 - a1, 1024);
        // next sweep position advances all planes by the access size
        let a3 = s.next_addr(InstKind::Load, &mut rng);
        assert_eq!(a3 - a0, ACCESS_SIZE as u64);
    }

    #[test]
    #[should_panic(expected = "empty footprint")]
    fn empty_footprint_rejected() {
        let _ =
            AddressStream::new(AccessPattern::Random, MemRegion::empty(), MemRegion::empty(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_gather_rejected() {
        AccessPattern::Gather { hot_probability: 1.5, hot_fraction: 0.5 }.validate();
    }
}
