//! Execution-mode control — the interface TaskPoint plugs into.
//!
//! The paper's two requirements on the host simulator (§III-A) are:
//!
//! 1. a detailed and a fast simulation mode, and
//! 2. a fast mode capable of operating at a **user-specified IPC**.
//!
//! [`ExecMode`] expresses exactly that choice per task instance, and a
//! [`ModeController`] makes the decision at every task start and observes
//! every completion. The TaskPoint crate implements this trait; the
//! baselines below are used for reference runs and tests.

use crate::report::TaskReport;
use taskpoint_runtime::{TaskInstanceId, TaskTypeId, WorkerId};

/// How to simulate one task instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecMode {
    /// Cycle-level simulation through the core model and caches.
    Detailed,
    /// Fast-forward: the task takes `ceil(instructions / ipc)` cycles.
    Fast {
        /// The prescribed IPC (> 0).
        ipc: f64,
    },
}

/// Context handed to the controller when a task is about to start.
#[derive(Debug, Clone, Copy)]
pub struct TaskStart {
    /// The instance about to run.
    pub task: TaskInstanceId,
    /// Its task type.
    pub type_id: TaskTypeId,
    /// Its dynamic instruction count (`I_i` in the paper).
    pub instructions: u64,
    /// The worker it will run on.
    pub worker: WorkerId,
    /// Simulated start cycle.
    pub time: u64,
    /// Workers executing tasks at this instant, including this one.
    pub concurrency: u32,
    /// Total workers in the machine.
    pub total_workers: u32,
}

/// Decides the simulation mode of every task instance.
pub trait ModeController {
    /// Chooses the mode for a task that is about to start.
    fn mode_for_task(&mut self, start: &TaskStart) -> ExecMode;

    /// Observes a completed task (both modes). Default: ignore.
    fn on_task_complete(&mut self, report: &TaskReport) {
        let _ = report;
    }
}

/// Baseline controller: everything in detailed mode (the reference
/// simulation errors are measured against).
#[derive(Debug, Clone, Copy, Default)]
pub struct DetailedOnly;

impl ModeController for DetailedOnly {
    fn mode_for_task(&mut self, _start: &TaskStart) -> ExecMode {
        ExecMode::Detailed
    }
}

/// Baseline controller: everything fast-forwarded at one fixed IPC
/// (TaskSim's original burst mode with a constant rate; used in tests and
/// as a lower bound on simulation time).
#[derive(Debug, Clone, Copy)]
pub struct FixedIpc(pub f64);

impl ModeController for FixedIpc {
    fn mode_for_task(&mut self, _start: &TaskStart) -> ExecMode {
        ExecMode::Fast { ipc: self.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detailed_only_always_detailed() {
        let mut c = DetailedOnly;
        let start = TaskStart {
            task: TaskInstanceId(0),
            type_id: TaskTypeId(0),
            instructions: 10,
            worker: WorkerId(0),
            time: 0,
            concurrency: 1,
            total_workers: 1,
        };
        assert_eq!(c.mode_for_task(&start), ExecMode::Detailed);
    }

    #[test]
    fn fixed_ipc_always_fast() {
        let mut c = FixedIpc(2.0);
        let start = TaskStart {
            task: TaskInstanceId(1),
            type_id: TaskTypeId(0),
            instructions: 10,
            worker: WorkerId(0),
            time: 5,
            concurrency: 1,
            total_workers: 1,
        };
        assert_eq!(c.mode_for_task(&start), ExecMode::Fast { ipc: 2.0 });
    }
}
