//! System-noise model — the stand-in for native execution.
//!
//! Figure 1 of the paper measures IPC variation in *native* executions on
//! an Intel SandyBridge-EP machine. We have no hardware testbed, so the
//! "native machine" is the same detailed simulator with a noise model that
//! perturbs each task instance's duration the way OS jitter, SMT
//! interference, DVFS and TLB effects perturb real runs: a small Gaussian
//! factor plus an occasional heavier-tailed outlier. Seeded per instance,
//! so runs remain reproducible.

use serde::{Deserialize, Serialize};
use taskpoint_stats::rng::{mix_seed, Xoshiro256pp};

/// Multiplicative per-task duration noise.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Standard deviation of the Gaussian component (e.g. 0.015 = 1.5%).
    pub sigma: f64,
    /// Probability of an additional slow-outlier event (OS preemption, page
    /// fault burst).
    pub outlier_probability: f64,
    /// Maximum extra slowdown of an outlier (e.g. 0.25 = up to +25%).
    pub outlier_magnitude: f64,
    /// Model seed, mixed with each task's seed.
    pub seed: u64,
}

impl NoiseModel {
    /// A model calibrated so that per-type IPC spreads in "native" runs
    /// roughly match the paper's Fig. 1 backdrop (most benchmarks within
    /// ±5%).
    pub fn native_execution(seed: u64) -> Self {
        Self { sigma: 0.015, outlier_probability: 0.01, outlier_magnitude: 0.25, seed }
    }

    /// The duration factor (≥ 0.5) for the task instance identified by
    /// `task_seed`. Deterministic in `(self.seed, task_seed)`.
    pub fn factor(&self, task_seed: u64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(mix_seed(&[self.seed, task_seed, 0x4E01]));
        let mut f = 1.0 + rng.next_normal(0.0, self.sigma);
        if rng.next_bool(self.outlier_probability) {
            f += rng.next_f64() * self.outlier_magnitude;
        }
        f.max(0.5)
    }
}

/// The noise model is a *passive* [`Component`](crate::event::Component):
/// it holds no clock of its own and is consulted synchronously (via
/// [`EventCtx::noise`](crate::event::EventCtx)) when a core completes a
/// detailed task.
impl crate::event::Component for NoiseModel {
    fn name(&self) -> &str {
        "noise-model"
    }

    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _ctx: &mut crate::event::EventCtx<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_stats::Summary;

    #[test]
    fn factor_is_deterministic() {
        let n = NoiseModel::native_execution(7);
        assert_eq!(n.factor(42), n.factor(42));
        assert_ne!(n.factor(42), n.factor(43));
    }

    #[test]
    fn factors_center_near_one() {
        let n = NoiseModel::native_execution(1);
        let s: Summary = (0..20_000).map(|i| n.factor(i)).collect();
        assert!((s.mean() - 1.0).abs() < 0.01, "mean {}", s.mean());
        assert!(s.min() >= 0.5);
    }

    #[test]
    fn outliers_skew_the_tail_upward() {
        let heavy =
            NoiseModel { sigma: 0.0, outlier_probability: 1.0, outlier_magnitude: 0.5, seed: 3 };
        let s: Summary = (0..1000).map(|i| heavy.factor(i)).collect();
        assert!(s.mean() > 1.2, "all-outlier model inflates durations: {}", s.mean());
    }

    #[test]
    fn zero_noise_is_identity() {
        let silent =
            NoiseModel { sigma: 0.0, outlier_probability: 0.0, outlier_magnitude: 0.0, seed: 0 };
        for i in 0..100 {
            assert_eq!(silent.factor(i), 1.0);
        }
    }
}
