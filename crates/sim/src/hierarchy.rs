//! The multi-core memory hierarchy.
//!
//! Composes per-core private cache levels, shared levels with banked-
//! bandwidth queueing, a snoop-filter-based invalidation protocol and a
//! channelized DRAM model. Inter-thread interference — the effect TaskPoint
//! must model correctly when the number of active threads changes (paper
//! Fig. 4a) — arises here from two mechanisms:
//!
//! * **bandwidth queueing**: shared levels and DRAM channels are service
//!   queues (`next_free` timestamps); more concurrently active cores means
//!   more queueing delay per access;
//! * **coherence invalidations**: writes invalidate remote private copies
//!   through a bounded snoop filter, so data shared or migrated between
//!   tasks on different cores costs extra latency.
//!
//! # Modelling approximations (documented deviations)
//!
//! * The snoop filter is direct-mapped and bounded; hash collisions replace
//!   the previous entry without back-invalidating private caches, like a
//!   real (imprecise) snoop filter that has lost an entry. This bounds
//!   memory while keeping the common-case behaviour.
//! * Writebacks of dirty lines are not modelled (write-allocate,
//!   write-back caches with free writebacks) — they would add a roughly
//!   workload-independent bandwidth term.

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::MachineConfig;
use serde::{Deserialize, Serialize};
use taskpoint_telemetry::Histogram;

/// Result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Load-to-use latency in cycles.
    pub latency: u64,
    /// True if the access missed all cache levels (went to DRAM).
    pub dram: bool,
    /// True if the access missed the first-level cache.
    pub l1_miss: bool,
    /// Cycles of `latency` spent waiting in shared-level / DRAM service
    /// queues (bandwidth contention); 0 for private-level hits.
    pub queue_delay: u64,
}

/// A core-facing memory port: where the detailed pipeline sends its
/// accesses. The core model is generic over this so the same monomorphized
/// hot loop drives both the plain [`MemorySystem`] and the recording
/// wrapper the parallel detail layer uses for speculative execution.
pub trait MemPort {
    /// Performs one access; see [`MemorySystem::access`].
    fn access(&mut self, core: u32, addr: u64, write: bool, now: u64) -> MemAccessResult;
}

impl MemPort for MemorySystem {
    #[inline]
    fn access(&mut self, core: u32, addr: u64, write: bool, now: u64) -> MemAccessResult {
        MemorySystem::access(self, core, addr, write, now)
    }
}

/// Observer of the shared-fabric operations one access performs, used by
/// the parallel detail layer to log speculative executions for replay
/// validation. The no-op impl ([`NoRecord`]) keeps the sequential hot path
/// monomorphized free of any recording overhead.
pub(crate) trait AccessRecorder {
    /// A shared-level/DRAM lookup after all private levels missed:
    /// which shared level hit (`u8::MAX` = none, went to DRAM) and the
    /// accumulated service-queue delay.
    fn lookup(&mut self, line: u64, now: u64, hit_level: u8, queue_delay: u64);
    /// A prefetch installed `line` into the last shared level.
    fn install(&mut self, line: u64);
    /// A read registered in the snoop filter.
    fn snoop_read(&mut self, line: u64);
    /// A write claimed exclusivity; `had_others` is whether any remote
    /// copies were invalidated (the only part of the mask that feeds the
    /// writer's latency).
    fn snoop_write(&mut self, line: u64, had_others: bool);
}

/// Recorder that records nothing (the plain sequential path).
pub(crate) struct NoRecord;

impl AccessRecorder for NoRecord {
    #[inline]
    fn lookup(&mut self, _line: u64, _now: u64, _hit_level: u8, _queue_delay: u64) {}
    #[inline]
    fn install(&mut self, _line: u64) {}
    #[inline]
    fn snoop_read(&mut self, _line: u64) {}
    #[inline]
    fn snoop_write(&mut self, _line: u64, _had_others: bool) {}
}

/// Aggregate cache statistics for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LevelStats {
    /// Hits at this level.
    pub hits: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl LevelStats {
    /// Hit rate; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// A bandwidth contention model with *time-bucketed utilization* accounting.
///
/// Because cores advance in bounded chunks, their local clocks skew by up
/// to one chunk and their accesses reach shared resources out of true time
/// order. A literal FIFO `next_free` clock is therefore unusable: whichever
/// core happens to be processed first claims all early service slots and
/// later-processed cores are charged phantom queue delays (order-dependent
/// unfairness, not contention).
///
/// Instead, each access is charged the *expected* waiting time of an M/D/1
/// server at the resource's recent utilization: `W = s·ρ / (2(1−ρ))`,
/// where `s` is the service time and `ρ` is estimated from the arrival
/// count of recent time buckets (bucket length = the engine's chunk bound,
/// smoothed across buckets). This is fair, deterministic and
/// order-independent under chunked interleaving, and it preserves the
/// behaviour TaskPoint depends on: delay grows with the number of
/// concurrently active cores. Utilization is capped below 1; the finite
/// MSHRs provide the back-pressure that bounds sustained overload, as in a
/// real machine.
#[derive(Debug, Clone)]
struct ServiceQueue {
    service: f64,
    bucket_len: f64,
    bucket: u64,
    arrivals: f64,
    /// Smoothed utilization estimate from completed buckets.
    rho: f64,
}

impl ServiceQueue {
    fn new(service: u64, bucket_len: u64) -> Self {
        Self {
            service: service as f64,
            bucket_len: bucket_len.max(1) as f64,
            bucket: 0,
            arrivals: 0.0,
            rho: 0.0,
        }
    }

    /// Registers an access at `now`; returns the expected queueing delay.
    fn delay(&mut self, now: u64) -> u64 {
        let b = (now as f64 / self.bucket_len) as u64;
        if b != self.bucket {
            let inst_rho = (self.arrivals * self.service / self.bucket_len).min(2.0);
            // Gentle smoothing: sharp per-bucket swings would make task
            // latency depend on bucket phase, an artifact rather than load.
            self.rho = 0.75 * self.rho + 0.25 * inst_rho;
            self.bucket = b;
            self.arrivals = 0.0;
        }
        self.arrivals += 1.0;
        let rho = self.rho.min(0.90);
        (self.service * rho / (2.0 * (1.0 - rho))).round() as u64
    }
}

/// Bounded, direct-mapped sharer tracker (a snoop filter).
#[derive(Debug, Clone)]
struct SnoopFilter {
    /// (line, sharer bitmask); line == u64::MAX marks an empty slot.
    entries: Vec<(u64, u64)>,
    mask: u64,
}

impl SnoopFilter {
    fn new(log2_entries: u32) -> Self {
        let n = 1usize << log2_entries;
        Self { entries: vec![(u64::MAX, 0); n], mask: (n - 1) as u64 }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        // Fibonacci hashing spreads consecutive lines across the filter.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & self.mask) as usize
    }

    /// Records `core` as a sharer of `line`; returns the previous mask if
    /// the entry already tracked this line, 0 otherwise.
    fn add_sharer(&mut self, line: u64, core: u32) -> u64 {
        let slot = self.slot(line);
        let e = &mut self.entries[slot];
        if e.0 == line {
            let prev = e.1;
            e.1 |= 1 << core;
            prev
        } else {
            // Collision or empty: (re)claim the slot for this line.
            *e = (line, 1 << core);
            0
        }
    }

    /// Makes `core` the exclusive owner of `line`; returns the mask of
    /// *other* cores that had copies (to invalidate).
    fn make_exclusive(&mut self, line: u64, core: u32) -> u64 {
        let slot = self.slot(line);
        let e = &mut self.entries[slot];
        let others = if e.0 == line { e.1 & !(1u64 << core) } else { 0 };
        *e = (line, 1 << core);
        others
    }
}

/// The memory system is a *passive* [`Component`](crate::event::Component):
/// it never schedules events of its own. Cores advance its bandwidth and
/// contention queues synchronously, from inside their accesses, at the exact
/// global tick the access occurs — which keeps shared-state causality on
/// the chunk granularity the engine already enforces.
impl crate::event::Component for MemorySystem {
    fn name(&self) -> &str {
        "memory-hierarchy"
    }

    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _ctx: &mut crate::event::EventCtx<'_>) {}
}

/// The complete memory system of the simulated machine.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// `private[level][core]`.
    private: Vec<Vec<SetAssocCache>>,
    /// Shared levels in order, each with its bandwidth queue.
    shared: Vec<(SetAssocCache, ServiceQueue)>,
    /// Latency of each private level (cycles).
    private_latency: Vec<u32>,
    /// Latency of each shared level (cycles).
    shared_latency: Vec<u32>,
    /// Per-channel DRAM service queues.
    dram_queues: Vec<ServiceQueue>,
    dram_latency: u32,
    line_shift: u32,
    snoop: SnoopFilter,
    coherence_penalty: u32,
    invalidations: u64,
    dram_accesses: u64,
    /// Per-core last-accessed line, for the stream prefetcher's
    /// sequential-confirmation check.
    prefetch_last: Vec<u64>,
    prefetches: u64,
    /// Total cycles requests spent waiting in shared-level and DRAM
    /// service queues (bandwidth contention).
    queue_delay_cycles: u64,
    /// Accesses that hit a non-empty service queue (paid any queue delay).
    contended_accesses: u64,
    /// Always-on log₂ distribution of demand-access latencies (loads,
    /// stores, atomics — everything through [`MemorySystem::access`]).
    /// Speculation shards start empty and are merged back at commit, so
    /// the distribution is identical at any `detail_threads` count.
    access_latency: Histogram,
}

impl MemorySystem {
    /// Builds the hierarchy for `cores` cores from a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cores == 0`.
    pub fn new(config: &MachineConfig, cores: u32) -> Self {
        config.validate();
        assert!(cores > 0 && cores <= 64, "1..=64 cores supported (snoop mask is u64)");
        let mut private = Vec::new();
        let mut private_latency = Vec::new();
        let mut shared = Vec::new();
        let mut shared_latency = Vec::new();
        let bucket = config.chunk_cycles;
        for level in &config.caches {
            if level.shared {
                shared.push((
                    SetAssocCache::new(level.size_bytes, level.associativity, config.line_size),
                    ServiceQueue::new(level.service_cycles as u64, bucket),
                ));
                shared_latency.push(level.latency);
            } else {
                assert!(
                    shared.is_empty(),
                    "private level {} below a shared level is not supported",
                    level.name
                );
                private.push(
                    (0..cores)
                        .map(|_| {
                            SetAssocCache::new(
                                level.size_bytes,
                                level.associativity,
                                config.line_size,
                            )
                        })
                        .collect(),
                );
                private_latency.push(level.latency);
            }
        }
        // Coherence penalty: one round trip through the first shared point
        // (or DRAM latency when there is none).
        let coherence_penalty = shared_latency.first().copied().unwrap_or(config.memory.latency);
        Self {
            private,
            shared,
            private_latency,
            shared_latency,
            dram_queues: (0..config.memory.channels)
                .map(|_| ServiceQueue::new(config.memory.service_cycles as u64, bucket))
                .collect(),
            dram_latency: config.memory.latency,
            line_shift: config.line_size.trailing_zeros(),
            snoop: SnoopFilter::new(16),
            coherence_penalty,
            invalidations: 0,
            dram_accesses: 0,
            prefetch_last: vec![u64::MAX - 1; cores as usize],
            prefetches: 0,
            queue_delay_cycles: 0,
            contended_accesses: 0,
            access_latency: Histogram::new(),
        }
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Installs `line` in every shared level without cost — used to model
    /// application data that was initialized before the simulated region of
    /// interest (trace-driven simulators start with the OS/init phase
    /// already executed, so main memory structures are LLC-warm). Private
    /// levels stay cold; TaskPoint's warmup exists to heat those.
    ///
    /// Returns `true` if the line was newly installed in the last shared
    /// level (false if it was already present), so callers can budget by
    /// distinct lines.
    pub fn prewarm_line(&mut self, line: u64) -> bool {
        let mut newly = false;
        for (cache, _) in &mut self.shared {
            newly = cache.access(line) == AccessOutcome::Miss;
        }
        newly
    }

    /// Clears statistics counters while keeping contents (used after
    /// prewarming so reported hit/miss numbers only cover the measured
    /// region).
    pub fn reset_stats(&mut self) {
        for (c, _) in &mut self.shared {
            c.reset_counters();
        }
        for caches in &mut self.private {
            for c in caches.iter_mut() {
                c.reset_counters();
            }
        }
        self.invalidations = 0;
        self.dram_accesses = 0;
        self.prefetches = 0;
        self.queue_delay_cycles = 0;
        self.contended_accesses = 0;
        self.access_latency = Histogram::new();
    }

    /// Total capacity of the last shared level in lines (0 when none).
    pub fn last_level_capacity_lines(&self) -> usize {
        self.shared.last().map(|(c, _)| c.capacity_lines()).unwrap_or(0)
    }

    /// Performs a load (`write == false`) or a store/atomic (`write ==
    /// true`) by core `core` at absolute cycle `now`; returns the latency
    /// and miss classification.
    ///
    /// Stores still update cache and coherence state, but callers typically
    /// ignore their latency (write buffers); atomics add their own
    /// serialization cost in the core model.
    pub fn access(&mut self, core: u32, addr: u64, write: bool, now: u64) -> MemAccessResult {
        self.access_impl(core, addr, write, now, &mut NoRecord)
    }

    /// Shared-fabric half of a private-miss lookup: walks the shared levels
    /// (charging bandwidth queueing) and falls through to DRAM. Returns
    /// `(hit_level, queue_delay)` with `hit_level == u8::MAX` meaning DRAM.
    /// Updates the contention counters exactly as the live path does — the
    /// replay validation pass reuses it so the merged state carries true
    /// counter values.
    fn shared_lookup(&mut self, line: u64, now: u64) -> (u8, u64) {
        let mut queue_delay = 0u64;
        let mut hit_level = u8::MAX;
        for (i, (cache, queue)) in self.shared.iter_mut().enumerate() {
            queue_delay += queue.delay(now);
            if cache.access(line) == AccessOutcome::Hit {
                hit_level = i as u8;
                break;
            }
        }
        if hit_level == u8::MAX {
            self.dram_accesses += 1;
            let ch = (line % self.dram_queues.len() as u64) as usize;
            queue_delay += self.dram_queues[ch].delay(now);
        }
        if queue_delay > 0 {
            self.queue_delay_cycles += queue_delay;
            self.contended_accesses += 1;
        }
        (hit_level, queue_delay)
    }

    /// Latency implied by a [`Self::shared_lookup`] outcome: the stopping
    /// level's lookup latency (the deepest level's on a full miss, plus the
    /// DRAM latency) plus the accumulated queue delay.
    #[inline]
    fn shared_latency_of(&self, hit_level: u8, queue_delay: u64) -> u64 {
        if hit_level == u8::MAX {
            let deepest = self.shared_latency.last().map(|&l| l as u64).unwrap_or(0);
            deepest + self.dram_latency as u64 + queue_delay
        } else {
            self.shared_latency[hit_level as usize] as u64 + queue_delay
        }
    }

    pub(crate) fn access_impl<R: AccessRecorder>(
        &mut self,
        core: u32,
        addr: u64,
        write: bool,
        now: u64,
        rec: &mut R,
    ) -> MemAccessResult {
        let line = self.line_of(addr);
        let c = core as usize;

        // 1. Private levels, closest first (misses write-allocate on the
        // way, so lower levels are filled as the request descends).
        let mut hit_latency: Option<u64> = None;
        let mut l1_miss = false;
        for (lvl, caches) in self.private.iter_mut().enumerate() {
            match caches[c].access(line) {
                AccessOutcome::Hit => {
                    hit_latency = Some(self.private_latency[lvl] as u64);
                    break;
                }
                AccessOutcome::Miss => {
                    if lvl == 0 {
                        l1_miss = true;
                    }
                }
            }
        }

        let mut dram = false;
        let mut queued = 0u64;
        let latency = if let Some(lat) = hit_latency {
            lat
        } else {
            // 2.–3. Shared levels with bandwidth queueing, then DRAM.
            let (hit_level, queue_delay) = self.shared_lookup(line, now);
            dram = hit_level == u8::MAX;
            queued = queue_delay;
            rec.lookup(line, now, hit_level, queue_delay);
            self.shared_latency_of(hit_level, queue_delay)
        };

        // 4. Stream prefetch: a simple next-line prefetcher with
        // sequential confirmation (two consecutive lines) — the mechanism
        // every real core ships that hides streaming first-touch misses.
        // The prefetched line is installed without timing cost (assumed
        // fully overlapped with the demand stream).
        let sequential = line == self.prefetch_last[c].wrapping_add(1);
        self.prefetch_last[c] = line;
        if l1_miss && sequential {
            let next = line + 1;
            for caches in self.private.iter_mut() {
                caches[c].install(next);
            }
            if let Some((last_shared, _)) = self.shared.last_mut() {
                last_shared.install(next);
            }
            self.snoop.add_sharer(next, core);
            self.prefetches += 1;
            rec.install(next);
        }

        // 5. Coherence.
        let mut latency = latency;
        if write {
            let others = self.snoop.make_exclusive(line, core);
            rec.snoop_write(line, others != 0);
            if others != 0 {
                self.invalidations += others.count_ones() as u64;
                for victim in BitIter(others) {
                    for caches in self.private.iter_mut() {
                        caches[victim as usize].invalidate(line);
                    }
                }
                latency += self.coherence_penalty as u64;
            }
        } else {
            self.snoop.add_sharer(line, core);
            rec.snoop_read(line);
        }

        self.access_latency.record(latency);
        MemAccessResult { latency, dram, l1_miss, queue_delay: queued }
    }

    /// Clone of everything except the private columns (those are filled in
    /// by the fork constructors below).
    fn clone_shared_core(&self) -> Self {
        Self {
            private: Vec::new(),
            shared: self.shared.clone(),
            private_latency: self.private_latency.clone(),
            shared_latency: self.shared_latency.clone(),
            dram_queues: self.dram_queues.clone(),
            dram_latency: self.dram_latency,
            line_shift: self.line_shift,
            snoop: self.snoop.clone(),
            coherence_penalty: self.coherence_penalty,
            invalidations: self.invalidations,
            dram_accesses: self.dram_accesses,
            prefetch_last: self.prefetch_last.clone(),
            prefetches: self.prefetches,
            queue_delay_cycles: self.queue_delay_cycles,
            contended_accesses: self.contended_accesses,
            // Forks accumulate only their own accesses; speculation shards
            // merge back at commit, the replay fork never records.
            access_latency: Histogram::new(),
        }
    }

    /// Speculation shard for one wave worker: a snapshot of the shared
    /// fabric plus a real clone of `worker`'s own private column. The other
    /// cores' private caches are replaced by 1-line stubs — the speculating
    /// worker never accesses through them, they exist only so coherence
    /// victim invalidation has something harmless to hit.
    pub(crate) fn fork_for_worker(&self, worker: u32) -> Self {
        let line = 1u64 << self.line_shift;
        let mut fork = self.clone_shared_core();
        fork.private = self
            .private
            .iter()
            .map(|caches| {
                caches
                    .iter()
                    .enumerate()
                    .map(|(c, cache)| {
                        if c == worker as usize {
                            cache.clone()
                        } else {
                            SetAssocCache::new(line, 1, line as u32)
                        }
                    })
                    .collect()
            })
            .collect();
        fork
    }

    /// Snapshot of the shared fabric only, used by the replay-validation
    /// pass (which performs no private-level accesses at all).
    pub(crate) fn fork_shared(&self) -> Self {
        self.clone_shared_core()
    }

    /// Commits a validated replay fork: adopts its shared caches, service
    /// queues, snoop filter and fabric counters as the authoritative state.
    /// Private columns are untouched (adopted separately per wave worker).
    pub(crate) fn adopt_shared(&mut self, fork: Self) {
        self.shared = fork.shared;
        self.dram_queues = fork.dram_queues;
        self.snoop = fork.snoop;
        self.invalidations = fork.invalidations;
        self.dram_accesses = fork.dram_accesses;
        self.prefetches = fork.prefetches;
        self.queue_delay_cycles = fork.queue_delay_cycles;
        self.contended_accesses = fork.contended_accesses;
    }

    /// Adopts `worker`'s private column (all levels, with its hit/miss
    /// counters) and prefetcher state from a committed speculation shard.
    pub(crate) fn adopt_worker_state(&mut self, worker: u32, shard: &mut Self) {
        let c = worker as usize;
        for (lvl, caches) in self.private.iter_mut().enumerate() {
            std::mem::swap(&mut caches[c], &mut shard.private[lvl][c]);
        }
        self.prefetch_last[c] = shard.prefetch_last[c];
        self.access_latency.merge(&shard.access_latency);
    }

    /// Replays a recorded shared-fabric lookup against this fork; returns
    /// the authoritative `(hit_level, queue_delay)` for comparison with the
    /// speculative outcome.
    pub(crate) fn replay_lookup(&mut self, line: u64, now: u64) -> (u8, u64) {
        self.shared_lookup(line, now)
    }

    /// Replays a recorded prefetch install (shared-side effects only; the
    /// private-side install lives in the adopted worker column).
    pub(crate) fn replay_install(&mut self, line: u64, core: u32) {
        if let Some((last_shared, _)) = self.shared.last_mut() {
            last_shared.install(line);
        }
        self.snoop.add_sharer(line, core);
        self.prefetches += 1;
    }

    /// Replays a recorded snoop-filter read registration.
    pub(crate) fn replay_snoop_read(&mut self, line: u64, core: u32) {
        self.snoop.add_sharer(line, core);
    }

    /// Replays a recorded write's exclusivity claim; returns the
    /// authoritative victim mask (private-column invalidation is deferred
    /// to commit, where the caller applies it to the merged columns).
    pub(crate) fn replay_snoop_write(&mut self, line: u64, core: u32) -> u64 {
        let others = self.snoop.make_exclusive(line, core);
        if others != 0 {
            self.invalidations += others.count_ones() as u64;
        }
        others
    }

    /// Invalidates `line` in every private level of `victim` (commit-time
    /// application of a replayed coherence invalidation).
    pub(crate) fn invalidate_private(&mut self, victim: u32, line: u64) {
        for caches in self.private.iter_mut() {
            caches[victim as usize].invalidate(line);
        }
    }

    /// Total remote-copy invalidations performed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total cycles spent waiting in shared-level and DRAM service queues.
    pub fn queue_delay_cycles(&self) -> u64 {
        self.queue_delay_cycles
    }

    /// Number of accesses that paid a non-zero queue delay.
    pub fn contended_accesses(&self) -> u64 {
        self.contended_accesses
    }

    /// The log₂ latency distribution of all demand accesses performed so
    /// far (see the field docs for speculation-shard merge semantics).
    pub fn access_latency_histogram(&self) -> &Histogram {
        &self.access_latency
    }

    /// Total DRAM line fetches.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Total lines installed by the stream prefetcher.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Hit/miss statistics of private level `lvl` summed over cores.
    pub fn private_stats(&self, lvl: usize) -> LevelStats {
        let caches = &self.private[lvl];
        LevelStats {
            hits: caches.iter().map(SetAssocCache::hits).sum(),
            misses: caches.iter().map(SetAssocCache::misses).sum(),
        }
    }

    /// Hit/miss statistics of shared level `lvl` (0-based among shared).
    pub fn shared_stats(&self, lvl: usize) -> LevelStats {
        let c = &self.shared[lvl].0;
        LevelStats { hits: c.hits(), misses: c.misses() }
    }

    /// Number of private levels.
    pub fn private_levels(&self) -> usize {
        self.private.len()
    }

    /// Number of shared levels.
    pub fn shared_levels(&self) -> usize {
        self.shared.len()
    }
}

/// Iterator over set bits of a u64 (ascending).
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn mem(cores: u32) -> MemorySystem {
        MemorySystem::new(&MachineConfig::tiny_test(), cores)
    }

    #[test]
    fn cold_access_goes_to_dram_then_hits_l1() {
        let mut m = mem(1);
        let first = m.access(0, 0x1000, false, 0);
        assert!(first.dram);
        assert!(first.l1_miss);
        assert!(first.latency >= 60, "includes DRAM latency, got {}", first.latency);
        let second = m.access(0, 0x1000, false, first.latency);
        assert!(!second.dram);
        assert!(!second.l1_miss);
        assert_eq!(second.latency, 2, "tiny L1 latency");
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut m = mem(1);
        m.access(0, 0x1000, false, 0);
        let r = m.access(0, 0x1030, false, 100); // same 64B line
        assert!(!r.l1_miss);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = mem(1);
        // tiny L1: 1024B/64B = 16 lines, 2-way, 8 sets. Lines 0, 8, 16 map
        // to set 0 (line addr % 8).
        m.access(0, 0, false, 0);
        m.access(0, 8 * 64, false, 200);
        m.access(0, 16 * 64, false, 400); // evicts line 0 from L1
        let r = m.access(0, 0, false, 600);
        assert!(r.l1_miss, "line 0 must have been evicted from L1");
        assert!(!r.dram, "line 0 still lives in shared L2");
        assert_eq!(r.latency, 8, "tiny L2 latency, no queueing at t=600");
    }

    #[test]
    fn remote_write_invalidates_local_copy() {
        let mut m = mem(2);
        // Core 0 reads the line into its private L1.
        m.access(0, 0x2000, false, 0);
        let warm = m.access(0, 0x2000, false, 300);
        assert!(!warm.l1_miss);
        // Core 1 writes the same line: core 0's copy must be invalidated.
        let w = m.access(1, 0x2000, true, 600);
        assert!(w.latency > 0);
        assert_eq!(m.invalidations(), 1);
        let after = m.access(0, 0x2000, false, 900);
        assert!(after.l1_miss, "copy was invalidated by remote write");
    }

    #[test]
    fn writer_pays_coherence_penalty() {
        let mut m = mem(2);
        // Baseline: an L2-hit write with no remote sharers. Line 0x7000 is
        // filled by core 1 itself, then pushed out of core 1's L1 (16-line,
        // 2-way L1: lines 0x7000/0x7200/0x7400 share a set).
        m.access(1, 0x7000, false, 0);
        m.access(1, 0x7200, false, 100);
        m.access(1, 0x7400, false, 200);
        let lone = m.access(1, 0x7000, true, 1000);
        assert!(lone.l1_miss && !lone.dram, "baseline must be an L2-hit write");

        // Contended: same shape of access (L1 miss, L2 hit) but core 0
        // holds a copy that must be invalidated.
        m.access(0, 0x2000, false, 2000);
        let contended = m.access(1, 0x2000, true, 3000);
        assert!(contended.l1_miss && !contended.dram);
        assert!(
            contended.latency > lone.latency,
            "invalidation adds latency: {} vs {}",
            contended.latency,
            lone.latency
        );
        assert_eq!(m.invalidations(), 1);
    }

    #[test]
    fn bandwidth_contention_raises_latency_under_load() {
        // Tiny config: chunk (= utilization bucket) is 1024 cycles, one
        // DRAM channel with service 4. Saturate bucket 0, then measure in
        // bucket 1: the utilization estimate must charge queueing delay.
        let mut busy = mem(2);
        for i in 0..300u64 {
            // Distinct lines, spread over bucket 0.
            busy.access(0, 0x40_0000 + i * 4096, false, i * 3);
        }
        let loaded = busy.access(1, 0x900_0000, false, 1500);
        let mut idle = mem(2);
        let quiet = idle.access(1, 0x900_0000, false, 1500);
        assert!(
            loaded.latency > quiet.latency,
            "prior-bucket load must add delay: {} vs {}",
            loaded.latency,
            quiet.latency
        );
    }

    #[test]
    fn private_caches_are_per_core() {
        let mut m = mem(2);
        m.access(0, 0x3000, false, 0);
        let other = m.access(1, 0x3000, false, 300);
        assert!(other.l1_miss, "core 1 has its own cold L1");
        assert!(!other.dram, "but the shared L2 already holds the line");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mem(1);
        m.access(0, 0, false, 0);
        m.access(0, 0, false, 100);
        let l1 = m.private_stats(0);
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert!((l1.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.dram_accesses(), 1);
        assert_eq!(m.private_levels(), 1);
        assert_eq!(m.shared_levels(), 1);
    }

    #[test]
    fn high_perf_machine_builds_three_levels() {
        let m = MemorySystem::new(&MachineConfig::high_performance(), 64);
        assert_eq!(m.private_levels(), 2);
        assert_eq!(m.shared_levels(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64 cores")]
    fn too_many_cores_rejected() {
        MemorySystem::new(&MachineConfig::tiny_test(), 65);
    }

    #[test]
    fn bit_iter_yields_set_bits() {
        let bits: Vec<u32> = BitIter(0b1010_0001).collect();
        assert_eq!(bits, vec![0, 5, 7]);
        assert_eq!(BitIter(0).count(), 0);
    }
}
