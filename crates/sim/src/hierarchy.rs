//! The multi-core memory hierarchy.
//!
//! Composes per-core private cache levels, shared levels with banked-
//! bandwidth queueing, a snoop-filter-based invalidation protocol and a
//! channelized DRAM model. Inter-thread interference — the effect TaskPoint
//! must model correctly when the number of active threads changes (paper
//! Fig. 4a) — arises here from two mechanisms:
//!
//! * **bandwidth queueing**: shared levels and DRAM channels are service
//!   queues (`next_free` timestamps); more concurrently active cores means
//!   more queueing delay per access;
//! * **coherence invalidations**: writes invalidate remote private copies
//!   through a bounded snoop filter, so data shared or migrated between
//!   tasks on different cores costs extra latency.
//!
//! # Modelling approximations (documented deviations)
//!
//! * The snoop filter is direct-mapped and bounded; hash collisions replace
//!   the previous entry without back-invalidating private caches, like a
//!   real (imprecise) snoop filter that has lost an entry. This bounds
//!   memory while keeping the common-case behaviour.
//! * Writebacks of dirty lines are not modelled (write-allocate,
//!   write-back caches with free writebacks) — they would add a roughly
//!   workload-independent bandwidth term.

use crate::cache::{AccessOutcome, SetAssocCache};
use crate::config::MachineConfig;
use serde::{Deserialize, Serialize};

/// Result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccessResult {
    /// Load-to-use latency in cycles.
    pub latency: u64,
    /// True if the access missed all cache levels (went to DRAM).
    pub dram: bool,
    /// True if the access missed the first-level cache.
    pub l1_miss: bool,
}

/// Aggregate cache statistics for reports.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LevelStats {
    /// Hits at this level.
    pub hits: u64,
    /// Misses at this level.
    pub misses: u64,
}

impl LevelStats {
    /// Hit rate; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let t = self.hits + self.misses;
        if t == 0 {
            0.0
        } else {
            self.hits as f64 / t as f64
        }
    }
}

/// A bandwidth contention model with *time-bucketed utilization* accounting.
///
/// Because cores advance in bounded chunks, their local clocks skew by up
/// to one chunk and their accesses reach shared resources out of true time
/// order. A literal FIFO `next_free` clock is therefore unusable: whichever
/// core happens to be processed first claims all early service slots and
/// later-processed cores are charged phantom queue delays (order-dependent
/// unfairness, not contention).
///
/// Instead, each access is charged the *expected* waiting time of an M/D/1
/// server at the resource's recent utilization: `W = s·ρ / (2(1−ρ))`,
/// where `s` is the service time and `ρ` is estimated from the arrival
/// count of recent time buckets (bucket length = the engine's chunk bound,
/// smoothed across buckets). This is fair, deterministic and
/// order-independent under chunked interleaving, and it preserves the
/// behaviour TaskPoint depends on: delay grows with the number of
/// concurrently active cores. Utilization is capped below 1; the finite
/// MSHRs provide the back-pressure that bounds sustained overload, as in a
/// real machine.
#[derive(Debug, Clone)]
struct ServiceQueue {
    service: f64,
    bucket_len: f64,
    bucket: u64,
    arrivals: f64,
    /// Smoothed utilization estimate from completed buckets.
    rho: f64,
}

impl ServiceQueue {
    fn new(service: u64, bucket_len: u64) -> Self {
        Self {
            service: service as f64,
            bucket_len: bucket_len.max(1) as f64,
            bucket: 0,
            arrivals: 0.0,
            rho: 0.0,
        }
    }

    /// Registers an access at `now`; returns the expected queueing delay.
    fn delay(&mut self, now: u64) -> u64 {
        let b = (now as f64 / self.bucket_len) as u64;
        if b != self.bucket {
            let inst_rho = (self.arrivals * self.service / self.bucket_len).min(2.0);
            // Gentle smoothing: sharp per-bucket swings would make task
            // latency depend on bucket phase, an artifact rather than load.
            self.rho = 0.75 * self.rho + 0.25 * inst_rho;
            self.bucket = b;
            self.arrivals = 0.0;
        }
        self.arrivals += 1.0;
        let rho = self.rho.min(0.90);
        (self.service * rho / (2.0 * (1.0 - rho))).round() as u64
    }
}

/// Bounded, direct-mapped sharer tracker (a snoop filter).
#[derive(Debug, Clone)]
struct SnoopFilter {
    /// (line, sharer bitmask); line == u64::MAX marks an empty slot.
    entries: Vec<(u64, u64)>,
    mask: u64,
}

impl SnoopFilter {
    fn new(log2_entries: u32) -> Self {
        let n = 1usize << log2_entries;
        Self { entries: vec![(u64::MAX, 0); n], mask: (n - 1) as u64 }
    }

    #[inline]
    fn slot(&self, line: u64) -> usize {
        // Fibonacci hashing spreads consecutive lines across the filter.
        ((line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 17) & self.mask) as usize
    }

    /// Records `core` as a sharer of `line`; returns the previous mask if
    /// the entry already tracked this line, 0 otherwise.
    fn add_sharer(&mut self, line: u64, core: u32) -> u64 {
        let slot = self.slot(line);
        let e = &mut self.entries[slot];
        if e.0 == line {
            let prev = e.1;
            e.1 |= 1 << core;
            prev
        } else {
            // Collision or empty: (re)claim the slot for this line.
            *e = (line, 1 << core);
            0
        }
    }

    /// Makes `core` the exclusive owner of `line`; returns the mask of
    /// *other* cores that had copies (to invalidate).
    fn make_exclusive(&mut self, line: u64, core: u32) -> u64 {
        let slot = self.slot(line);
        let e = &mut self.entries[slot];
        let others = if e.0 == line { e.1 & !(1u64 << core) } else { 0 };
        *e = (line, 1 << core);
        others
    }
}

/// The memory system is a *passive* [`Component`](crate::event::Component):
/// it never schedules events of its own. Cores advance its bandwidth and
/// contention queues synchronously, from inside their accesses, at the exact
/// global tick the access occurs — which keeps shared-state causality on
/// the chunk granularity the engine already enforces.
impl crate::event::Component for MemorySystem {
    fn name(&self) -> &str {
        "memory-hierarchy"
    }

    fn next_tick(&self) -> Option<u64> {
        None
    }

    fn tick(&mut self, _ctx: &mut crate::event::EventCtx<'_>) {}
}

/// The complete memory system of the simulated machine.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    /// `private[level][core]`.
    private: Vec<Vec<SetAssocCache>>,
    /// Shared levels in order, each with its bandwidth queue.
    shared: Vec<(SetAssocCache, ServiceQueue)>,
    /// Latency of each private level (cycles).
    private_latency: Vec<u32>,
    /// Latency of each shared level (cycles).
    shared_latency: Vec<u32>,
    /// Per-channel DRAM service queues.
    dram_queues: Vec<ServiceQueue>,
    dram_latency: u32,
    line_shift: u32,
    snoop: SnoopFilter,
    coherence_penalty: u32,
    invalidations: u64,
    dram_accesses: u64,
    /// Per-core last-accessed line, for the stream prefetcher's
    /// sequential-confirmation check.
    prefetch_last: Vec<u64>,
    prefetches: u64,
    /// Total cycles requests spent waiting in shared-level and DRAM
    /// service queues (bandwidth contention).
    queue_delay_cycles: u64,
    /// Accesses that hit a non-empty service queue (paid any queue delay).
    contended_accesses: u64,
}

impl MemorySystem {
    /// Builds the hierarchy for `cores` cores from a machine configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `cores == 0`.
    pub fn new(config: &MachineConfig, cores: u32) -> Self {
        config.validate();
        assert!(cores > 0 && cores <= 64, "1..=64 cores supported (snoop mask is u64)");
        let mut private = Vec::new();
        let mut private_latency = Vec::new();
        let mut shared = Vec::new();
        let mut shared_latency = Vec::new();
        let bucket = config.chunk_cycles;
        for level in &config.caches {
            if level.shared {
                shared.push((
                    SetAssocCache::new(level.size_bytes, level.associativity, config.line_size),
                    ServiceQueue::new(level.service_cycles as u64, bucket),
                ));
                shared_latency.push(level.latency);
            } else {
                assert!(
                    shared.is_empty(),
                    "private level {} below a shared level is not supported",
                    level.name
                );
                private.push(
                    (0..cores)
                        .map(|_| {
                            SetAssocCache::new(
                                level.size_bytes,
                                level.associativity,
                                config.line_size,
                            )
                        })
                        .collect(),
                );
                private_latency.push(level.latency);
            }
        }
        // Coherence penalty: one round trip through the first shared point
        // (or DRAM latency when there is none).
        let coherence_penalty = shared_latency.first().copied().unwrap_or(config.memory.latency);
        Self {
            private,
            shared,
            private_latency,
            shared_latency,
            dram_queues: (0..config.memory.channels)
                .map(|_| ServiceQueue::new(config.memory.service_cycles as u64, bucket))
                .collect(),
            dram_latency: config.memory.latency,
            line_shift: config.line_size.trailing_zeros(),
            snoop: SnoopFilter::new(16),
            coherence_penalty,
            invalidations: 0,
            dram_accesses: 0,
            prefetch_last: vec![u64::MAX - 1; cores as usize],
            prefetches: 0,
            queue_delay_cycles: 0,
            contended_accesses: 0,
        }
    }

    /// Converts a byte address to a line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Installs `line` in every shared level without cost — used to model
    /// application data that was initialized before the simulated region of
    /// interest (trace-driven simulators start with the OS/init phase
    /// already executed, so main memory structures are LLC-warm). Private
    /// levels stay cold; TaskPoint's warmup exists to heat those.
    ///
    /// Returns `true` if the line was newly installed in the last shared
    /// level (false if it was already present), so callers can budget by
    /// distinct lines.
    pub fn prewarm_line(&mut self, line: u64) -> bool {
        let mut newly = false;
        for (cache, _) in &mut self.shared {
            newly = cache.access(line) == AccessOutcome::Miss;
        }
        newly
    }

    /// Clears statistics counters while keeping contents (used after
    /// prewarming so reported hit/miss numbers only cover the measured
    /// region).
    pub fn reset_stats(&mut self) {
        for (c, _) in &mut self.shared {
            c.reset_counters();
        }
        for caches in &mut self.private {
            for c in caches.iter_mut() {
                c.reset_counters();
            }
        }
        self.invalidations = 0;
        self.dram_accesses = 0;
        self.prefetches = 0;
        self.queue_delay_cycles = 0;
        self.contended_accesses = 0;
    }

    /// Total capacity of the last shared level in lines (0 when none).
    pub fn last_level_capacity_lines(&self) -> usize {
        self.shared.last().map(|(c, _)| c.capacity_lines()).unwrap_or(0)
    }

    /// Performs a load (`write == false`) or a store/atomic (`write ==
    /// true`) by core `core` at absolute cycle `now`; returns the latency
    /// and miss classification.
    ///
    /// Stores still update cache and coherence state, but callers typically
    /// ignore their latency (write buffers); atomics add their own
    /// serialization cost in the core model.
    pub fn access(&mut self, core: u32, addr: u64, write: bool, now: u64) -> MemAccessResult {
        let line = self.line_of(addr);
        let c = core as usize;

        // 1. Private levels, closest first (misses write-allocate on the
        // way, so lower levels are filled as the request descends).
        let mut hit_latency: Option<u64> = None;
        let mut l1_miss = false;
        for (lvl, caches) in self.private.iter_mut().enumerate() {
            match caches[c].access(line) {
                AccessOutcome::Hit => {
                    hit_latency = Some(self.private_latency[lvl] as u64);
                    break;
                }
                AccessOutcome::Miss => {
                    if lvl == 0 {
                        l1_miss = true;
                    }
                }
            }
        }

        let mut dram = false;
        let latency = if let Some(lat) = hit_latency {
            lat
        } else {
            // 2. Shared levels with bandwidth queueing.
            let mut queue_delay = 0u64;
            let mut shared_hit: Option<u64> = None;
            let mut deepest_shared_latency = 0u64;
            for (i, (cache, queue)) in self.shared.iter_mut().enumerate() {
                queue_delay += queue.delay(now);
                deepest_shared_latency = self.shared_latency[i] as u64;
                if cache.access(line) == AccessOutcome::Hit {
                    shared_hit = Some(deepest_shared_latency + queue_delay);
                    break;
                }
            }
            let lat = match shared_hit {
                Some(lat) => lat,
                None => {
                    // 3. DRAM: channel queueing on top of the deepest level's
                    // (missed) lookup latency.
                    dram = true;
                    self.dram_accesses += 1;
                    let ch = (line % self.dram_queues.len() as u64) as usize;
                    queue_delay += self.dram_queues[ch].delay(now);
                    deepest_shared_latency + self.dram_latency as u64 + queue_delay
                }
            };
            if queue_delay > 0 {
                self.queue_delay_cycles += queue_delay;
                self.contended_accesses += 1;
            }
            lat
        };

        // 4. Stream prefetch: a simple next-line prefetcher with
        // sequential confirmation (two consecutive lines) — the mechanism
        // every real core ships that hides streaming first-touch misses.
        // The prefetched line is installed without timing cost (assumed
        // fully overlapped with the demand stream).
        let sequential = line == self.prefetch_last[c].wrapping_add(1);
        self.prefetch_last[c] = line;
        if l1_miss && sequential {
            let next = line + 1;
            for caches in self.private.iter_mut() {
                caches[c].install(next);
            }
            if let Some((last_shared, _)) = self.shared.last_mut() {
                last_shared.install(next);
            }
            self.snoop.add_sharer(next, core);
            self.prefetches += 1;
        }

        // 5. Coherence.
        let mut latency = latency;
        if write {
            let others = self.snoop.make_exclusive(line, core);
            if others != 0 {
                self.invalidations += others.count_ones() as u64;
                for victim in BitIter(others) {
                    for caches in self.private.iter_mut() {
                        caches[victim as usize].invalidate(line);
                    }
                }
                latency += self.coherence_penalty as u64;
            }
        } else {
            self.snoop.add_sharer(line, core);
        }

        MemAccessResult { latency, dram, l1_miss }
    }

    /// Total remote-copy invalidations performed.
    pub fn invalidations(&self) -> u64 {
        self.invalidations
    }

    /// Total cycles spent waiting in shared-level and DRAM service queues.
    pub fn queue_delay_cycles(&self) -> u64 {
        self.queue_delay_cycles
    }

    /// Number of accesses that paid a non-zero queue delay.
    pub fn contended_accesses(&self) -> u64 {
        self.contended_accesses
    }

    /// Total DRAM line fetches.
    pub fn dram_accesses(&self) -> u64 {
        self.dram_accesses
    }

    /// Total lines installed by the stream prefetcher.
    pub fn prefetches(&self) -> u64 {
        self.prefetches
    }

    /// Hit/miss statistics of private level `lvl` summed over cores.
    pub fn private_stats(&self, lvl: usize) -> LevelStats {
        let caches = &self.private[lvl];
        LevelStats {
            hits: caches.iter().map(SetAssocCache::hits).sum(),
            misses: caches.iter().map(SetAssocCache::misses).sum(),
        }
    }

    /// Hit/miss statistics of shared level `lvl` (0-based among shared).
    pub fn shared_stats(&self, lvl: usize) -> LevelStats {
        let c = &self.shared[lvl].0;
        LevelStats { hits: c.hits(), misses: c.misses() }
    }

    /// Number of private levels.
    pub fn private_levels(&self) -> usize {
        self.private.len()
    }

    /// Number of shared levels.
    pub fn shared_levels(&self) -> usize {
        self.shared.len()
    }
}

/// Iterator over set bits of a u64 (ascending).
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn mem(cores: u32) -> MemorySystem {
        MemorySystem::new(&MachineConfig::tiny_test(), cores)
    }

    #[test]
    fn cold_access_goes_to_dram_then_hits_l1() {
        let mut m = mem(1);
        let first = m.access(0, 0x1000, false, 0);
        assert!(first.dram);
        assert!(first.l1_miss);
        assert!(first.latency >= 60, "includes DRAM latency, got {}", first.latency);
        let second = m.access(0, 0x1000, false, first.latency);
        assert!(!second.dram);
        assert!(!second.l1_miss);
        assert_eq!(second.latency, 2, "tiny L1 latency");
    }

    #[test]
    fn same_line_different_offsets_hit() {
        let mut m = mem(1);
        m.access(0, 0x1000, false, 0);
        let r = m.access(0, 0x1030, false, 100); // same 64B line
        assert!(!r.l1_miss);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = mem(1);
        // tiny L1: 1024B/64B = 16 lines, 2-way, 8 sets. Lines 0, 8, 16 map
        // to set 0 (line addr % 8).
        m.access(0, 0, false, 0);
        m.access(0, 8 * 64, false, 200);
        m.access(0, 16 * 64, false, 400); // evicts line 0 from L1
        let r = m.access(0, 0, false, 600);
        assert!(r.l1_miss, "line 0 must have been evicted from L1");
        assert!(!r.dram, "line 0 still lives in shared L2");
        assert_eq!(r.latency, 8, "tiny L2 latency, no queueing at t=600");
    }

    #[test]
    fn remote_write_invalidates_local_copy() {
        let mut m = mem(2);
        // Core 0 reads the line into its private L1.
        m.access(0, 0x2000, false, 0);
        let warm = m.access(0, 0x2000, false, 300);
        assert!(!warm.l1_miss);
        // Core 1 writes the same line: core 0's copy must be invalidated.
        let w = m.access(1, 0x2000, true, 600);
        assert!(w.latency > 0);
        assert_eq!(m.invalidations(), 1);
        let after = m.access(0, 0x2000, false, 900);
        assert!(after.l1_miss, "copy was invalidated by remote write");
    }

    #[test]
    fn writer_pays_coherence_penalty() {
        let mut m = mem(2);
        // Baseline: an L2-hit write with no remote sharers. Line 0x7000 is
        // filled by core 1 itself, then pushed out of core 1's L1 (16-line,
        // 2-way L1: lines 0x7000/0x7200/0x7400 share a set).
        m.access(1, 0x7000, false, 0);
        m.access(1, 0x7200, false, 100);
        m.access(1, 0x7400, false, 200);
        let lone = m.access(1, 0x7000, true, 1000);
        assert!(lone.l1_miss && !lone.dram, "baseline must be an L2-hit write");

        // Contended: same shape of access (L1 miss, L2 hit) but core 0
        // holds a copy that must be invalidated.
        m.access(0, 0x2000, false, 2000);
        let contended = m.access(1, 0x2000, true, 3000);
        assert!(contended.l1_miss && !contended.dram);
        assert!(
            contended.latency > lone.latency,
            "invalidation adds latency: {} vs {}",
            contended.latency,
            lone.latency
        );
        assert_eq!(m.invalidations(), 1);
    }

    #[test]
    fn bandwidth_contention_raises_latency_under_load() {
        // Tiny config: chunk (= utilization bucket) is 1024 cycles, one
        // DRAM channel with service 4. Saturate bucket 0, then measure in
        // bucket 1: the utilization estimate must charge queueing delay.
        let mut busy = mem(2);
        for i in 0..300u64 {
            // Distinct lines, spread over bucket 0.
            busy.access(0, 0x40_0000 + i * 4096, false, i * 3);
        }
        let loaded = busy.access(1, 0x900_0000, false, 1500);
        let mut idle = mem(2);
        let quiet = idle.access(1, 0x900_0000, false, 1500);
        assert!(
            loaded.latency > quiet.latency,
            "prior-bucket load must add delay: {} vs {}",
            loaded.latency,
            quiet.latency
        );
    }

    #[test]
    fn private_caches_are_per_core() {
        let mut m = mem(2);
        m.access(0, 0x3000, false, 0);
        let other = m.access(1, 0x3000, false, 300);
        assert!(other.l1_miss, "core 1 has its own cold L1");
        assert!(!other.dram, "but the shared L2 already holds the line");
    }

    #[test]
    fn stats_accumulate() {
        let mut m = mem(1);
        m.access(0, 0, false, 0);
        m.access(0, 0, false, 100);
        let l1 = m.private_stats(0);
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
        assert!((l1.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(m.dram_accesses(), 1);
        assert_eq!(m.private_levels(), 1);
        assert_eq!(m.shared_levels(), 1);
    }

    #[test]
    fn high_perf_machine_builds_three_levels() {
        let m = MemorySystem::new(&MachineConfig::high_performance(), 64);
        assert_eq!(m.private_levels(), 2);
        assert_eq!(m.shared_levels(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=64 cores")]
    fn too_many_cores_rejected() {
        MemorySystem::new(&MachineConfig::tiny_test(), 65);
    }

    #[test]
    fn bit_iter_yields_set_bits() {
        let bits: Vec<u32> = BitIter(0b1010_0001).collect();
        assert_eq!(bits, vec![0, 5, 7]);
        assert_eq!(BitIter(0).count(), 0);
    }
}
