//! TaskSim — a trace-driven, cycle-level multi-core simulator.
//!
//! Re-implementation of the simulation substrate the TaskPoint paper builds
//! on (Rico et al., "Trace-driven simulation of multithreaded
//! applications", ISPASS 2011):
//!
//! * a **detailed mode** based on the ROB-occupancy-analysis core model
//!   ([`core_model`]) with a full cache hierarchy, coherence and DRAM
//!   contention ([`hierarchy`]);
//! * a **fast (burst) mode** that advances a task in one step at a
//!   *user-specified IPC* ([`burst`]) — the paper's requirement #2 on a
//!   host simulator;
//! * runtime **mode switching at task boundaries** driven by a pluggable
//!   [`ModeController`] ([`mode`]) — the hook TaskPoint implements;
//! * a deterministic multi-core interleaving [`engine`] that executes
//!   dynamically scheduled task programs from `taskpoint-runtime`;
//! * the two machine configurations of the paper's Table II ([`config`]).
//!
//! # Example: full detailed simulation
//!
//! ```
//! use taskpoint_runtime::Program;
//! use taskpoint_trace::TraceSpec;
//! use tasksim::{DetailedOnly, MachineConfig, Simulation};
//!
//! let mut b = Program::builder("demo");
//! let ty = b.add_type("work");
//! for i in 0..4 {
//!     b.add_task(ty, TraceSpec::synthetic(i, 1_000), vec![]);
//! }
//! let program = b.build();
//!
//! let result = Simulation::builder(&program, MachineConfig::high_performance())
//!     .workers(2)
//!     .build()
//!     .run(&mut DetailedOnly);
//! assert_eq!(result.detailed_tasks, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod cache;
pub mod config;
pub mod core_model;
pub mod engine;
pub mod event;
pub mod hierarchy;
pub mod mode;
pub mod noise;
pub(crate) mod parallel;
pub mod report;
pub mod traces;

pub use burst::burst_duration;
pub use config::{
    CacheLevelConfig, CoreConfig, CoreGroupConfig, KindLatencies, MachineConfig,
    MachineConfigError, MemoryConfig, MAX_CLOCK_DIVIDER,
};
pub use engine::{detail_threads_from_env, Simulation, SimulationBuilder};
pub use event::{Component, ComponentId, EventCtx, EventScheduler};
pub use hierarchy::{LevelStats, MemPort, MemorySystem};
pub use mode::{DetailedOnly, ExecMode, FixedIpc, ModeController, TaskStart};
pub use noise::NoiseModel;
pub use report::{
    CycleAccount, GroupStats, LatencyPercentiles, ParallelEpochs, SimMode, SimResult, TaskReport,
};
pub use taskpoint_telemetry as telemetry;
pub use taskpoint_telemetry::{
    FidelityAction, NopSink, ProfileSpan, SimEvent, Sink, Telemetry, TelemetryReport,
};
pub use traces::{ProceduralTraces, RecordedTraces, TraceMismatch, TraceProvider};
