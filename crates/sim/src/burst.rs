//! Burst (fast-forward) timing.
//!
//! TaskSim's fast mode only accounts for the cycles between the beginning
//! and the end of a task instance. Our extension (the paper's contribution,
//! §IV) computes that duration at the *start* of the instance from its
//! dynamic instruction count and a prescribed IPC:
//!
//! ```text
//! C_i = I_i / IPC_T
//! ```
//!
//! where `IPC_T` is the mean IPC of the instance's task type's sample
//! history.

/// Number of cycles a task with `instructions` dynamic instructions takes
/// at the prescribed `ipc`, rounded up and never zero.
///
/// ```
/// use tasksim::burst::burst_duration;
/// assert_eq!(burst_duration(1000, 2.0), 500);
/// assert_eq!(burst_duration(1001, 2.0), 501); // rounds up
/// assert_eq!(burst_duration(0, 2.0), 1);      // a task never takes 0 cycles
/// ```
///
/// # Panics
///
/// Panics if `ipc` is not a positive finite number.
pub fn burst_duration(instructions: u64, ipc: f64) -> u64 {
    assert!(ipc.is_finite() && ipc > 0.0, "invalid burst IPC {ipc}");
    let cycles = (instructions as f64 / ipc).ceil() as u64;
    cycles.max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        assert_eq!(burst_duration(100, 4.0), 25);
    }

    #[test]
    fn rounds_up() {
        assert_eq!(burst_duration(101, 4.0), 26);
        assert_eq!(burst_duration(1, 4.0), 1);
    }

    #[test]
    fn never_zero() {
        assert_eq!(burst_duration(0, 10.0), 1);
    }

    #[test]
    fn monotone_in_instructions() {
        let mut prev = 0;
        for i in (0..10_000).step_by(97) {
            let d = burst_duration(i, 1.7);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn monotone_in_inverse_ipc() {
        let d_fast = burst_duration(5000, 4.0);
        let d_slow = burst_duration(5000, 0.5);
        assert!(d_slow > d_fast);
        assert_eq!(d_slow, 10_000);
    }

    #[test]
    #[should_panic(expected = "invalid burst IPC")]
    fn rejects_zero_ipc() {
        burst_duration(10, 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid burst IPC")]
    fn rejects_nan_ipc() {
        burst_duration(10, f64::NAN);
    }
}
