//! The discrete-event multi-core engine.
//!
//! Executes a [`Program`] on a simulated machine: each worker core is a
//! [`Component`] driven by the deterministic [`EventScheduler`] (ties
//! break on stable component id), the runtime scheduler hands ready task
//! instances to idle workers, and a [`ModeController`] decides per task
//! instance whether it runs through the detailed core model or is
//! fast-forwarded at a prescribed IPC. Mode switching therefore happens
//! exactly at task boundaries, matching the paper's mechanism; tasks that
//! started before a global mode transition simply finish in the mode they
//! started in.
//!
//! Detailed cores still advance in bounded time chunks (causal skew on
//! shared state never exceeds one chunk), but the time base is now the
//! machine's **base clock**: a core in a group with clock divider `d`
//! runs its pipeline in core-local cycles and occupies the event timeline
//! only on multiples of `d` (see the [`event`](crate::event) module docs
//! for the conversion rules). Homogeneous machines run every core at
//! divider 1, where all conversions are identities — results are
//! bit-identical to the pre-event lockstep engine (pinned by
//! `tests/block_equivalence.rs`).
//!
//! The engine is single-threaded and fully deterministic: event ties
//! break on component id, schedulers are deterministic, and all
//! randomness (trace content, mispredictions, noise) is derived from
//! per-instance seeds.
//!
//! Detailed tasks consume their instruction stream through the batched
//! block pipeline: a [`TraceProvider`] hands each task a
//! [`TraceSource`] (procedural by default, recorded via
//! [`RecordedTraces`](crate::traces::RecordedTraces)), the core component
//! refills a structure-of-arrays [`InstBlock`], and
//! [`RobCore::execute_block`] walks it. Chunk boundaries are enforced per
//! instruction inside the block walk, so simulated timing is bit-identical
//! for every block capacity (pinned by `tests/block_equivalence.rs`).

use std::time::Instant;

use taskpoint_runtime::{FifoScheduler, Program, ReadySet, Scheduler, TaskInstanceId, WorkerId};
use taskpoint_stats::rng::{mix_seed, Xoshiro256pp};
use taskpoint_telemetry::{NopSink, SimEvent, Sink, Telemetry};
use taskpoint_trace::{InstBlock, TraceSource, BLOCK_CAPACITY};

use crate::burst::burst_duration;
use crate::config::MachineConfig;
use crate::core_model::{RobCore, TaskParams};
use crate::core_model::{
    NUM_STALLS, STALL_CONTENTION, STALL_DEP, STALL_DRAM, STALL_L1, STALL_L2, STALL_MSHR, STALL_ROB,
};
use crate::event::{Component, ComponentId, EventCtx, EventScheduler};
use crate::hierarchy::MemorySystem;
use crate::mode::{ExecMode, ModeController, TaskStart};
use crate::noise::NoiseModel;
use crate::report::{CycleAccount, GroupStats, LatencyPercentiles, SimMode, SimResult, TaskReport};
use crate::traces::{ProceduralTraces, TraceProvider};

/// Domain-separation constant for per-task pipeline randomness (branch and
/// dependency draws), mixed with the trace seed so detailed replays are
/// identical in every run and mode.
pub(crate) const PIPELINE_RNG_SALT: u64 = 0xC0DE_0001;

/// Default floor (in instructions) below which a detailed task is not worth
/// speculating on a parallel worker: shard forking and replay validation
/// cost more than simply executing it in line.
pub(crate) const PARALLEL_MIN_TASK_INSTRUCTIONS: u64 = 20_000;

/// Reads the `TASKPOINT_DETAIL_THREADS` environment override for
/// [`SimulationBuilder::detail_threads`]; returns 1 (the sequential
/// engine) when unset.
///
/// # Panics
///
/// Panics on a value that is not an integer in `1..=64` — a misspelled
/// override silently running sequentially would invalidate benchmarks.
pub fn detail_threads_from_env() -> usize {
    match std::env::var("TASKPOINT_DETAIL_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if (1..=64).contains(&n) => n,
            _ => panic!("TASKPOINT_DETAIL_THREADS must be an integer in 1..=64, got {v:?}"),
        },
        Err(_) => 1,
    }
}

/// A configured simulation, ready to [`run`](Simulation::run).
pub struct Simulation<'p> {
    program: &'p Program,
    machine: MachineConfig,
    workers: u32,
    scheduler: Box<dyn Scheduler>,
    noise: Option<NoiseModel>,
    collect_reports: bool,
    prewarm: bool,
    traces: Box<dyn TraceProvider>,
    block_capacity: usize,
    telemetry: Telemetry,
    detail_threads: usize,
    parallel_min_task_instructions: u64,
}

/// Builder for [`Simulation`].
pub struct SimulationBuilder<'p> {
    program: &'p Program,
    machine: MachineConfig,
    workers: u32,
    scheduler: Option<Box<dyn Scheduler>>,
    noise: Option<NoiseModel>,
    collect_reports: bool,
    prewarm: bool,
    traces: Option<Box<dyn TraceProvider>>,
    block_capacity: usize,
    telemetry: Telemetry,
    detail_threads: usize,
    parallel_min_task_instructions: u64,
}

impl<'p> Simulation<'p> {
    /// Starts building a simulation of `program` on `machine`.
    pub fn builder(program: &'p Program, machine: MachineConfig) -> SimulationBuilder<'p> {
        SimulationBuilder {
            program,
            machine,
            workers: 1,
            scheduler: None,
            noise: None,
            collect_reports: false,
            prewarm: true,
            traces: None,
            block_capacity: BLOCK_CAPACITY,
            telemetry: Telemetry::disabled(),
            detail_threads: 1,
            parallel_min_task_instructions: PARALLEL_MIN_TASK_INSTRUCTIONS,
        }
    }

    /// Runs the simulation to completion under `controller` and returns the
    /// result. Consumes the simulation (caches and clocks are single-use).
    ///
    /// # Panics
    ///
    /// Panics if the scheduler loses tasks (tasks pending but none ready or
    /// running — impossible with the provided schedulers) or the controller
    /// returns an invalid fast-forward IPC.
    pub fn run<C: ModeController>(self, controller: &mut C) -> SimResult {
        // Monomorphize the whole engine per sink: the common disabled case
        // runs with [`NopSink`], whose inlined empty methods compile the
        // instrumentation out of the hot path entirely.
        if self.telemetry.is_recording() {
            let sink = self.telemetry.clone();
            self.run_impl(controller, sink)
        } else {
            self.run_impl(controller, NopSink)
        }
    }

    fn run_impl<C: ModeController, S: Sink>(self, controller: &mut C, sink: S) -> SimResult {
        let Simulation {
            program,
            machine,
            workers: num_workers,
            scheduler,
            noise,
            collect_reports,
            prewarm,
            traces,
            block_capacity,
            telemetry: _,
            detail_threads,
            parallel_min_task_instructions,
        } = self;
        let parallel = crate::parallel::ParallelState::new(
            detail_threads,
            parallel_min_task_instructions,
            &machine,
        );
        let wall_start = Instant::now();
        let mut mem = MemorySystem::new(&machine, num_workers);
        if prewarm {
            prewarm_memory(&mut mem, program, machine.line_size);
        }
        // Worker cores are components 0..num_workers, assigned to groups
        // in the machine's listed order (group 0 gets the lowest ids, so
        // the idle policy "lowest id first" prefers the leading — big —
        // group). A homogeneous machine is one implicit divider-1 group.
        let mut components = Vec::with_capacity(num_workers as usize);
        if machine.core_groups.is_empty() {
            for w in 0..num_workers {
                components.push(CoreComponent::new(
                    w,
                    RobCore::new(&machine.core),
                    1,
                    0,
                    machine.chunk_cycles,
                ));
            }
        } else {
            let mut w = 0u32;
            for (gi, g) in machine.core_groups.iter().enumerate() {
                let cfg = g.core.as_ref().unwrap_or(&machine.core);
                for _ in 0..g.cores {
                    let mut core = RobCore::new(cfg);
                    core.set_clock_divider(g.clock_divider as u64);
                    components.push(CoreComponent::new(
                        w,
                        core,
                        g.clock_divider as u64,
                        gi as u32,
                        machine.chunk_cycles,
                    ));
                    w += 1;
                }
            }
        }
        let group_stats: Vec<GroupStats> = machine
            .core_groups
            .iter()
            .map(|g| GroupStats {
                name: g.name.clone(),
                cores: g.cores,
                clock_divider: g.clock_divider,
                detailed_tasks: 0,
                fast_tasks: 0,
                instructions: 0,
                busy_ticks: 0,
            })
            .collect();
        // Cycle-accounting buckets: one per configured group, or a single
        // synthetic `all` group on homogeneous machines (where `groups`
        // stays empty but the taxonomy is still wanted).
        let cycle_accounts: Vec<CycleAccount> = if machine.core_groups.is_empty() {
            vec![CycleAccount {
                name: "all".to_string(),
                cores: num_workers,
                ..CycleAccount::default()
            }]
        } else {
            machine
                .core_groups
                .iter()
                .map(|g| CycleAccount {
                    name: g.name.clone(),
                    cores: g.cores,
                    ..CycleAccount::default()
                })
                .collect()
        };
        let mut engine = Engine {
            program,
            mem,
            components,
            scheduler,
            ready_set: program.graph().ready_set(),
            ready_at: vec![0; program.num_instances()],
            sched: EventScheduler::new(),
            idle: (0..num_workers).rev().collect(),
            running_count: 0,
            num_workers,
            noise,
            collect_reports,
            traces,
            block_capacity,
            stats: RunStats::default(),
            reports: Vec::new(),
            group_stats,
            cycle_accounts,
            latencies: Vec::new(),
            sink,
            completed: vec![false; program.num_instances()],
            parallel,
        };
        if engine.sink.enabled() {
            for ty in program.types() {
                engine
                    .sink
                    .event(SimEvent::TypeDecl { id: ty.id().0, name: ty.name().to_string() });
            }
        }
        for root in program.graph().roots() {
            engine.scheduler.task_ready(root);
        }
        engine.assign_ready_tasks(controller, 0);
        engine.event_loop(controller);

        assert!(
            engine.ready_set.all_done(),
            "simulation stalled with {} tasks pending (scheduler lost tasks?)",
            engine.ready_set.pending()
        );
        engine.finalize_cycle_accounts();
        engine.emit_final_counters();
        let task_latency = engine.latency_percentiles();

        SimResult {
            total_cycles: engine.stats.max_end,
            wall_seconds: wall_start.elapsed().as_secs_f64(),
            detailed_tasks: engine.stats.detailed_tasks,
            fast_tasks: engine.stats.fast_tasks,
            detailed_instructions: engine.stats.detailed_instructions,
            fast_instructions: engine.stats.fast_instructions,
            reports: engine.reports,
            invalidations: engine.mem.invalidations(),
            dram_accesses: engine.mem.dram_accesses(),
            private_cache: (0..engine.mem.private_levels())
                .map(|l| engine.mem.private_stats(l))
                .collect(),
            shared_cache: (0..engine.mem.shared_levels())
                .map(|l| engine.mem.shared_stats(l))
                .collect(),
            workers: num_workers,
            groups: engine.group_stats,
            parallel_epochs: crate::report::ParallelEpochs {
                committed: engine.parallel.epochs_committed,
                aborted: engine.parallel.epochs_aborted,
            },
            cycle_accounts: engine.cycle_accounts,
            task_latency,
        }
    }
}

/// Live state of a run (separated from `Simulation` so borrows stay local).
/// Crate-visible so the [`parallel`](crate::parallel) module can implement
/// the speculative-epoch logic on it.
pub(crate) struct Engine<'p, S: Sink> {
    pub(crate) program: &'p Program,
    pub(crate) mem: MemorySystem,
    pub(crate) components: Vec<CoreComponent>,
    pub(crate) scheduler: Box<dyn Scheduler>,
    pub(crate) ready_set: ReadySet,
    /// Earliest start cycle of each task: the maximum completion time of
    /// its predecessors. Completions are processed in *event* order, which
    /// can differ from end-time order when a task's commit tail extends
    /// past its final chunk — without this, a successor could start before
    /// a predecessor's actual end.
    pub(crate) ready_at: Vec<u64>,
    pub(crate) sched: EventScheduler,
    /// Idle worker ids, kept sorted descending so `pop` yields lowest id.
    pub(crate) idle: Vec<u32>,
    pub(crate) running_count: u32,
    pub(crate) num_workers: u32,
    pub(crate) noise: Option<NoiseModel>,
    pub(crate) collect_reports: bool,
    pub(crate) traces: Box<dyn TraceProvider>,
    pub(crate) block_capacity: usize,
    pub(crate) stats: RunStats,
    pub(crate) reports: Vec<TaskReport>,
    /// Per-group accumulators, in machine group order (empty for
    /// homogeneous machines).
    pub(crate) group_stats: Vec<GroupStats>,
    /// Cycle-accounting buckets, in machine group order (one synthetic
    /// `all` entry for homogeneous machines). Global base-clock ticks.
    pub(crate) cycle_accounts: Vec<CycleAccount>,
    /// Duration of every completed task, for exact latency percentiles
    /// (one u64 per task — always on, unlike `reports`).
    pub(crate) latencies: Vec<u64>,
    /// Telemetry receiver — [`NopSink`] unless the simulation was built
    /// with a recording [`Telemetry`] handle.
    pub(crate) sink: S,
    /// Completion flags per task instance, used by the parallel detail
    /// layer's dependency-closure check.
    pub(crate) completed: Vec<bool>,
    /// Intra-run parallelism configuration and counters.
    pub(crate) parallel: crate::parallel::ParallelState,
}

impl<'p, S: Sink> Engine<'p, S> {
    fn event_loop<C: ModeController>(&mut self, controller: &mut C) {
        while let Some((t, id)) = self.sched.pop() {
            self.sink.counter("scheduler.pops", id.0, 1);
            // Tick the component with split borrows of the shared fabric,
            // then re-schedule it from its own next_tick — components
            // never touch the event heap directly.
            let completions = {
                let mut ctx =
                    EventCtx::new(t, id, &mut self.mem, self.program, self.noise.as_ref());
                self.components[id.index()].tick(&mut ctx);
                ctx.into_completions()
            };
            if let Some(next) = self.components[id.index()].next_tick() {
                self.sched.schedule(next, id);
            }
            // Completion effects run synchronously, inside this event:
            // deferring them to a same-tick follow-up event would batch
            // completions and change observable concurrency values.
            for report in completions {
                self.complete(report, controller);
            }
        }
    }

    /// Records a completed task, releases its worker and assigns any newly
    /// ready work.
    fn complete<C: ModeController>(&mut self, report: TaskReport, controller: &mut C) {
        let w = report.worker.0;
        match report.mode {
            SimMode::Detailed => {
                self.stats.detailed_tasks += 1;
                self.stats.detailed_instructions += report.instructions;
            }
            SimMode::Fast => {
                self.stats.fast_tasks += 1;
                self.stats.fast_instructions += report.instructions;
            }
        }
        self.stats.max_end = self.stats.max_end.max(report.end);
        self.sink.event(SimEvent::TaskFinished {
            start: report.start,
            end: report.end,
            worker: w,
            task: report.task.0,
            type_id: report.type_id.0,
            detailed: report.mode == SimMode::Detailed,
            instructions: report.instructions,
            concurrency: report.concurrency,
        });
        if !self.group_stats.is_empty() {
            let g = self.components[w as usize].group as usize;
            let gs = &mut self.group_stats[g];
            match report.mode {
                SimMode::Detailed => gs.detailed_tasks += 1,
                SimMode::Fast => gs.fast_tasks += 1,
            }
            gs.instructions += report.instructions;
            gs.busy_ticks += report.end - report.start;
        }
        self.account_task(&report);
        self.latencies.push(report.end - report.start);
        self.sink.observe("task.latency", 0, report.end - report.start);
        self.running_count -= 1;
        self.completed[report.task.index()] = true;
        controller.on_task_complete(&report);
        if self.collect_reports {
            self.reports.push(report);
        }
        for &succ in self.program.graph().successors(report.task) {
            let r = &mut self.ready_at[succ.index()];
            *r = (*r).max(report.end);
        }
        let newly = self.ready_set.complete(self.program.graph(), report.task);
        for t in newly {
            self.scheduler.task_ready(t);
        }
        self.components[w as usize].local_time = report.end;
        self.idle.push(w);
        self.idle.sort_unstable_by(|a, b| b.cmp(a));
        self.assign_ready_tasks(controller, report.end);
    }

    /// Hands ready tasks to idle workers (lowest id first), starting them
    /// no earlier than `now`.
    fn assign_ready_tasks<C: ModeController>(&mut self, controller: &mut C, now: u64) {
        let prev_running = self.running_count;
        while self.scheduler.ready_count() > 0 {
            let Some(w) = self.idle.pop() else { break };
            let Some(task) = self.scheduler.pick(WorkerId(w)) else {
                self.idle.push(w);
                break;
            };
            let widx = w as usize;
            let start = self.components[widx].local_time.max(now).max(self.ready_at[task.index()]);
            let inst = self.program.instance(task);
            self.running_count += 1;
            let ctx = TaskStart {
                task,
                type_id: inst.type_id(),
                instructions: inst.instructions(),
                worker: WorkerId(w),
                time: start,
                concurrency: self.running_count,
                total_workers: self.num_workers,
            };
            let mode = controller.mode_for_task(&ctx);
            self.sink.event(SimEvent::TaskAssigned {
                tick: start,
                worker: w,
                task: task.0,
                type_id: inst.type_id().0,
                detailed: matches!(mode, ExecMode::Detailed),
            });
            match mode {
                ExecMode::Detailed => {
                    let spec = inst.trace();
                    let comp = &mut self.components[widx];
                    // The pipeline clock lives on the core-local grid: the
                    // first local cycle at or after the global start.
                    // Divider 1 (homogeneous) makes this the identity.
                    let local_start = start.div_ceil(comp.divider);
                    comp.core.reset(local_start);
                    let block = comp
                        .spare_block
                        .take()
                        .unwrap_or_else(|| InstBlock::with_capacity(self.block_capacity));
                    comp.running = Some(Running::Detailed {
                        task,
                        source: self.traces.source(task, spec),
                        block,
                        cursor: 0,
                        data_rng: Xoshiro256pp::seed_from_u64(mix_seed(&[
                            spec.seed(),
                            PIPELINE_RNG_SALT,
                        ])),
                        code_rng: Xoshiro256pp::seed_from_u64(mix_seed(&[
                            spec.code_seed(),
                            PIPELINE_RNG_SALT,
                        ])),
                        params: TaskParams {
                            branch_mispredict_rate: spec.branch_mispredict_rate(),
                            dependency_rate: spec.dependency_rate(),
                        },
                        start,
                        executed: 0,
                        concurrency: self.running_count,
                    });
                    comp.local_time = start;
                    comp.next_tick = Some(local_start * comp.divider);
                }
                ExecMode::Fast { ipc } => {
                    let comp = &mut self.components[widx];
                    // A slower clock stretches the burst on the global
                    // timeline by the divider.
                    let end = start + burst_duration(inst.instructions(), ipc) * comp.divider;
                    comp.running = Some(Running::Burst {
                        task,
                        start,
                        end,
                        instructions: inst.instructions(),
                        concurrency: self.running_count,
                    });
                    comp.local_time = start;
                    comp.next_tick = Some(end);
                }
            }
            let next = self.components[widx].next_tick().expect("fresh task is scheduled");
            self.sched.schedule(next, ComponentId(w));
        }
        self.sink.event(SimEvent::QueueDepth {
            tick: now,
            ready: self.scheduler.ready_count() as u64,
            running: self.running_count,
        });
        self.sink.observe("sched.ready_depth", 0, self.scheduler.ready_count() as u64);
        // A fully fresh batch (no task mid-flight, no work left queued) is
        // a candidate epoch for the speculative parallel detail layer: all
        // running tasks start now, so their executions can be raced ahead
        // on host threads and validated for commit.
        if prev_running == 0 && self.running_count >= 2 && self.scheduler.ready_count() == 0 {
            self.maybe_parallel_epoch();
        }
    }

    /// Folds one finished task into its group's [`CycleAccount`].
    ///
    /// Detailed tasks are attributed from the core's always-on stall
    /// counters with a *clamped walk*: the noise model (and the one-cycle
    /// duration floor) can scale a task's wall duration away from the
    /// modeled pipeline time, so each stall category takes at most what
    /// remains of the task's actual `end - start` budget — memory-side
    /// categories first (they are the rarest and most meaningful), with
    /// `issue` absorbing the remainder. The sum over categories therefore
    /// equals the busy time *exactly*, which is what makes the
    /// sums-to-total invariant on [`CycleAccount`] hold unconditionally.
    fn account_task(&mut self, report: &TaskReport) {
        let w = report.worker.0 as usize;
        let busy = report.end - report.start;
        let g = self.components[w].group as usize;
        match report.mode {
            SimMode::Fast => self.cycle_accounts[g].fast_fwd += busy,
            SimMode::Detailed => {
                let stalls: [u64; NUM_STALLS] = self.components[w].core.stall_global_ticks();
                let acct = &mut self.cycle_accounts[g];
                let mut remaining = busy;
                let take = |cat: usize, remaining: &mut u64| -> u64 {
                    let v = stalls[cat].min(*remaining);
                    *remaining -= v;
                    v
                };
                acct.dep_wait += take(STALL_DEP, &mut remaining);
                acct.mshr_full += take(STALL_MSHR, &mut remaining);
                acct.contention += take(STALL_CONTENTION, &mut remaining);
                acct.dram_wait += take(STALL_DRAM, &mut remaining);
                acct.l2_wait += take(STALL_L2, &mut remaining);
                acct.l1_wait += take(STALL_L1, &mut remaining);
                acct.rob_full += take(STALL_ROB, &mut remaining);
                acct.issue += remaining;
            }
        }
    }

    /// Closes the books after the event loop: whatever part of
    /// `total_cycles × cores` each group did not spend busy is idle time,
    /// making every account sum exactly to the machine's capacity.
    fn finalize_cycle_accounts(&mut self) {
        let total = self.stats.max_end;
        for acct in &mut self.cycle_accounts {
            acct.idle = (total * acct.cores as u64).saturating_sub(acct.busy());
        }
    }

    /// Exact task-latency percentiles over every completed task.
    fn latency_percentiles(&self) -> LatencyPercentiles {
        if self.latencies.is_empty() {
            return LatencyPercentiles::default();
        }
        let mut sorted: Vec<f64> = self.latencies.iter().map(|&d| d as f64).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        LatencyPercentiles {
            count: sorted.len() as u64,
            p50: taskpoint_stats::percentile::percentile_sorted(&sorted, 50.0),
            p99: taskpoint_stats::percentile::percentile_sorted(&sorted, 99.0),
            p999: taskpoint_stats::percentile::percentile_sorted(&sorted, 99.9),
        }
    }

    /// Emits the end-of-run counter snapshot: memory-system totals,
    /// per-level cache hits/misses, per-group busy ticks and instructions.
    fn emit_final_counters(&mut self) {
        if !self.sink.enabled() {
            return;
        }
        self.sink.counter("mem.dram_accesses", 0, self.mem.dram_accesses());
        self.sink.counter("mem.invalidations", 0, self.mem.invalidations());
        self.sink.counter("mem.prefetches", 0, self.mem.prefetches());
        self.sink.counter("mem.queue_delay_cycles", 0, self.mem.queue_delay_cycles());
        self.sink.counter("mem.contended_accesses", 0, self.mem.contended_accesses());
        for l in 0..self.mem.private_levels() {
            let s = self.mem.private_stats(l);
            self.sink.counter("mem.private_hits", l as u32, s.hits);
            self.sink.counter("mem.private_misses", l as u32, s.misses);
        }
        for l in 0..self.mem.shared_levels() {
            let s = self.mem.shared_stats(l);
            self.sink.counter("mem.shared_hits", l as u32, s.hits);
            self.sink.counter("mem.shared_misses", l as u32, s.misses);
        }
        for (g, gs) in self.group_stats.iter().enumerate() {
            self.sink.counter("group.busy_ticks", g as u32, gs.busy_ticks);
            self.sink.counter("group.instructions", g as u32, gs.instructions);
        }
        for (g, acct) in self.cycle_accounts.iter().enumerate() {
            let g = g as u32;
            self.sink.counter("cycles.issue", g, acct.issue);
            self.sink.counter("cycles.rob_full", g, acct.rob_full);
            self.sink.counter("cycles.dep_wait", g, acct.dep_wait);
            self.sink.counter("cycles.l1_wait", g, acct.l1_wait);
            self.sink.counter("cycles.l2_wait", g, acct.l2_wait);
            self.sink.counter("cycles.dram_wait", g, acct.dram_wait);
            self.sink.counter("cycles.mshr_full", g, acct.mshr_full);
            self.sink.counter("cycles.contention", g, acct.contention);
            self.sink.counter("cycles.fast_fwd", g, acct.fast_fwd);
            self.sink.counter("cycles.idle", g, acct.idle);
        }
        self.sink.observe_hist("mem.access_latency", 0, self.mem.access_latency_histogram());
    }
}

/// Models the application's initialization phase: trace-driven simulation
/// begins after the program's data structures were allocated and filled, so
/// the *shared* last-level cache holds the most recently initialized data
/// (bounded by its capacity — LRU keeps the tail of the walk, and data
/// beyond capacity simply stays in DRAM as it would in reality). Private
/// caches stay cold; heating those is exactly what TaskPoint's warmup
/// phase is for.
fn prewarm_memory(mem: &mut MemorySystem, program: &Program, line_size: u32) {
    let capacity = mem.last_level_capacity_lines();
    if capacity == 0 {
        return;
    }
    // Deduplicate regions first: tiled programs annotate the same block in
    // thousands of instances, and re-touching resident lines would spend
    // the entire prewarm budget on LRU churn.
    let mut seen = std::collections::HashSet::new();
    let mut regions = Vec::new();
    // Reverse creation order: the "most recently initialized" data (what an
    // init phase leaves resident) wins the capacity race.
    for inst in program.instances().iter().rev() {
        for region in [inst.trace().footprint(), inst.trace().shared()] {
            if !region.is_empty() && seen.insert((region.base, region.len)) {
                regions.push(region);
            }
        }
    }
    // All-or-nothing: if the program's distinct data exceeds the last
    // level, partial prewarming would split instances of one task type into
    // a fast (resident) and a slow (DRAM) class that does not exist in
    // reality — real init leaves *every* task's data equally (non-)resident.
    // When the data does not fit, nothing is prewarmed and every instance
    // pays the same DRAM first-touch costs.
    let total_lines: u64 = regions
        .iter()
        .map(|r| {
            let first = r.base >> line_size.trailing_zeros();
            let last = (r.end() - 1) >> line_size.trailing_zeros();
            last - first + 1
        })
        .sum();
    if total_lines > capacity as u64 {
        return;
    }
    for region in regions {
        let first = region.base >> line_size.trailing_zeros();
        let last = (region.end() - 1) >> line_size.trailing_zeros();
        for line in first..=last {
            mem.prewarm_line(line);
        }
    }
    mem.reset_stats();
}

/// Per-run counters.
#[derive(Debug, Default)]
pub(crate) struct RunStats {
    pub(crate) detailed_tasks: u64,
    pub(crate) fast_tasks: u64,
    pub(crate) detailed_instructions: u64,
    pub(crate) fast_instructions: u64,
    pub(crate) max_end: u64,
}

/// What a worker core is currently doing.
///
/// `Detailed` dwarfs `Burst` (it carries the trace source, the refill
/// block and two RNGs), but there is exactly one `Running` per worker, so
/// boxing it would only add a pointer chase on the hot path.
#[allow(clippy::large_enum_variant)]
pub(crate) enum Running {
    Detailed {
        task: TaskInstanceId,
        /// Producer of the task's instruction stream (procedural or
        /// recorded, via the simulation's [`TraceProvider`]).
        source: Box<dyn TraceSource>,
        /// The current batch of instructions, consumed from `cursor`.
        block: InstBlock,
        cursor: usize,
        data_rng: Xoshiro256pp,
        code_rng: Xoshiro256pp,
        params: TaskParams,
        start: u64,
        executed: u64,
        concurrency: u32,
    },
    Burst {
        task: TaskInstanceId,
        start: u64,
        end: u64,
        instructions: u64,
        concurrency: u32,
    },
    /// A detailed task whose execution was already performed (and
    /// validated) by the parallel detail layer. The worker's heap entry
    /// forwards itself to `finish_tick` — the exact event tick the task's
    /// final chunk would have occupied sequentially — and completes there,
    /// so completion processing order matches the sequential engine.
    Committed {
        report: TaskReport,
        finish_tick: u64,
    },
}

/// One bounded time chunk of detailed execution: refills `block` from
/// `source` as needed and advances `core` until the chunk boundary or the
/// end of the stream. Returns `true` when the task's stream is exhausted.
/// Shared verbatim by the sequential component tick and the speculative
/// parallel executor so both walk identical instruction/chunk sequences.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_detailed_chunk<M: crate::hierarchy::MemPort>(
    core: &mut RobCore,
    worker: u32,
    divider: u64,
    chunk_cycles: u64,
    now: u64,
    source: &mut dyn TraceSource,
    block: &mut InstBlock,
    cursor: &mut usize,
    executed: &mut u64,
    params: TaskParams,
    mem: &mut M,
    data_rng: &mut Xoshiro256pp,
    code_rng: &mut Xoshiro256pp,
) -> bool {
    // Events for this core fire only on multiples of its divider, so the
    // local-cycle conversion is exact.
    let t_local = now / divider;
    let chunk_end = core.dispatch_cycle().max(t_local) + chunk_cycles;
    let mut finished = false;
    // Batched consumption: refill the SoA block from the trace source,
    // then let the core model walk it. The chunk boundary is enforced
    // inside `execute_block`, so timing is bit-identical to
    // per-instruction execution for any block capacity.
    while core.dispatch_cycle() < chunk_end {
        if *cursor == block.len() {
            if source.fill(block) == 0 {
                finished = true;
                break;
            }
            *cursor = 0;
        }
        let n =
            core.execute_block(worker, block, *cursor, chunk_end, params, mem, data_rng, code_rng);
        *cursor += n;
        *executed += n as u64;
    }
    finished
}

/// End time of a finished detailed task on the global timeline: the final
/// commit, floored to one cycle after start, with the noise model's
/// per-task duration factor applied when present.
pub(crate) fn detailed_end(
    core: &RobCore,
    divider: u64,
    start: u64,
    noise: Option<&NoiseModel>,
    task_seed: u64,
) -> u64 {
    let raw_end = (core.last_commit() * divider).max(start + 1);
    match noise {
        Some(n) => {
            let f = n.factor(task_seed);
            let dur = ((raw_end - start) as f64 * f).round() as u64;
            start + dur.max(1)
        }
        None => raw_end,
    }
}

/// One worker core as a schedulable [`Component`].
///
/// Owns the pipeline model, the group membership and the clock divider;
/// everything shared (caches, DRAM, the program, noise) arrives through
/// the [`EventCtx`]. All fields the engine coordinates through
/// (`running`, `local_time`, `next_tick`, `spare_block`) are crate-private
/// plumbing, not part of the component contract.
pub(crate) struct CoreComponent {
    /// Worker id — also the component's [`ComponentId`] and the scheduler
    /// tie-breaker.
    pub(crate) id: u32,
    pub(crate) core: RobCore,
    /// Clock divider of the core's group (1 for homogeneous machines).
    pub(crate) divider: u64,
    /// Index into the machine's `core_groups` (0 for homogeneous).
    pub(crate) group: u32,
    pub(crate) chunk_cycles: u64,
    /// The core's notion of "now" on the global timeline, used when the
    /// next task is assigned.
    pub(crate) local_time: u64,
    pub(crate) running: Option<Running>,
    /// Cleared instruction block recycled across this worker's detailed
    /// tasks.
    pub(crate) spare_block: Option<InstBlock>,
    /// When this core next needs the event scheduler (`None` while idle).
    pub(crate) next_tick: Option<u64>,
}

impl CoreComponent {
    fn new(id: u32, core: RobCore, divider: u64, group: u32, chunk_cycles: u64) -> Self {
        Self {
            id,
            core,
            divider,
            group,
            chunk_cycles,
            local_time: 0,
            running: None,
            spare_block: None,
            next_tick: None,
        }
    }
}

impl Component for CoreComponent {
    fn name(&self) -> &str {
        "core"
    }

    fn next_tick(&self) -> Option<u64> {
        self.next_tick
    }

    fn tick(&mut self, ctx: &mut EventCtx<'_>) {
        let running = self.running.take().expect("scheduled core has a task");
        match running {
            Running::Detailed {
                task,
                mut source,
                mut block,
                mut cursor,
                mut data_rng,
                mut code_rng,
                params,
                start,
                mut executed,
                concurrency,
            } => {
                let finished = run_detailed_chunk(
                    &mut self.core,
                    self.id,
                    self.divider,
                    self.chunk_cycles,
                    ctx.now(),
                    source.as_mut(),
                    &mut block,
                    &mut cursor,
                    &mut executed,
                    params,
                    ctx.mem,
                    &mut data_rng,
                    &mut code_rng,
                );
                if finished {
                    // Park the block for the worker's next detailed task
                    // (refill allocations are per worker, not per task).
                    block.clear();
                    self.spare_block = Some(block);
                    let end = detailed_end(
                        &self.core,
                        self.divider,
                        start,
                        ctx.noise,
                        ctx.program.instance(task).trace().seed(),
                    );
                    let report = TaskReport {
                        task,
                        type_id: ctx.program.instance(task).type_id(),
                        worker: WorkerId(self.id),
                        start,
                        end,
                        instructions: executed,
                        mode: SimMode::Detailed,
                        concurrency,
                    };
                    self.next_tick = None;
                    ctx.complete(report);
                } else {
                    let now_local = self.core.dispatch_cycle();
                    self.local_time = now_local * self.divider;
                    self.running = Some(Running::Detailed {
                        task,
                        source,
                        block,
                        cursor,
                        data_rng,
                        code_rng,
                        params,
                        start,
                        executed,
                        concurrency,
                    });
                    self.next_tick = Some(now_local * self.divider);
                }
            }
            Running::Burst { task, start, end, instructions, concurrency } => {
                debug_assert_eq!(ctx.now(), end);
                let report = TaskReport {
                    task,
                    type_id: ctx.program.instance(task).type_id(),
                    worker: WorkerId(self.id),
                    start,
                    end,
                    instructions,
                    mode: SimMode::Fast,
                    concurrency,
                };
                self.next_tick = None;
                ctx.complete(report);
            }
            Running::Committed { report, finish_tick } => {
                if ctx.now() < finish_tick {
                    // The start-of-task event was already in the heap when
                    // the epoch committed; forward to the completion tick.
                    self.running = Some(Running::Committed { report, finish_tick });
                    self.next_tick = Some(finish_tick);
                } else {
                    debug_assert_eq!(ctx.now(), finish_tick);
                    self.next_tick = None;
                    ctx.complete(report);
                }
            }
        }
    }
}

impl<'p> SimulationBuilder<'p> {
    /// Sets the number of simulated worker threads (default 1, max 64).
    /// For a heterogeneous machine this must equal the sum of its group
    /// sizes.
    pub fn workers(mut self, n: u32) -> Self {
        self.workers = n;
        self
    }

    /// Installs a scheduler (default: [`FifoScheduler`]).
    pub fn scheduler(mut self, s: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(s);
        self
    }

    /// Enables the system-noise model ("native execution" stand-in).
    pub fn noise(mut self, n: NoiseModel) -> Self {
        self.noise = Some(n);
        self
    }

    /// Collects per-task reports into the result (needed by the variation
    /// figures; costs memory proportional to the instance count).
    pub fn collect_reports(mut self, yes: bool) -> Self {
        self.collect_reports = yes;
        self
    }

    /// Enables/disables last-level-cache pre-warming with the program's
    /// data footprint (default: enabled; see the engine docs). Disable to
    /// model a completely cold machine.
    pub fn prewarm(mut self, yes: bool) -> Self {
        self.prewarm = yes;
        self
    }

    /// Installs a trace provider (default: [`ProceduralTraces`], which
    /// regenerates every stream from its
    /// [`TraceSpec`](taskpoint_trace::TraceSpec)). Pass a
    /// [`RecordedTraces`](crate::traces::RecordedTraces) bundle to drive
    /// the simulation from pre-recorded streams.
    pub fn traces(mut self, provider: Box<dyn TraceProvider>) -> Self {
        self.traces = Some(provider);
        self
    }

    /// Attaches a telemetry handle. A recording handle makes the run emit
    /// tick-stamped schedule events, fidelity decisions and end-of-run
    /// counters into it; the default disabled handle monomorphizes the
    /// engine over [`NopSink`], compiling the instrumentation out
    /// entirely (golden results are pinned bit-identical either way).
    pub fn telemetry(mut self, t: Telemetry) -> Self {
        self.telemetry = t;
        self
    }

    /// Sets the number of host threads the detailed-mode executor may use
    /// (default 1 = the plain sequential engine; max 64). Results are
    /// bit-identical at any value: independent ready detailed tasks are
    /// executed speculatively on a scoped thread pool, validated against
    /// the authoritative memory state in deterministic order, and any
    /// interaction aborts the speculation back to the sequential path
    /// (pinned by `tests/parallel_determinism.rs`). Honors nothing from
    /// the environment by itself — callers wanting the
    /// `TASKPOINT_DETAIL_THREADS` override pass
    /// [`detail_threads_from_env`].
    pub fn detail_threads(mut self, n: usize) -> Self {
        self.detail_threads = n;
        self
    }

    /// Sets the instruction floor below which a detailed task is not
    /// offered to the parallel executor (default
    /// `PARALLEL_MIN_TASK_INSTRUCTIONS`). Exposed for tests that need
    /// tiny workloads to engage the parallel path; timing results are
    /// independent of this value.
    pub fn parallel_min_task_instructions(mut self, n: u64) -> Self {
        self.parallel_min_task_instructions = n;
        self
    }

    /// Sets the instruction-block capacity of the detailed pipeline
    /// (default [`BLOCK_CAPACITY`]). Simulated timing is independent of
    /// this value — it only trades refill overhead against block
    /// footprint. Capacity 1 degenerates to per-instruction execution
    /// (useful for equivalence testing).
    ///
    /// # Panics
    ///
    /// Panics (at [`build`](SimulationBuilder::build)) if `capacity` is 0.
    pub fn block_capacity(mut self, capacity: usize) -> Self {
        self.block_capacity = capacity;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the worker count is 0 or exceeds 64, the block capacity
    /// is 0, the machine configuration is invalid, or a heterogeneous
    /// machine's group sizes do not sum to the worker count.
    pub fn build(self) -> Simulation<'p> {
        assert!(self.workers >= 1 && self.workers <= 64, "1..=64 workers");
        assert!(self.block_capacity >= 1, "instruction block needs capacity >= 1");
        assert!(self.detail_threads >= 1 && self.detail_threads <= 64, "1..=64 detail threads");
        self.machine.validate();
        if let Some(total) = self.machine.total_group_cores() {
            assert_eq!(
                total, self.workers,
                "core groups define {total} cores but the simulation has {} workers",
                self.workers
            );
        }
        Simulation {
            program: self.program,
            machine: self.machine,
            workers: self.workers,
            scheduler: self.scheduler.unwrap_or_else(|| Box::new(FifoScheduler::new())),
            noise: self.noise,
            collect_reports: self.collect_reports,
            prewarm: self.prewarm,
            traces: self.traces.unwrap_or_else(|| Box::new(ProceduralTraces)),
            block_capacity: self.block_capacity,
            telemetry: self.telemetry,
            detail_threads: self.detail_threads,
            parallel_min_task_instructions: self.parallel_min_task_instructions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::{DetailedOnly, FixedIpc};
    use taskpoint_runtime::RegionAccess;
    use taskpoint_trace::{MemRegion, TraceSpec};

    /// `n` independent tasks of `instrs` instructions each.
    fn independent_program(n: u64, instrs: u64) -> Program {
        let mut b = Program::builder("indep");
        let ty = b.add_type("work");
        for i in 0..n {
            b.add_task(ty, TraceSpec::synthetic(i, instrs), vec![]);
        }
        b.build()
    }

    /// A serial chain: task i writes region i, reads region i-1.
    fn chain_program(n: u64, instrs: u64) -> Program {
        let mut b = Program::builder("chain");
        let ty = b.add_type("link");
        for i in 0..n {
            let mut acc = vec![RegionAccess::output(MemRegion::new(0x100_0000 + i * 64, 64))];
            if i > 0 {
                acc.push(RegionAccess::input(MemRegion::new(0x100_0000 + (i - 1) * 64, 64)));
            }
            b.add_task(ty, TraceSpec::synthetic(i, instrs), acc);
        }
        b.build()
    }

    #[test]
    fn detailed_run_executes_every_task() {
        let p = independent_program(20, 500);
        let sim = Simulation::builder(&p, MachineConfig::tiny_test()).workers(4).build();
        let r = sim.run(&mut DetailedOnly);
        assert_eq!(r.detailed_tasks, 20);
        assert_eq!(r.fast_tasks, 0);
        assert_eq!(r.detailed_instructions, 20 * 500);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn fast_run_matches_burst_arithmetic() {
        let p = independent_program(8, 1000);
        let sim = Simulation::builder(&p, MachineConfig::tiny_test()).workers(8).build();
        let r = sim.run(&mut FixedIpc(2.0));
        // All 8 run concurrently from t=0, each 1000/2 = 500 cycles.
        assert_eq!(r.total_cycles, 500);
        assert_eq!(r.fast_tasks, 8);
        assert_eq!(r.detail_fraction(), 0.0);
    }

    #[test]
    fn serial_chain_cannot_overlap() {
        let p = chain_program(10, 100);
        let sim = Simulation::builder(&p, MachineConfig::tiny_test()).workers(4).build();
        let r = sim.run(&mut FixedIpc(1.0));
        // Each task takes exactly 100 cycles and they serialize: >= 1000.
        assert_eq!(r.total_cycles, 1000);
    }

    #[test]
    fn more_workers_do_not_slow_down_independent_work() {
        let p = independent_program(32, 400);
        let one = Simulation::builder(&p, MachineConfig::tiny_test()).workers(1).build();
        let eight = Simulation::builder(&p, MachineConfig::tiny_test()).workers(8).build();
        let t1 = one.run(&mut FixedIpc(1.0)).total_cycles;
        let t8 = eight.run(&mut FixedIpc(1.0)).total_cycles;
        assert_eq!(t1, 32 * 400);
        assert_eq!(t8, 4 * 400, "perfect speedup for equal burst tasks");
    }

    #[test]
    fn determinism_across_runs() {
        let p = independent_program(16, 800);
        let run = || {
            Simulation::builder(&p, MachineConfig::tiny_test())
                .workers(4)
                .collect_reports(true)
                .build()
                .run(&mut DetailedOnly)
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.reports, b.reports);
    }

    #[test]
    fn schedule_respects_dependences() {
        let p = chain_program(12, 200);
        let sim = Simulation::builder(&p, MachineConfig::tiny_test())
            .workers(4)
            .collect_reports(true)
            .build();
        let r = sim.run(&mut DetailedOnly);
        // Completion order must be the chain order and no task may start
        // before its predecessor ends.
        let mut by_task: Vec<&TaskReport> = r.reports.iter().collect();
        by_task.sort_by_key(|t| t.task);
        for pair in by_task.windows(2) {
            assert!(
                pair[1].start >= pair[0].end,
                "task {} started at {} before {} ended at {}",
                pair[1].task,
                pair[1].start,
                pair[0].task,
                pair[0].end
            );
        }
    }

    #[test]
    fn reports_collected_only_on_request() {
        let p = independent_program(4, 100);
        let without =
            Simulation::builder(&p, MachineConfig::tiny_test()).build().run(&mut DetailedOnly);
        assert!(without.reports.is_empty());
        let with = Simulation::builder(&p, MachineConfig::tiny_test())
            .collect_reports(true)
            .build()
            .run(&mut DetailedOnly);
        assert_eq!(with.reports.len(), 4);
    }

    #[test]
    fn concurrency_is_tracked() {
        let p = independent_program(8, 300);
        let r = Simulation::builder(&p, MachineConfig::tiny_test())
            .workers(4)
            .collect_reports(true)
            .build()
            .run(&mut FixedIpc(1.0));
        // First four tasks start together: concurrency ramps 1..=4.
        let mut first_wave: Vec<u32> =
            r.reports.iter().filter(|t| t.start == 0).map(|t| t.concurrency).collect();
        first_wave.sort_unstable();
        assert_eq!(first_wave, vec![1, 2, 3, 4]);
    }

    #[test]
    fn noise_changes_durations_deterministically() {
        let p = independent_program(10, 500);
        let noisy = |seed| {
            Simulation::builder(&p, MachineConfig::tiny_test())
                .workers(2)
                .noise(NoiseModel::native_execution(seed))
                .collect_reports(true)
                .build()
                .run(&mut DetailedOnly)
        };
        let clean = Simulation::builder(&p, MachineConfig::tiny_test())
            .workers(2)
            .collect_reports(true)
            .build()
            .run(&mut DetailedOnly);
        let a = noisy(1);
        let b = noisy(1);
        assert_eq!(a.total_cycles, b.total_cycles, "noise is seeded");
        let durations_differ =
            a.reports.iter().zip(clean.reports.iter()).any(|(x, y)| x.cycles() != y.cycles());
        assert!(durations_differ, "noise must perturb at least one task");
    }

    #[test]
    fn mixed_mode_controller_splits_work() {
        struct EveryOther(bool);
        impl ModeController for EveryOther {
            fn mode_for_task(&mut self, _s: &TaskStart) -> ExecMode {
                self.0 = !self.0;
                if self.0 {
                    ExecMode::Detailed
                } else {
                    ExecMode::Fast { ipc: 1.0 }
                }
            }
        }
        let p = independent_program(10, 200);
        let r = Simulation::builder(&p, MachineConfig::tiny_test())
            .workers(2)
            .build()
            .run(&mut EveryOther(false));
        assert_eq!(r.detailed_tasks, 5);
        assert_eq!(r.fast_tasks, 5);
        assert!((r.detail_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "1..=64 workers")]
    fn zero_workers_rejected() {
        let p = independent_program(1, 1);
        let _ = Simulation::builder(&p, MachineConfig::tiny_test()).workers(0).build();
    }

    #[test]
    #[should_panic(expected = "core groups define 4 cores")]
    fn group_worker_mismatch_rejected() {
        let p = independent_program(1, 1);
        let _ = Simulation::builder(&p, MachineConfig::big_little(2, 2)).workers(3).build();
    }

    #[test]
    fn homogeneous_runs_report_no_groups() {
        let p = independent_program(4, 200);
        let r = Simulation::builder(&p, MachineConfig::tiny_test())
            .workers(2)
            .build()
            .run(&mut DetailedOnly);
        assert!(r.groups.is_empty());
    }

    #[test]
    fn heterogeneous_groups_split_the_work() {
        let p = independent_program(32, 600);
        let r = Simulation::builder(&p, MachineConfig::big_little(2, 2))
            .workers(4)
            .collect_reports(true)
            .build()
            .run(&mut DetailedOnly);
        assert_eq!(r.groups.len(), 2);
        let (big, little) = (&r.groups[0], &r.groups[1]);
        assert_eq!(big.name, "big");
        assert_eq!(little.name, "little");
        assert_eq!(big.detailed_tasks + little.detailed_tasks, 32);
        assert!(big.detailed_tasks > 0 && little.detailed_tasks > 0);
        // Little cores: half clock, narrower pipeline — on identical
        // independent tasks they must be measurably slower per task.
        let avg = |g: &GroupStats| g.busy_ticks as f64 / g.detailed_tasks as f64;
        assert!(avg(little) > 1.5 * avg(big), "little avg {} vs big avg {}", avg(little), avg(big));
        // Group accounting covers exactly the reported tasks.
        let ticks: u64 = r.reports.iter().map(|t| t.cycles()).sum();
        assert_eq!(big.busy_ticks + little.busy_ticks, ticks);
    }

    #[test]
    fn heterogeneous_runs_are_deterministic() {
        let p = independent_program(24, 500);
        let run = || {
            Simulation::builder(&p, MachineConfig::big_little(1, 3))
                .workers(4)
                .collect_reports(true)
                .build()
                .run(&mut DetailedOnly)
        };
        let a = run();
        let b = run();
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.reports, b.reports);
        assert_eq!(a.groups, b.groups);
    }

    #[test]
    fn divider_only_group_slows_the_machine_down() {
        // Same pipeline everywhere; the only difference is the clock.
        let p = independent_program(16, 800);
        let base = MachineConfig::tiny_test();
        let mut divided = base.clone();
        divided.core_groups = vec![crate::config::CoreGroupConfig {
            name: "half".to_string(),
            cores: 2,
            clock_divider: 2,
            core: None,
        }];
        divided.name = "tiny-half-clock".to_string();
        let fast = Simulation::builder(&p, base).workers(2).build().run(&mut DetailedOnly);
        let slow = Simulation::builder(&p, divided).workers(2).build().run(&mut DetailedOnly);
        assert!(
            slow.total_cycles > fast.total_cycles,
            "half clock cannot be faster: {} vs {}",
            slow.total_cycles,
            fast.total_cycles
        );
        assert_eq!(slow.detailed_instructions, fast.detailed_instructions);
    }

    #[test]
    fn burst_mode_respects_the_clock_divider() {
        let p = independent_program(4, 1000);
        let mut m = MachineConfig::tiny_test();
        m.core_groups = vec![crate::config::CoreGroupConfig {
            name: "half".to_string(),
            cores: 4,
            clock_divider: 2,
            core: None,
        }];
        let r = Simulation::builder(&p, m).workers(4).build().run(&mut FixedIpc(2.0));
        // 1000 instr at IPC 2 = 500 local cycles = 1000 global ticks.
        assert_eq!(r.total_cycles, 1000);
        assert_eq!(r.groups[0].fast_tasks, 4);
    }
}
