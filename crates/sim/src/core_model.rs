//! The detailed core timing model.
//!
//! TaskSim's detailed mode is based on the *Reorder-Buffer Occupancy
//! Analysis* model of Lee, Evans and Cho ("Accurately approximating
//! superscalar processor performance from traces", ISPASS 2009), which the
//! paper cites as the core model of TaskSim. The model approximates an
//! out-of-order superscalar pipeline from a trace by enforcing, per
//! instruction, the following constraints:
//!
//! * **issue width** — at most `issue_width` instructions dispatch per cycle;
//! * **ROB occupancy** — instruction *i* cannot dispatch before instruction
//!   *i − rob_size* has committed (the window is full otherwise);
//! * **MSHRs** — at most `mshrs` cache misses may be outstanding;
//! * **serialization** — data dependences (probabilistic, from the trace
//!   spec), branch mispredictions and fences delay subsequent dispatch;
//! * **in-order commit** — at most `commit_width` instructions commit per
//!   cycle, in program order, after completing execution.
//!
//! Loads get their completion latency from the
//! [`MemorySystem`](crate::hierarchy::MemorySystem); everything
//! else uses the configured latency table. The model keeps fractional-cycle
//! bookkeeping with integer *ticks* (`1 tick = 1/width` cycles) so it is
//! exact and fast.

use crate::config::CoreConfig;
use crate::hierarchy::MemPort;
use taskpoint_stats::rng::Xoshiro256pp;
use taskpoint_trace::{InstBlock, InstKind, Instruction};

// Instruction classes for dispatching off the SoA kind column. A table
// lookup plus a dense 5-way match replaces three separate data-dependent
// matches (MSHR guard, execute, serialization) per instruction.
const CLASS_SIMPLE: u8 = 0;
const CLASS_LOAD: u8 = 1;
const CLASS_STORE: u8 = 2;
const CLASS_ATOMIC: u8 = 3;
const CLASS_BRANCH: u8 = 4;
const CLASS_FENCE: u8 = 5;

const fn kind_classes() -> [u8; 11] {
    let mut t = [CLASS_SIMPLE; 11];
    t[InstKind::Load as usize] = CLASS_LOAD;
    t[InstKind::Store as usize] = CLASS_STORE;
    t[InstKind::Atomic as usize] = CLASS_ATOMIC;
    t[InstKind::Branch as usize] = CLASS_BRANCH;
    t[InstKind::Fence as usize] = CLASS_FENCE;
    t
}

const KIND_CLASS: [u8; 11] = kind_classes();

// Stall taxonomy indices for the per-core cycle accounting. Counters are
// tick-denominated (1 tick = 1/issue_width cycles) so attribution inside
// `step` is plain integer adds; conversion to cycles happens once per task
// at readout.
pub(crate) const STALL_ROB: usize = 0;
pub(crate) const STALL_DEP: usize = 1;
pub(crate) const STALL_L1: usize = 2;
pub(crate) const STALL_L2: usize = 3;
pub(crate) const STALL_DRAM: usize = 4;
pub(crate) const STALL_MSHR: usize = 5;
pub(crate) const STALL_CONTENTION: usize = 6;
pub(crate) const NUM_STALLS: usize = 7;

// Per-ROB-slot classes: which part of the machine the instruction occupying
// a slot was waiting on. When the ROB window binds dispatch, the stall is
// charged to the *blocking* slot's class — a window full behind a DRAM miss
// is a DRAM stall, not a generic ROB stall.
const SLOT_COMPUTE: u8 = 0;
const SLOT_L1: u8 = 1;
const SLOT_L2: u8 = 2;
const SLOT_DRAM: u8 = 3;
const SLOT_CONTENTION: u8 = 4;

const SLOT_STALL: [usize; 5] = [STALL_ROB, STALL_L1, STALL_L2, STALL_DRAM, STALL_CONTENTION];

/// Workload-dependent execution parameters of the current task, taken from
/// its trace spec.
#[derive(Debug, Clone, Copy)]
pub struct TaskParams {
    /// Probability that a branch mispredicts.
    pub branch_mispredict_rate: f64,
    /// Probability that the next instruction depends on this one.
    pub dependency_rate: f64,
}

/// Per-core pipeline state of the ROB occupancy analysis model.
#[derive(Debug, Clone)]
pub struct RobCore {
    // -- static configuration --
    rob_size: usize,
    issue_width: u64,
    commit_width: u64,
    mispredict_penalty: u64,
    mshrs: usize,
    /// Completion latency per non-memory [`InstKind`] discriminant (memory
    /// kinds hold their non-memory share: store latency, atomic extra).
    /// Indexed lookups keep the hot path free of an 11-way match whose
    /// targets are data-dependent (and therefore host-unpredictable).
    lat: [u64; 11],
    lat_store: u64,
    lat_atomic_extra: u64,
    // -- dynamic state --
    /// Commit cycle of instruction `i - rob_size`, indexed `i % rob_size`.
    commit_ring: Vec<u64>,
    /// Slot class (`SLOT_*`) of the instruction in each `commit_ring` slot,
    /// read when that slot blocks dispatch to attribute the ROB stall.
    class_ring: Vec<u8>,
    ring_pos: usize,
    /// Stalled dispatch ticks per `STALL_*` category since the last
    /// [`RobCore::reset`]. Always on: maintained with plain adds on the
    /// paths that already jump the dispatch clock, zero allocation.
    stall_ticks: [u64; NUM_STALLS],
    /// Dispatch clock in ticks of `1/issue_width` cycles.
    dispatch_ticks: u64,
    /// Commit clock in ticks of `1/commit_width` cycles.
    commit_ticks: u64,
    /// Earliest cycle the next instruction may dispatch (dependences,
    /// mispredictions, fences).
    serial_until: u64,
    /// Completion cycles of outstanding cache misses.
    outstanding: Vec<u64>,
    last_commit: u64,
    /// Clock divider relative to the machine's base clock (see
    /// [`CoreGroupConfig`](crate::config::CoreGroupConfig)). The pipeline
    /// runs entirely in *core-local* cycles; the divider is applied only
    /// at the memory boundary — access timestamps are converted to global
    /// base-clock ticks (`cycle · divider`) and returned latencies back to
    /// local cycles (`ceil(latency / divider)`). Divider 1 (every
    /// homogeneous machine) makes both conversions exact identities.
    clock_divider: u64,
}

impl RobCore {
    /// Creates a core with drained pipeline state at cycle 0.
    pub fn new(cfg: &CoreConfig) -> Self {
        let l = &cfg.latencies;
        let mut lat = [0u64; 11];
        lat[InstKind::IntAlu as usize] = l.int_alu as u64;
        lat[InstKind::IntMul as usize] = l.int_mul as u64;
        lat[InstKind::IntDiv as usize] = l.int_div as u64;
        lat[InstKind::FpAlu as usize] = l.fp_alu as u64;
        lat[InstKind::FpMul as usize] = l.fp_mul as u64;
        lat[InstKind::FpDiv as usize] = l.fp_div as u64;
        lat[InstKind::Branch as usize] = l.branch as u64;
        lat[InstKind::Fence as usize] = l.fence as u64;
        Self {
            rob_size: cfg.rob_size as usize,
            issue_width: cfg.issue_width as u64,
            commit_width: cfg.commit_width as u64,
            mispredict_penalty: cfg.mispredict_penalty as u64,
            mshrs: cfg.mshrs as usize,
            lat,
            lat_store: l.store as u64,
            lat_atomic_extra: l.atomic_extra as u64,
            commit_ring: vec![0; cfg.rob_size as usize],
            class_ring: vec![SLOT_COMPUTE; cfg.rob_size as usize],
            ring_pos: 0,
            stall_ticks: [0; NUM_STALLS],
            dispatch_ticks: 0,
            commit_ticks: 0,
            serial_until: 0,
            outstanding: Vec::with_capacity(cfg.mshrs as usize),
            last_commit: 0,
            clock_divider: 1,
        }
    }

    /// Sets the clock divider (see the field docs). Must be at least 1.
    pub fn set_clock_divider(&mut self, divider: u64) {
        assert!(divider >= 1, "clock divider must be at least 1");
        self.clock_divider = divider;
    }

    /// Converts a core-local cycle to the global base-clock tick it occurs
    /// at. The `== 1` fast path keeps the homogeneous hot loop free of a
    /// multiply per memory access.
    #[inline]
    fn to_global(&self, cycle: u64) -> u64 {
        if self.clock_divider == 1 {
            cycle
        } else {
            cycle * self.clock_divider
        }
    }

    /// Converts a latency in global base-clock ticks to the core-local
    /// cycles it spans (conservatively rounded up: the data is usable at
    /// the first local cycle at or after arrival).
    #[inline]
    fn to_local_latency(&self, ticks: u64) -> u64 {
        if self.clock_divider == 1 {
            ticks
        } else {
            ticks.div_ceil(self.clock_divider)
        }
    }

    /// Drains the pipeline and restarts the clocks at `start` — called at
    /// every task boundary (tasks never share pipeline state; caches, which
    /// live in the [`MemorySystem`](crate::hierarchy::MemorySystem), do
    /// persist across tasks).
    pub fn reset(&mut self, start: u64) {
        self.commit_ring.fill(start);
        self.class_ring.fill(SLOT_COMPUTE);
        self.stall_ticks = [0; NUM_STALLS];
        self.ring_pos = 0;
        self.dispatch_ticks = start * self.issue_width;
        self.commit_ticks = start * self.commit_width;
        self.serial_until = start;
        self.outstanding.clear();
        self.last_commit = start;
    }

    /// Divides a tick count by a pipeline width. Widths are small
    /// per-machine constants, so the constant arms let the compiler
    /// strength-reduce the division (a real `div` costs ~20 cycles and
    /// this runs two to three times per simulated instruction).
    #[inline]
    fn div_width(ticks: u64, width: u64) -> u64 {
        match width {
            1 => ticks,
            2 => ticks >> 1,
            3 => ticks / 3,
            4 => ticks >> 2,
            6 => ticks / 6,
            8 => ticks >> 3,
            w => ticks / w,
        }
    }

    /// The cycle the next instruction would dispatch at (the core's local
    /// clock for chunked execution).
    pub fn dispatch_cycle(&self) -> u64 {
        Self::div_width(self.dispatch_ticks, self.issue_width)
    }

    /// Commit cycle of the most recently executed instruction.
    pub fn last_commit(&self) -> u64 {
        self.last_commit
    }

    /// Stalled dispatch time per `STALL_*` category since the last
    /// [`RobCore::reset`], converted to **global base-clock ticks**
    /// (tick-exact accounting divided by the issue width once, then scaled
    /// by the clock divider — the same units as task start/end times).
    pub(crate) fn stall_global_ticks(&self) -> [u64; NUM_STALLS] {
        let mut out = [0u64; NUM_STALLS];
        for (o, &t) in out.iter_mut().zip(&self.stall_ticks) {
            *o = Self::div_width(t, self.issue_width) * self.clock_divider;
        }
        out
    }

    /// Executes one trace instruction on core `core_id`; returns its commit
    /// cycle. `rng` must be the task instance's private stream so replays
    /// are identical in every simulation mode.
    pub fn execute<M: MemPort>(
        &mut self,
        core_id: u32,
        inst: &Instruction,
        params: TaskParams,
        mem: &mut M,
        data_rng: &mut Xoshiro256pp,
        code_rng: &mut Xoshiro256pp,
    ) -> u64 {
        self.step(core_id, inst.kind, inst.addr, params, mem, data_rng, code_rng).0
    }

    /// Executes instructions `from..` of a filled [`InstBlock`] until the
    /// dispatch clock reaches `chunk_end` or the block is exhausted;
    /// returns how many instructions were executed.
    ///
    /// The chunk check happens *before* each instruction (an instruction
    /// may complete past `chunk_end` but never starts past it), which is
    /// exactly the boundary semantics of per-instruction execution — block
    /// size therefore never affects simulated timing, only host speed. At
    /// least one instruction executes whenever the dispatch clock is below
    /// `chunk_end` at entry and the slice is non-empty, so callers always
    /// make progress.
    ///
    /// The boundary is enforced per *run*, not per instruction: dispatch
    /// consumes at least one tick per instruction, so
    /// `end_ticks - dispatch_ticks` instructions are guaranteed to stay
    /// inside the chunk unless a stall (ROB window, serialization, MSHRs)
    /// jumps the dispatch clock — `RobCore::step` reports exactly that,
    /// and the run length is re-derived only then. The executed set is
    /// identical to a per-instruction check.
    // Mirrors `execute`'s parameter list plus the block window; bundling
    // them into a context struct would just move the argument count into
    // every caller.
    #[allow(clippy::too_many_arguments)]
    pub fn execute_block<M: MemPort>(
        &mut self,
        core_id: u32,
        block: &InstBlock,
        from: usize,
        chunk_end: u64,
        params: TaskParams,
        mem: &mut M,
        data_rng: &mut Xoshiro256pp,
        code_rng: &mut Xoshiro256pp,
    ) -> usize {
        // dispatch_cycle() < chunk_end  ⟺  dispatch_ticks < chunk_end·width
        // — hoist the multiplication out of the boundary check.
        let end_ticks = chunk_end.saturating_mul(self.issue_width);
        let kinds = &block.kinds()[from..];
        let addrs = &block.addrs()[from..];
        let len = kinds.len();
        let mut executed = 0usize;
        while executed < len && self.dispatch_ticks < end_ticks {
            let budget = (end_ticks - self.dispatch_ticks).min((len - executed) as u64) as usize;
            let stop = executed + budget;
            let mut i = executed;
            while i < stop {
                let (_, jumped) =
                    self.step(core_id, kinds[i], addrs[i], params, mem, data_rng, code_rng);
                i += 1;
                if jumped {
                    break;
                }
            }
            executed = i;
        }
        executed
    }

    /// The per-instruction ROB-occupancy-analysis state transition shared
    /// by [`RobCore::execute`] and [`RobCore::execute_block`]. Returns the
    /// commit cycle and whether dispatch *jumped* (a stall moved the
    /// dispatch clock by more than its own issue slot) — the signal the
    /// block walk uses to re-derive its chunk-boundary run length.
    #[allow(clippy::too_many_arguments)] // see execute_block
    fn step<M: MemPort>(
        &mut self,
        core_id: u32,
        kind: InstKind,
        addr: u64,
        params: TaskParams,
        mem: &mut M,
        data_rng: &mut Xoshiro256pp,
        code_rng: &mut Xoshiro256pp,
    ) -> (u64, bool) {
        // Dispatch constraints: issue width (tick += 1 below), ROB window,
        // serialization. When a constraint jumps the clock, the jump is
        // attributed: serialization to dependency-wait, the ROB window to
        // the class of the blocking slot.
        let entry_ticks = self.dispatch_ticks;
        let rob_constraint = self.commit_ring[self.ring_pos];
        let rob_ticks = rob_constraint * self.issue_width;
        let serial_ticks = self.serial_until * self.issue_width;
        let mut ticks = entry_ticks;
        if rob_ticks > ticks || serial_ticks > ticks {
            let bound = rob_ticks.max(serial_ticks);
            let cat = if serial_ticks >= rob_ticks {
                STALL_DEP
            } else {
                SLOT_STALL[self.class_ring[self.ring_pos] as usize]
            };
            self.stall_ticks[cat] += bound - ticks;
            ticks = bound;
        }
        let mut d = Self::div_width(ticks, self.issue_width);
        let mut slot_class = SLOT_COMPUTE;

        // One classified dispatch off the kind column instead of three
        // separate matches (MSHR guard, execute, serialization): the class
        // fuses the memory-access decision with the serialization draw,
        // whose RNG-stream discipline (data stream for branches, code
        // stream for everything except fences) is preserved exactly.
        let complete = match KIND_CLASS[kind as usize] {
            CLASS_LOAD | CLASS_ATOMIC => {
                // MSHR constraint for loads/atomics that will touch memory.
                // Completed misses are cleaned out lazily: entries only
                // matter once the list *looks* full, and the `c > d` filter
                // removes a stale entry whenever it would have removed it
                // earlier (d is monotone), so the cleaned set at decision
                // time — and therefore the stall — is identical to eager
                // per-load cleaning.
                if self.outstanding.len() >= self.mshrs {
                    self.outstanding.retain(|&c| c > d);
                    if self.outstanding.len() >= self.mshrs {
                        let earliest = *self.outstanding.iter().min().expect("non-empty");
                        d = d.max(earliest);
                        let raised = d * self.issue_width;
                        if raised > ticks {
                            self.stall_ticks[STALL_MSHR] += raised - ticks;
                            ticks = raised;
                        }
                        self.outstanding.retain(|&c| c > d);
                    }
                }
                // Memory accesses cross the clock-domain boundary: the
                // hierarchy lives on the global base clock, the pipeline on
                // the core-local clock.
                let write = kind == InstKind::Atomic;
                let r = mem.access(core_id, addr, write, self.to_global(d));
                let lat = self.to_local_latency(r.latency);
                slot_class = if r.queue_delay > 0 {
                    SLOT_CONTENTION
                } else if r.dram {
                    SLOT_DRAM
                } else if r.l1_miss {
                    SLOT_L2
                } else {
                    SLOT_L1
                };
                if r.l1_miss {
                    self.outstanding.push(d + lat);
                }
                let complete = d + lat + if write { self.lat_atomic_extra } else { 0 };
                if code_rng.next_f64() < params.dependency_rate {
                    self.serial_until = self.serial_until.max(complete);
                }
                complete
            }
            CLASS_STORE => {
                // Write-allocate + coherence happen now; the store itself
                // retires through the write buffer at store latency.
                let _ = mem.access(core_id, addr, true, self.to_global(d));
                let complete = d + self.lat_store;
                if code_rng.next_f64() < params.dependency_rate {
                    self.serial_until = self.serial_until.max(complete);
                }
                complete
            }
            CLASS_BRANCH => {
                let complete = d + self.lat[kind as usize];
                // Branch outcomes are data-dependent: per-instance stream.
                if data_rng.next_f64() < params.branch_mispredict_rate {
                    self.serial_until = self.serial_until.max(complete + self.mispredict_penalty);
                }
                complete
            }
            CLASS_FENCE => {
                let complete = d + self.lat[kind as usize];
                self.serial_until = self.serial_until.max(complete);
                complete
            }
            _ => {
                let complete = d + self.lat[kind as usize];
                // Register dependences are code structure: the code stream,
                // shared by all instances of a task type.
                if code_rng.next_f64() < params.dependency_rate {
                    self.serial_until = self.serial_until.max(complete);
                }
                complete
            }
        };

        // Consume one dispatch slot.
        self.dispatch_ticks = ticks + 1;

        // In-order commit, bounded by commit width.
        self.commit_ticks = (self.commit_ticks + 1).max(complete * self.commit_width);
        let commit_cycle = Self::div_width(self.commit_ticks, self.commit_width);

        // The slot we read as the i-ROB constraint is overwritten with this
        // instruction's commit time (and slot class) for instruction i+ROB.
        self.commit_ring[self.ring_pos] = commit_cycle;
        self.class_ring[self.ring_pos] = slot_class;
        // Conditional wrap instead of `% rob_size`: the ROB size is not a
        // power of two (168 on the high-performance machine), so the
        // modulo would be a hardware divide on the hot path.
        self.ring_pos += 1;
        if self.ring_pos == self.rob_size {
            self.ring_pos = 0;
        }
        self.last_commit = commit_cycle;
        (commit_cycle, ticks != entry_ticks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;
    use crate::hierarchy::MemorySystem;
    use taskpoint_stats::rng::Xoshiro256pp;

    const NO_EVENTS: TaskParams = TaskParams { branch_mispredict_rate: 0.0, dependency_rate: 0.0 };

    fn setup(cores: u32) -> (RobCore, MemorySystem) {
        let m = MachineConfig::high_performance();
        (RobCore::new(&m.core), MemorySystem::new(&m, cores))
    }

    fn run_kinds(kinds: &[InstKind], n: usize) -> u64 {
        let (mut core, mut mem) = setup(1);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut crng = Xoshiro256pp::seed_from_u64(100);
        core.reset(0);
        let mut last = 0;
        for i in 0..n {
            let k = kinds[i % kinds.len()];
            let inst = if k.is_memory() {
                Instruction::memory(k, (i as u64 % 64) * 64, 8)
            } else {
                Instruction::compute(k)
            };
            last = core.execute(0, &inst, NO_EVENTS, &mut mem, &mut rng, &mut crng);
        }
        last
    }

    #[test]
    fn independent_alu_stream_reaches_issue_width() {
        // 4-wide high-perf core, no dependences: IPC -> 4.
        let n = 10_000;
        let cycles = run_kinds(&[InstKind::IntAlu], n);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc > 3.8 && ipc <= 4.0, "ipc {ipc}");
    }

    #[test]
    fn fully_dependent_stream_serializes() {
        let (mut core, mut mem) = setup(1);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut crng = Xoshiro256pp::seed_from_u64(102);
        core.reset(0);
        let params = TaskParams { branch_mispredict_rate: 0.0, dependency_rate: 1.0 };
        let n = 1000u64;
        let mut last = 0;
        for _ in 0..n {
            last = core.execute(
                0,
                &Instruction::compute(InstKind::IntAlu),
                params,
                &mut mem,
                &mut rng,
                &mut crng,
            );
        }
        // Every instruction waits for the previous one: ~1 cycle each.
        let ipc = n as f64 / last as f64;
        assert!(ipc < 1.1, "serial chain ipc {ipc}");
    }

    #[test]
    fn long_latency_divide_throttles_commit() {
        let fast = run_kinds(&[InstKind::IntAlu], 4000);
        let slow = run_kinds(&[InstKind::IntDiv], 4000);
        assert!(slow >= fast, "divides cannot be faster ({slow} vs {fast})");
    }

    #[test]
    fn cold_misses_stall_the_window() {
        let (mut core, mut mem) = setup(1);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut crng = Xoshiro256pp::seed_from_u64(103);
        core.reset(0);
        // Every load touches a new line far apart -> all DRAM misses.
        let n = 2000u64;
        let mut last = 0;
        for i in 0..n {
            let inst = Instruction::memory(InstKind::Load, i * 4096, 8);
            last = core.execute(0, &inst, NO_EVENTS, &mut mem, &mut rng, &mut crng);
        }
        let ipc = n as f64 / last as f64;
        // DRAM latency 180, MSHRs 10 -> IPC is miss-bound well below 1.
        assert!(ipc < 0.2, "miss-bound ipc {ipc}");
    }

    #[test]
    fn mshrs_bound_memory_level_parallelism() {
        // With more MSHRs the same miss stream must finish no later.
        let m = MachineConfig::high_performance();
        let mut few_cfg = m.core.clone();
        few_cfg.mshrs = 1;
        let run = |cfg: &crate::config::CoreConfig| {
            let mut core = RobCore::new(cfg);
            let mut mem = MemorySystem::new(&m, 1);
            let mut rng = Xoshiro256pp::seed_from_u64(4);
            let mut crng = Xoshiro256pp::seed_from_u64(104);
            core.reset(0);
            let mut last = 0;
            for i in 0..500u64 {
                let inst = Instruction::memory(InstKind::Load, i * 4096, 8);
                last = core.execute(0, &inst, NO_EVENTS, &mut mem, &mut rng, &mut crng);
            }
            last
        };
        let wide = run(&m.core);
        let narrow = run(&few_cfg);
        assert!(narrow > wide * 3, "1 MSHR must be much slower than 10: {narrow} vs {wide}");
    }

    #[test]
    fn mispredictions_add_penalty() {
        let (mut core, mut mem) = setup(1);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut crng = Xoshiro256pp::seed_from_u64(105);
        core.reset(0);
        let clean = TaskParams { branch_mispredict_rate: 0.0, dependency_rate: 0.0 };
        let dirty = TaskParams { branch_mispredict_rate: 0.5, dependency_rate: 0.0 };
        let mut run = |p: TaskParams| {
            core.reset(0);
            let mut last = 0;
            for _ in 0..2000 {
                last = core.execute(
                    0,
                    &Instruction::compute(InstKind::Branch),
                    p,
                    &mut mem,
                    &mut rng,
                    &mut crng,
                );
            }
            last
        };
        let fast = run(clean);
        let slow = run(dirty);
        assert!(slow > fast * 2, "mispredicts must hurt: {slow} vs {fast}");
    }

    #[test]
    fn reset_restarts_clocks_at_given_cycle() {
        let (mut core, mut mem) = setup(1);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut crng = Xoshiro256pp::seed_from_u64(106);
        core.reset(1_000_000);
        assert_eq!(core.dispatch_cycle(), 1_000_000);
        let c = core.execute(
            0,
            &Instruction::compute(InstKind::IntAlu),
            NO_EVENTS,
            &mut mem,
            &mut rng,
            &mut crng,
        );
        assert!(c >= 1_000_000);
        assert_eq!(core.last_commit(), c);
    }

    #[test]
    fn rob_limits_runahead_past_a_miss() {
        // A DRAM miss followed by cheap ALU work: with a small ROB the ALU
        // stream cannot run ahead past the window, so total time is longer.
        let m = MachineConfig::high_performance();
        let mut small = m.core.clone();
        small.rob_size = 8;
        let run = |cfg: &crate::config::CoreConfig| {
            let mut core = RobCore::new(cfg);
            let mut mem = MemorySystem::new(&m, 1);
            let mut rng = Xoshiro256pp::seed_from_u64(7);
            let mut crng = Xoshiro256pp::seed_from_u64(107);
            core.reset(0);
            let mut last = 0;
            for i in 0..3000u64 {
                let inst = if i % 300 == 0 {
                    Instruction::memory(InstKind::Load, i * 8192, 8)
                } else {
                    Instruction::compute(InstKind::IntAlu)
                };
                last = core.execute(0, &inst, NO_EVENTS, &mut mem, &mut rng, &mut crng);
            }
            last
        };
        let big_rob = run(&m.core);
        let small_rob = run(&small);
        assert!(small_rob >= big_rob, "smaller ROB cannot be faster: {small_rob} vs {big_rob}");
    }

    #[test]
    fn clock_divider_rescales_memory_latency() {
        // A miss-bound load stream on a divided clock: every DRAM access
        // costs ceil(latency / divider) *local* cycles, so the local
        // cycle count shrinks — but the same run takes more global ticks
        // (local · divider) than at divider 1.
        let m = MachineConfig::high_performance();
        let run = |divider: u64| {
            let mut core = RobCore::new(&m.core);
            core.set_clock_divider(divider);
            let mut mem = MemorySystem::new(&m, 1);
            let mut rng = Xoshiro256pp::seed_from_u64(9);
            let mut crng = Xoshiro256pp::seed_from_u64(109);
            core.reset(0);
            let mut last = 0;
            for i in 0..500u64 {
                let inst = Instruction::memory(InstKind::Load, i * 4096, 8);
                last = core.execute(0, &inst, NO_EVENTS, &mut mem, &mut rng, &mut crng);
            }
            last
        };
        let base = run(1);
        let halved = run(4);
        assert!(halved < base, "local cycles must shrink: {halved} vs {base}");
        assert!(halved * 4 > base, "global ticks must grow: {} vs {base}", halved * 4);
    }

    #[test]
    fn fence_serializes_following_work() {
        let with_fences = run_kinds(&[InstKind::Fence, InstKind::IntAlu], 2000);
        let without = run_kinds(&[InstKind::IntAlu], 2000);
        assert!(with_fences > without * 2);
    }
}
