//! Per-task reports and whole-simulation results.

use serde::{Deserialize, Serialize};
use taskpoint_runtime::{TaskInstanceId, TaskTypeId, WorkerId};

use crate::hierarchy::LevelStats;

/// The mode a task instance was simulated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimMode {
    /// Cycle-level detailed simulation (ROB occupancy analysis + caches).
    Detailed,
    /// Burst/fast-forward mode at a prescribed IPC.
    Fast,
}

/// Timing record of one completed task instance — the quantity TaskPoint
/// samples (its IPC) and predicts (its duration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// The completed instance.
    pub task: TaskInstanceId,
    /// Its task type.
    pub type_id: TaskTypeId,
    /// The worker that executed it.
    pub worker: WorkerId,
    /// Start cycle.
    pub start: u64,
    /// Completion cycle (exclusive; `end > start` always holds).
    pub end: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Simulation mode the instance ran in.
    pub mode: SimMode,
    /// Number of workers executing tasks concurrently when this task
    /// started (including itself) — the signal behind the paper's
    /// thread-count resampling trigger (Fig. 4a).
    pub concurrency: u32,
}

impl TaskReport {
    /// Cycles the task took.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// The task's achieved instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles() as f64
    }
}

/// Aggregate statistics of one heterogeneous core group.
///
/// Only produced for machines with
/// [`core_groups`](crate::config::MachineConfig::core_groups); homogeneous
/// runs leave [`SimResult::groups`] empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Group name from the machine description.
    pub name: String,
    /// Cores in the group.
    pub cores: u32,
    /// The group's clock divider relative to the base clock.
    pub clock_divider: u32,
    /// Task instances the group ran in detailed mode.
    pub detailed_tasks: u64,
    /// Task instances the group fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions executed by the group (both modes).
    pub instructions: u64,
    /// Global base-clock ticks the group's cores spent running tasks
    /// (summed over cores; divide by [`GroupStats::clock_divider`] for
    /// core-local cycles).
    pub busy_ticks: u64,
}

impl GroupStats {
    /// Busy time in core-local cycles (what the group's pipelines saw).
    pub fn busy_core_cycles(&self) -> u64 {
        self.busy_ticks / self.clock_divider.max(1) as u64
    }

    /// The group's achieved instructions per core-local cycle.
    pub fn ipc(&self) -> f64 {
        let cycles = self.busy_core_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / cycles as f64
        }
    }
}

/// Host-side accounting of the intra-run parallel detail layer
/// ([`SimulationBuilder::detail_threads`](crate::SimulationBuilder::detail_threads)).
///
/// Like [`SimResult::wall_seconds`], this describes how the simulation was
/// *executed*, not what it computed: all simulated quantities are
/// bit-identical at any thread count, while these counters legitimately
/// vary (always zero at `detail_threads = 1`). Identity comparisons must
/// exclude it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelEpochs {
    /// Speculative scheduling epochs whose results validated and were
    /// committed into the event engine.
    pub committed: u64,
    /// Speculative epochs discarded by replay validation (the engine
    /// re-ran them sequentially; results are unaffected).
    pub aborted: u64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Total simulated execution time in cycles (completion of the last
    /// task).
    pub total_cycles: u64,
    /// Host wall-clock seconds the simulation took — the numerator /
    /// denominator of the paper's speedup metric.
    pub wall_seconds: f64,
    /// Number of task instances simulated in detailed mode.
    pub detailed_tasks: u64,
    /// Number of task instances fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions simulated in detailed mode.
    pub detailed_instructions: u64,
    /// Instructions covered by fast-forwarding.
    pub fast_instructions: u64,
    /// Per-task reports in completion order (empty unless report collection
    /// was enabled).
    pub reports: Vec<TaskReport>,
    /// Coherence invalidations performed.
    pub invalidations: u64,
    /// DRAM line fetches.
    pub dram_accesses: u64,
    /// Private-level cache statistics (L1, then L2-private if any).
    pub private_cache: Vec<LevelStats>,
    /// Shared-level cache statistics.
    pub shared_cache: Vec<LevelStats>,
    /// Number of worker threads simulated.
    pub workers: u32,
    /// Per-core-group statistics, in the machine's group order. Empty for
    /// homogeneous machines.
    pub groups: Vec<GroupStats>,
    /// Parallel detail-layer accounting (host-side execution metadata,
    /// excluded from result-identity comparisons like `wall_seconds`).
    pub parallel_epochs: ParallelEpochs,
}

impl SimResult {
    /// Fraction of all simulated instructions that ran in detailed mode —
    /// the paper's main knob for the speed/accuracy trade-off.
    pub fn detail_fraction(&self) -> f64 {
        let total = self.detailed_instructions + self.fast_instructions;
        if total == 0 {
            0.0
        } else {
            self.detailed_instructions as f64 / total as f64
        }
    }

    /// Total simulated instructions.
    pub fn total_instructions(&self) -> u64 {
        self.detailed_instructions + self.fast_instructions
    }

    /// Detailed-mode simulation throughput in instructions per host
    /// second — the figure of merit of the batched trace pipeline. `None`
    /// when no detailed instructions ran or the wall clock is unusable
    /// (e.g. a result reconstructed from a cache record).
    pub fn detailed_instr_per_sec(&self) -> Option<f64> {
        if self.detailed_instructions == 0 || self.wall_seconds <= 0.0 {
            None
        } else {
            Some(self.detailed_instructions as f64 / self.wall_seconds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(start: u64, end: u64, instructions: u64) -> TaskReport {
        TaskReport {
            task: TaskInstanceId(0),
            type_id: TaskTypeId(0),
            worker: WorkerId(0),
            start,
            end,
            instructions,
            mode: SimMode::Detailed,
            concurrency: 1,
        }
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let r = report(100, 300, 400);
        assert_eq!(r.cycles(), 200);
        assert_eq!(r.ipc(), 2.0);
    }

    #[test]
    fn detail_fraction_bounds() {
        let mut res = SimResult {
            total_cycles: 0,
            wall_seconds: 0.0,
            detailed_tasks: 0,
            fast_tasks: 0,
            detailed_instructions: 30,
            fast_instructions: 70,
            reports: vec![],
            invalidations: 0,
            dram_accesses: 0,
            private_cache: vec![],
            shared_cache: vec![],
            workers: 1,
            groups: vec![],
            parallel_epochs: ParallelEpochs::default(),
        };
        assert!((res.detail_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(res.total_instructions(), 100);
        res.detailed_instructions = 0;
        res.fast_instructions = 0;
        assert_eq!(res.detail_fraction(), 0.0);
    }

    #[test]
    fn group_stats_convert_ticks_to_core_cycles() {
        let g = GroupStats {
            name: "little".to_string(),
            cores: 2,
            clock_divider: 2,
            detailed_tasks: 10,
            fast_tasks: 0,
            instructions: 600,
            busy_ticks: 1200,
        };
        assert_eq!(g.busy_core_cycles(), 600, "divider 2: half the global ticks");
        assert_eq!(g.ipc(), 1.0);
        let idle = GroupStats { busy_ticks: 0, instructions: 0, ..g };
        assert_eq!(idle.ipc(), 0.0);
    }
}
