//! Per-task reports and whole-simulation results.

use serde::{Deserialize, Serialize};
use taskpoint_runtime::{TaskInstanceId, TaskTypeId, WorkerId};

use crate::hierarchy::LevelStats;

/// The mode a task instance was simulated in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimMode {
    /// Cycle-level detailed simulation (ROB occupancy analysis + caches).
    Detailed,
    /// Burst/fast-forward mode at a prescribed IPC.
    Fast,
}

/// Timing record of one completed task instance — the quantity TaskPoint
/// samples (its IPC) and predicts (its duration).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// The completed instance.
    pub task: TaskInstanceId,
    /// Its task type.
    pub type_id: TaskTypeId,
    /// The worker that executed it.
    pub worker: WorkerId,
    /// Start cycle.
    pub start: u64,
    /// Completion cycle (exclusive; `end > start` always holds).
    pub end: u64,
    /// Dynamic instruction count.
    pub instructions: u64,
    /// Simulation mode the instance ran in.
    pub mode: SimMode,
    /// Number of workers executing tasks concurrently when this task
    /// started (including itself) — the signal behind the paper's
    /// thread-count resampling trigger (Fig. 4a).
    pub concurrency: u32,
}

impl TaskReport {
    /// Cycles the task took.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// The task's achieved instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.instructions as f64 / self.cycles() as f64
    }
}

/// Aggregate statistics of one heterogeneous core group.
///
/// Only produced for machines with
/// [`core_groups`](crate::config::MachineConfig::core_groups); homogeneous
/// runs leave [`SimResult::groups`] empty.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupStats {
    /// Group name from the machine description.
    pub name: String,
    /// Cores in the group.
    pub cores: u32,
    /// The group's clock divider relative to the base clock.
    pub clock_divider: u32,
    /// Task instances the group ran in detailed mode.
    pub detailed_tasks: u64,
    /// Task instances the group fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions executed by the group (both modes).
    pub instructions: u64,
    /// Global base-clock ticks the group's cores spent running tasks
    /// (summed over cores; divide by [`GroupStats::clock_divider`] for
    /// core-local cycles).
    pub busy_ticks: u64,
}

impl GroupStats {
    /// Busy time in core-local cycles (what the group's pipelines saw).
    pub fn busy_core_cycles(&self) -> u64 {
        self.busy_ticks / self.clock_divider.max(1) as u64
    }

    /// The group's achieved instructions per core-local cycle.
    pub fn ipc(&self) -> f64 {
        let cycles = self.busy_core_cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / cycles as f64
        }
    }
}

/// Where one core group's time went, in global base-clock ticks summed
/// over the group's cores.
///
/// The taxonomy is exhaustive and disjoint: the categories sum **exactly**
/// to `total()` = `total_cycles × cores` (pinned by
/// `tests/block_equivalence.rs`). Stall categories are attributed inside
/// the detailed core model ([ROB occupancy
/// analysis](crate::core_model::RobCore)) with cheap always-on counters;
/// `issue` absorbs productive dispatch plus timing-noise remainder,
/// `fast_fwd` is busy time spent in burst mode, and `idle` is the
/// no-task-assigned remainder.
///
/// Homogeneous machines report one synthetic group named `all`;
/// heterogeneous machines report one account per configured group.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleAccount {
    /// Group name (`all` for homogeneous machines).
    pub name: String,
    /// Cores in the group.
    pub cores: u32,
    /// Ticks dispatching instructions (including noise-model remainder).
    pub issue: u64,
    /// ROB window full behind a compute instruction.
    pub rob_full: u64,
    /// Serialization: data dependences, branch mispredictions, fences.
    pub dep_wait: u64,
    /// Waiting on an L1 hit blocking the window.
    pub l1_wait: u64,
    /// Waiting on data from a deeper cache level (L1 missed, no DRAM).
    pub l2_wait: u64,
    /// Waiting on DRAM.
    pub dram_wait: u64,
    /// All MSHRs in flight — no new miss could issue.
    pub mshr_full: u64,
    /// Waiting behind bus/bank bandwidth (service-queue delay).
    pub contention: u64,
    /// Busy ticks spent fast-forwarding tasks in burst mode.
    pub fast_fwd: u64,
    /// Ticks with no task assigned.
    pub idle: u64,
}

impl CycleAccount {
    /// Ticks the group's cores were running tasks (everything but idle).
    pub fn busy(&self) -> u64 {
        self.issue
            + self.rob_full
            + self.dep_wait
            + self.l1_wait
            + self.l2_wait
            + self.dram_wait
            + self.mshr_full
            + self.contention
            + self.fast_fwd
    }

    /// Ticks spent stalled in detailed mode (busy minus issue/fast-forward).
    pub fn stalled(&self) -> u64 {
        self.rob_full
            + self.dep_wait
            + self.l1_wait
            + self.l2_wait
            + self.dram_wait
            + self.mshr_full
            + self.contention
    }

    /// Total accounted ticks — `busy() + idle`, which the engine pins to
    /// `total_cycles × cores`.
    pub fn total(&self) -> u64 {
        self.busy() + self.idle
    }

    /// The categories as `(name, ticks)` pairs in canonical order, for
    /// uniform rendering and export.
    pub fn categories(&self) -> [(&'static str, u64); 10] {
        [
            ("issue", self.issue),
            ("rob_full", self.rob_full),
            ("dep_wait", self.dep_wait),
            ("l1_wait", self.l1_wait),
            ("l2_wait", self.l2_wait),
            ("dram_wait", self.dram_wait),
            ("mshr_full", self.mshr_full),
            ("contention", self.contention),
            ("fast_fwd", self.fast_fwd),
            ("idle", self.idle),
        ]
    }
}

/// Task-latency percentiles over all completed task instances (global
/// base-clock ticks), computed exactly from the per-task durations —
/// always on, independent of report collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyPercentiles {
    /// Number of completed task instances the percentiles cover.
    pub count: u64,
    /// Median task latency.
    pub p50: f64,
    /// 99th-percentile task latency.
    pub p99: f64,
    /// 99.9th-percentile task latency.
    pub p999: f64,
}

/// Host-side accounting of the intra-run parallel detail layer
/// ([`SimulationBuilder::detail_threads`](crate::SimulationBuilder::detail_threads)).
///
/// Like [`SimResult::wall_seconds`], this describes how the simulation was
/// *executed*, not what it computed: all simulated quantities are
/// bit-identical at any thread count, while these counters legitimately
/// vary (always zero at `detail_threads = 1`). Identity comparisons must
/// exclude it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelEpochs {
    /// Speculative scheduling epochs whose results validated and were
    /// committed into the event engine.
    pub committed: u64,
    /// Speculative epochs discarded by replay validation (the engine
    /// re-ran them sequentially; results are unaffected).
    pub aborted: u64,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Total simulated execution time in cycles (completion of the last
    /// task).
    pub total_cycles: u64,
    /// Host wall-clock seconds the simulation took — the numerator /
    /// denominator of the paper's speedup metric.
    pub wall_seconds: f64,
    /// Number of task instances simulated in detailed mode.
    pub detailed_tasks: u64,
    /// Number of task instances fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions simulated in detailed mode.
    pub detailed_instructions: u64,
    /// Instructions covered by fast-forwarding.
    pub fast_instructions: u64,
    /// Per-task reports in completion order (empty unless report collection
    /// was enabled).
    pub reports: Vec<TaskReport>,
    /// Coherence invalidations performed.
    pub invalidations: u64,
    /// DRAM line fetches.
    pub dram_accesses: u64,
    /// Private-level cache statistics (L1, then L2-private if any).
    pub private_cache: Vec<LevelStats>,
    /// Shared-level cache statistics.
    pub shared_cache: Vec<LevelStats>,
    /// Number of worker threads simulated.
    pub workers: u32,
    /// Per-core-group statistics, in the machine's group order. Empty for
    /// homogeneous machines.
    pub groups: Vec<GroupStats>,
    /// Parallel detail-layer accounting (host-side execution metadata,
    /// excluded from result-identity comparisons like `wall_seconds`).
    pub parallel_epochs: ParallelEpochs,
    /// Per-core-group cycle accounting (one synthetic `all` group for
    /// homogeneous machines). Categories sum to `total_cycles × cores`.
    pub cycle_accounts: Vec<CycleAccount>,
    /// Task-latency percentiles over all completed task instances.
    pub task_latency: LatencyPercentiles,
}

impl SimResult {
    /// Fraction of all simulated instructions that ran in detailed mode —
    /// the paper's main knob for the speed/accuracy trade-off.
    pub fn detail_fraction(&self) -> f64 {
        let total = self.detailed_instructions + self.fast_instructions;
        if total == 0 {
            0.0
        } else {
            self.detailed_instructions as f64 / total as f64
        }
    }

    /// Total simulated instructions.
    pub fn total_instructions(&self) -> u64 {
        self.detailed_instructions + self.fast_instructions
    }

    /// Detailed-mode simulation throughput in instructions per host
    /// second — the figure of merit of the batched trace pipeline. `None`
    /// when no detailed instructions ran or the wall clock is unusable
    /// (e.g. a result reconstructed from a cache record).
    pub fn detailed_instr_per_sec(&self) -> Option<f64> {
        if self.detailed_instructions == 0 || self.wall_seconds <= 0.0 {
            None
        } else {
            Some(self.detailed_instructions as f64 / self.wall_seconds)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(start: u64, end: u64, instructions: u64) -> TaskReport {
        TaskReport {
            task: TaskInstanceId(0),
            type_id: TaskTypeId(0),
            worker: WorkerId(0),
            start,
            end,
            instructions,
            mode: SimMode::Detailed,
            concurrency: 1,
        }
    }

    #[test]
    fn ipc_is_instructions_over_cycles() {
        let r = report(100, 300, 400);
        assert_eq!(r.cycles(), 200);
        assert_eq!(r.ipc(), 2.0);
    }

    #[test]
    fn detail_fraction_bounds() {
        let mut res = SimResult {
            total_cycles: 0,
            wall_seconds: 0.0,
            detailed_tasks: 0,
            fast_tasks: 0,
            detailed_instructions: 30,
            fast_instructions: 70,
            reports: vec![],
            invalidations: 0,
            dram_accesses: 0,
            private_cache: vec![],
            shared_cache: vec![],
            workers: 1,
            groups: vec![],
            parallel_epochs: ParallelEpochs::default(),
            cycle_accounts: vec![],
            task_latency: LatencyPercentiles::default(),
        };
        assert!((res.detail_fraction() - 0.3).abs() < 1e-12);
        assert_eq!(res.total_instructions(), 100);
        res.detailed_instructions = 0;
        res.fast_instructions = 0;
        assert_eq!(res.detail_fraction(), 0.0);
    }

    #[test]
    fn group_stats_convert_ticks_to_core_cycles() {
        let g = GroupStats {
            name: "little".to_string(),
            cores: 2,
            clock_divider: 2,
            detailed_tasks: 10,
            fast_tasks: 0,
            instructions: 600,
            busy_ticks: 1200,
        };
        assert_eq!(g.busy_core_cycles(), 600, "divider 2: half the global ticks");
        assert_eq!(g.ipc(), 1.0);
        let idle = GroupStats { busy_ticks: 0, instructions: 0, ..g };
        assert_eq!(idle.ipc(), 0.0);
    }
}
