//! Machine configurations.
//!
//! [`MachineConfig::high_performance`] and [`MachineConfig::low_power`]
//! reproduce Table II of the paper: the two "radically different" multi-core
//! designs used to select sampling parameters and to validate that they
//! generalize.

use serde::{Deserialize, Serialize};
use taskpoint_trace::InstKind;

/// Core (pipeline) parameters of the ROB-occupancy-analysis model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Reorder-buffer capacity in instructions (Table II: 168 / 40).
    pub rob_size: u32,
    /// Maximum instructions dispatched per cycle (Table II: 4 / 3).
    pub issue_width: u32,
    /// Maximum instructions committed per cycle (Table II: 4 / 3).
    pub commit_width: u32,
    /// Outstanding-miss registers (MSHRs): bounds memory-level parallelism.
    pub mshrs: u32,
    /// Pipeline refill penalty after a branch misprediction, in cycles.
    pub mispredict_penalty: u32,
    /// Execution latencies per instruction kind, in cycles.
    pub latencies: KindLatencies,
}

/// Per-kind execution latencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KindLatencies {
    /// Integer ALU latency.
    pub int_alu: u32,
    /// Integer multiply latency.
    pub int_mul: u32,
    /// Integer divide latency.
    pub int_div: u32,
    /// FP add latency.
    pub fp_alu: u32,
    /// FP multiply latency.
    pub fp_mul: u32,
    /// FP divide latency.
    pub fp_div: u32,
    /// Store latency (write-buffer absorbed).
    pub store: u32,
    /// Branch execute latency.
    pub branch: u32,
    /// Extra serialization cost of an atomic on top of its memory access.
    pub atomic_extra: u32,
    /// Full-fence drain cost.
    pub fence: u32,
}

impl KindLatencies {
    /// Latency for a non-load kind. Loads get their latency from the memory
    /// hierarchy instead.
    pub fn of(&self, kind: InstKind) -> u32 {
        match kind {
            InstKind::IntAlu => self.int_alu,
            InstKind::IntMul => self.int_mul,
            InstKind::IntDiv => self.int_div,
            InstKind::FpAlu => self.fp_alu,
            InstKind::FpMul => self.fp_mul,
            InstKind::FpDiv => self.fp_div,
            InstKind::Store => self.store,
            InstKind::Branch => self.branch,
            InstKind::Atomic => self.atomic_extra,
            InstKind::Fence => self.fence,
            InstKind::Load => unreachable!("load latency comes from the memory hierarchy"),
        }
    }
}

impl Default for KindLatencies {
    fn default() -> Self {
        Self {
            int_alu: 1,
            int_mul: 3,
            int_div: 20,
            fp_alu: 3,
            fp_mul: 4,
            fp_div: 22,
            store: 1,
            branch: 1,
            atomic_extra: 12,
            fence: 20,
        }
    }
}

/// One cache level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLevelConfig {
    /// Level name for reports ("L1", "L2", "L3").
    pub name: String,
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub associativity: u32,
    /// Access latency in cycles.
    pub latency: u32,
    /// Whether the level is shared by all cores (false = per-core private).
    pub shared: bool,
    /// Service time per access in cycles for shared levels — models banked
    /// bandwidth; queueing behind it is how inter-thread contention arises.
    pub service_cycles: u32,
}

/// Main-memory parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// Row access latency in cycles.
    pub latency: u32,
    /// Independent channels (each a service queue).
    pub channels: u32,
    /// Service time per line transfer per channel, in cycles.
    pub service_cycles: u32,
}

/// Largest accepted [`CoreGroupConfig::clock_divider`].
///
/// Far beyond any plausible frequency ratio, but small enough that
/// converting core-local cycles to global base-clock ticks
/// (`cycle · divider`) stays comfortably inside `u64` for any reachable
/// simulated time.
pub const MAX_CLOCK_DIVIDER: u32 = 1 << 20;

/// A named group of identical cores within a heterogeneous machine.
///
/// Groups are listed big-to-little by convention: worker ids are assigned
/// in listed order (group 0 gets the lowest ids), and the engine hands
/// ready tasks to the lowest idle id first, so the leading group is
/// preferred when several cores are free.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreGroupConfig {
    /// Group name for reports ("big", "little", ...). Must be unique
    /// within the machine.
    pub name: String,
    /// Number of cores in the group. The group sizes of a machine must sum
    /// to the simulation's worker count.
    pub cores: u32,
    /// Clock divider relative to the machine's base clock: a core in a
    /// divider-`d` group advances one pipeline cycle every `d` global
    /// ticks (divider 2 ≈ half frequency). Must be in
    /// `1..=`[`MAX_CLOCK_DIVIDER`].
    pub clock_divider: u32,
    /// Pipeline parameters for this group, or `None` to inherit the
    /// machine-wide [`MachineConfig::core`].
    pub core: Option<CoreConfig>,
}

/// A complete simulated machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Configuration name ("high-performance", "low-power").
    pub name: String,
    /// Cache line size in bytes (Table II: 64 B for both machines).
    pub line_size: u32,
    /// Core pipeline parameters.
    pub core: CoreConfig,
    /// Cache levels ordered from closest (L1) to farthest.
    pub caches: Vec<CacheLevelConfig>,
    /// DRAM parameters.
    pub memory: MemoryConfig,
    /// Maximum cycles a core may advance before yielding to the
    /// interleaving engine; bounds causal skew on shared state.
    pub chunk_cycles: u64,
    /// Heterogeneous core groups. Empty (the default for all Table II
    /// presets) means a homogeneous machine: every worker runs
    /// [`MachineConfig::core`] at divider 1, exactly as before the
    /// event-engine refactor.
    pub core_groups: Vec<CoreGroupConfig>,
}

/// A structurally invalid heterogeneous machine description, reported by
/// [`MachineConfig::validated`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineConfigError {
    /// A core group has zero cores.
    EmptyGroup {
        /// Name of the offending group.
        group: String,
    },
    /// A core group's clock divider is zero (a core that never advances).
    ZeroClockDivider {
        /// Name of the offending group.
        group: String,
    },
    /// A core group's clock divider exceeds [`MAX_CLOCK_DIVIDER`].
    ClockDividerTooLarge {
        /// Name of the offending group.
        group: String,
        /// The rejected divider.
        divider: u32,
    },
    /// Two core groups share a name, making per-group reports ambiguous.
    DuplicateGroupName {
        /// The repeated name.
        group: String,
    },
}

impl std::fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyGroup { group } => {
                write!(f, "core group '{group}' has zero cores")
            }
            Self::ZeroClockDivider { group } => {
                write!(f, "core group '{group}' has clock divider 0 (cores would never advance)")
            }
            Self::ClockDividerTooLarge { group, divider } => {
                write!(
                    f,
                    "core group '{group}' clock divider {divider} exceeds the maximum {}",
                    MAX_CLOCK_DIVIDER
                )
            }
            Self::DuplicateGroupName { group } => {
                write!(f, "core group name '{group}' is used more than once")
            }
        }
    }
}

impl std::error::Error for MachineConfigError {}

impl MachineConfig {
    /// The paper's high-performance (server-class) configuration, Table II
    /// left column: ROB 168, 4-wide, L1 32 kB/4cyc/8-way private,
    /// L2 2 MB/11cyc/8-way private, L3 20 MB/28cyc/20-way shared.
    pub fn high_performance() -> Self {
        Self {
            name: "high-performance".to_string(),
            line_size: 64,
            core: CoreConfig {
                rob_size: 168,
                issue_width: 4,
                commit_width: 4,
                mshrs: 10,
                mispredict_penalty: 14,
                latencies: KindLatencies::default(),
            },
            caches: vec![
                CacheLevelConfig {
                    name: "L1".to_string(),
                    size_bytes: 32 * 1024,
                    associativity: 8,
                    latency: 4,
                    shared: false,
                    service_cycles: 1,
                },
                CacheLevelConfig {
                    name: "L2".to_string(),
                    size_bytes: 2 * 1024 * 1024,
                    associativity: 8,
                    latency: 11,
                    shared: false,
                    service_cycles: 2,
                },
                CacheLevelConfig {
                    name: "L3".to_string(),
                    size_bytes: 20 * 1024 * 1024,
                    associativity: 20,
                    latency: 28,
                    shared: true,
                    service_cycles: 2,
                },
            ],
            memory: MemoryConfig { latency: 180, channels: 4, service_cycles: 8 },
            chunk_cycles: 8192,
            core_groups: Vec::new(),
        }
    }

    /// The paper's low-power (mobile-class) configuration, Table II right
    /// column: ROB 40, 3-wide, L1 32 kB/4cyc/2-way private, L2 1 MB/21cyc/
    /// 16-way shared, no L3.
    pub fn low_power() -> Self {
        Self {
            name: "low-power".to_string(),
            line_size: 64,
            core: CoreConfig {
                rob_size: 40,
                issue_width: 3,
                commit_width: 3,
                mshrs: 6,
                mispredict_penalty: 12,
                latencies: KindLatencies::default(),
            },
            caches: vec![
                CacheLevelConfig {
                    name: "L1".to_string(),
                    size_bytes: 32 * 1024,
                    associativity: 2,
                    latency: 4,
                    shared: false,
                    service_cycles: 1,
                },
                CacheLevelConfig {
                    name: "L2".to_string(),
                    size_bytes: 1024 * 1024,
                    associativity: 16,
                    latency: 21,
                    shared: true,
                    service_cycles: 3,
                },
            ],
            memory: MemoryConfig { latency: 150, channels: 1, service_cycles: 16 },
            chunk_cycles: 8192,
            core_groups: Vec::new(),
        }
    }

    /// A heterogeneous big.LITTLE machine: `big` server-class cores at the
    /// base clock plus `little` narrow cores at clock divider 2, all
    /// sharing one L2 whose banked service queue is the contention point
    /// between the groups.
    ///
    /// Not part of the paper's Table II — this is the scenario the
    /// discrete-event engine exists for (ROADMAP north star: sampling on
    /// machines the original TaskSim substrate could not express).
    pub fn big_little(big: u32, little: u32) -> Self {
        Self {
            name: format!("big-little-{big}b{little}l"),
            line_size: 64,
            core: CoreConfig {
                rob_size: 168,
                issue_width: 4,
                commit_width: 4,
                mshrs: 10,
                mispredict_penalty: 14,
                latencies: KindLatencies::default(),
            },
            caches: vec![
                CacheLevelConfig {
                    name: "L1".to_string(),
                    size_bytes: 32 * 1024,
                    associativity: 8,
                    latency: 4,
                    shared: false,
                    service_cycles: 1,
                },
                CacheLevelConfig {
                    name: "L2".to_string(),
                    size_bytes: 4 * 1024 * 1024,
                    associativity: 16,
                    latency: 18,
                    shared: true,
                    service_cycles: 3,
                },
            ],
            memory: MemoryConfig { latency: 160, channels: 2, service_cycles: 12 },
            chunk_cycles: 8192,
            core_groups: vec![
                CoreGroupConfig {
                    name: "big".to_string(),
                    cores: big,
                    clock_divider: 1,
                    core: None,
                },
                CoreGroupConfig {
                    name: "little".to_string(),
                    cores: little,
                    clock_divider: 2,
                    core: Some(CoreConfig {
                        rob_size: 40,
                        issue_width: 2,
                        commit_width: 2,
                        mshrs: 6,
                        mispredict_penalty: 10,
                        latencies: KindLatencies::default(),
                    }),
                },
            ],
        }
    }

    /// A deliberately tiny machine for fast unit tests: 2-entry-way caches,
    /// short latencies, small ROB.
    pub fn tiny_test() -> Self {
        Self {
            name: "tiny-test".to_string(),
            line_size: 64,
            core: CoreConfig {
                rob_size: 16,
                issue_width: 2,
                commit_width: 2,
                mshrs: 4,
                mispredict_penalty: 8,
                latencies: KindLatencies::default(),
            },
            caches: vec![
                CacheLevelConfig {
                    name: "L1".to_string(),
                    size_bytes: 1024,
                    associativity: 2,
                    latency: 2,
                    shared: false,
                    service_cycles: 1,
                },
                CacheLevelConfig {
                    name: "L2".to_string(),
                    size_bytes: 16 * 1024,
                    associativity: 4,
                    latency: 8,
                    shared: true,
                    service_cycles: 2,
                },
            ],
            memory: MemoryConfig { latency: 60, channels: 1, service_cycles: 4 },
            chunk_cycles: 1024,
            core_groups: Vec::new(),
        }
    }

    /// Whether the machine has heterogeneous core groups.
    pub fn is_heterogeneous(&self) -> bool {
        !self.core_groups.is_empty()
    }

    /// Total cores across all groups, or `None` for a homogeneous machine
    /// (whose core count is the simulation's worker count).
    pub fn total_group_cores(&self) -> Option<u32> {
        if self.core_groups.is_empty() {
            None
        } else {
            Some(self.core_groups.iter().map(|g| g.cores).sum())
        }
    }

    /// Validates the heterogeneous core-group description, returning the
    /// machine unchanged on success. The typed counterpart of
    /// [`validate`](MachineConfig::validate) for the group axes — use it
    /// when the description comes from user input rather than a preset.
    pub fn validated(self) -> Result<Self, MachineConfigError> {
        self.check_groups()?;
        Ok(self)
    }

    fn check_groups(&self) -> Result<(), MachineConfigError> {
        let mut seen = std::collections::HashSet::new();
        for g in &self.core_groups {
            if g.cores == 0 {
                return Err(MachineConfigError::EmptyGroup { group: g.name.clone() });
            }
            if g.clock_divider == 0 {
                return Err(MachineConfigError::ZeroClockDivider { group: g.name.clone() });
            }
            if g.clock_divider > MAX_CLOCK_DIVIDER {
                return Err(MachineConfigError::ClockDividerTooLarge {
                    group: g.name.clone(),
                    divider: g.clock_divider,
                });
            }
            if !seen.insert(g.name.as_str()) {
                return Err(MachineConfigError::DuplicateGroupName { group: g.name.clone() });
            }
        }
        Ok(())
    }

    /// Validates structural invariants.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is malformed (no caches, zero widths,
    /// non-power-of-two line size, cache smaller than a line, an invalid
    /// core-group description, ...).
    pub fn validate(&self) {
        assert!(self.line_size.is_power_of_two(), "line size must be a power of two");
        assert!(self.core.rob_size > 0, "zero ROB");
        assert!(self.core.issue_width > 0, "zero issue width");
        assert!(self.core.commit_width > 0, "zero commit width");
        assert!(self.core.mshrs > 0, "zero MSHRs");
        assert!(!self.caches.is_empty(), "need at least one cache level");
        for c in &self.caches {
            assert!(c.size_bytes >= self.line_size as u64, "{}: smaller than a line", c.name);
            assert!(c.associativity > 0, "{}: zero associativity", c.name);
            let lines = c.size_bytes / self.line_size as u64;
            assert!(
                lines.is_multiple_of(c.associativity as u64),
                "{}: lines not divisible by associativity",
                c.name
            );
        }
        assert!(self.memory.channels > 0, "zero DRAM channels");
        assert!(self.chunk_cycles > 0, "zero chunk size");
        if let Err(e) = self.check_groups() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_high_performance_parameters() {
        let m = MachineConfig::high_performance();
        m.validate();
        assert_eq!(m.core.rob_size, 168);
        assert_eq!(m.core.issue_width, 4);
        assert_eq!(m.core.commit_width, 4);
        assert_eq!(m.line_size, 64);
        assert_eq!(m.caches.len(), 3);
        let l1 = &m.caches[0];
        assert_eq!((l1.size_bytes, l1.associativity, l1.latency, l1.shared), (32768, 8, 4, false));
        let l2 = &m.caches[1];
        assert_eq!(
            (l2.size_bytes, l2.associativity, l2.latency, l2.shared),
            (2 * 1024 * 1024, 8, 11, false)
        );
        let l3 = &m.caches[2];
        assert_eq!(
            (l3.size_bytes, l3.associativity, l3.latency, l3.shared),
            (20 * 1024 * 1024, 20, 28, true)
        );
    }

    #[test]
    fn table2_low_power_parameters() {
        let m = MachineConfig::low_power();
        m.validate();
        assert_eq!(m.core.rob_size, 40);
        assert_eq!(m.core.issue_width, 3);
        assert_eq!(m.core.commit_width, 3);
        assert_eq!(m.caches.len(), 2, "no L3 on the low-power machine");
        let l1 = &m.caches[0];
        assert_eq!((l1.size_bytes, l1.associativity, l1.latency, l1.shared), (32768, 2, 4, false));
        let l2 = &m.caches[1];
        assert_eq!(
            (l2.size_bytes, l2.associativity, l2.latency, l2.shared),
            (1024 * 1024, 16, 21, true)
        );
    }

    #[test]
    fn latency_table_covers_all_non_load_kinds() {
        let lat = KindLatencies::default();
        for k in InstKind::ALL {
            if k != InstKind::Load {
                assert!(lat.of(k) >= 1 || k == InstKind::Store, "{k} latency");
            }
        }
    }

    #[test]
    #[should_panic(expected = "load latency")]
    fn load_latency_is_not_tabulated() {
        KindLatencies::default().of(InstKind::Load);
    }

    #[test]
    #[should_panic(expected = "smaller than a line")]
    fn validate_rejects_degenerate_cache() {
        let mut m = MachineConfig::tiny_test();
        m.caches[0].size_bytes = 32;
        m.validate();
    }

    #[test]
    fn tiny_config_is_valid() {
        MachineConfig::tiny_test().validate();
    }

    #[test]
    fn big_little_preset_is_valid_and_heterogeneous() {
        let m = MachineConfig::big_little(2, 2);
        m.validate();
        assert!(m.is_heterogeneous());
        assert_eq!(m.total_group_cores(), Some(4));
        assert_eq!(m.core_groups[0].clock_divider, 1);
        assert_eq!(m.core_groups[1].clock_divider, 2);
        assert!(m.core_groups[1].core.is_some(), "little cores have their own pipeline");
        assert!(m.caches[1].shared, "groups contend on the shared L2");
    }

    #[test]
    fn homogeneous_presets_have_no_groups() {
        for m in [
            MachineConfig::tiny_test(),
            MachineConfig::low_power(),
            MachineConfig::high_performance(),
        ] {
            assert!(!m.is_heterogeneous());
            assert_eq!(m.total_group_cores(), None);
        }
    }

    #[test]
    fn validated_accepts_the_presets() {
        assert!(MachineConfig::big_little(1, 3).validated().is_ok());
        assert!(MachineConfig::high_performance().validated().is_ok());
    }

    #[test]
    fn validated_rejects_empty_group() {
        let mut m = MachineConfig::big_little(2, 2);
        m.core_groups[1].cores = 0;
        assert_eq!(
            m.validated().unwrap_err(),
            MachineConfigError::EmptyGroup { group: "little".to_string() }
        );
    }

    #[test]
    fn validated_rejects_zero_clock_divider() {
        let mut m = MachineConfig::big_little(2, 2);
        m.core_groups[0].clock_divider = 0;
        assert_eq!(
            m.validated().unwrap_err(),
            MachineConfigError::ZeroClockDivider { group: "big".to_string() }
        );
    }

    #[test]
    fn validated_rejects_overflowing_clock_divider() {
        let mut m = MachineConfig::big_little(2, 2);
        m.core_groups[1].clock_divider = MAX_CLOCK_DIVIDER + 1;
        assert_eq!(
            m.validated().unwrap_err(),
            MachineConfigError::ClockDividerTooLarge {
                group: "little".to_string(),
                divider: MAX_CLOCK_DIVIDER + 1
            }
        );
    }

    #[test]
    fn validated_rejects_duplicate_group_names() {
        let mut m = MachineConfig::big_little(2, 2);
        m.core_groups[1].name = "big".to_string();
        assert_eq!(
            m.validated().unwrap_err(),
            MachineConfigError::DuplicateGroupName { group: "big".to_string() }
        );
    }

    #[test]
    #[should_panic(expected = "clock divider 0")]
    fn validate_panics_on_bad_groups() {
        let mut m = MachineConfig::big_little(2, 2);
        m.core_groups[0].clock_divider = 0;
        m.validate();
    }

    #[test]
    fn error_messages_name_the_group() {
        let e =
            MachineConfigError::ClockDividerTooLarge { group: "little".into(), divider: 1 << 21 };
        let msg = e.to_string();
        assert!(msg.contains("little") && msg.contains("2097152"), "{msg}");
    }
}
