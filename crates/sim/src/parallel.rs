//! Speculative intra-run parallelism for detailed-mode execution.
//!
//! The task-dataflow structure TaskPoint samples is also the structure
//! that admits safe host-side parallelism: when a scheduling batch hands a
//! *dependency-closed frontier* of task instances to the workers — no task
//! mid-flight, nothing left in the ready queue — those executions are
//! logically independent until the next completion, and their
//! `RobCore::execute_block` loops can be raced ahead on host threads. The
//! hard part is the shared memory fabric: caches, the snoop filter and the
//! bandwidth queues see an interleaving of all cores' accesses, and the
//! engine's results are pinned bit-identical to the sequential event
//! order.
//!
//! The layer therefore runs **optimistic speculation with replay
//! validation**:
//!
//! 1. **Speculate.** Each detailed task in the wave executes to completion
//!    on a scoped thread against a *shard*: a snapshot of the shared
//!    fabric plus its own private cache column
//!    ([`MemorySystem::fork_for_worker`]). Every shared-fabric operation
//!    the run performs (lookups after a private miss, prefetch installs,
//!    snoop reads/writes) is logged with the event tick of its enclosing
//!    chunk.
//! 2. **Merge + validate.** The logs are merged in the exact order the
//!    sequential engine would have performed them — `(event tick, worker
//!    id)`, the event heap's key — and replayed against a fresh snapshot
//!    of the authoritative shared state. Any outcome difference (a lookup
//!    hitting a different level or paying a different queue delay, a write
//!    finding different remote sharers) means the speculations interacted;
//!    the epoch **aborts** and the engine simply executes the wave
//!    sequentially — nothing authoritative was touched. A replayed
//!    invalidation hitting another wave worker's private column aborts for
//!    the same reason: that worker's speculation never saw it.
//! 3. **Commit.** If every operation replays identically and no completion
//!    could have scheduled a successor before the wave's final event (see
//!    [`Engine::maybe_parallel_epoch`]), the replayed shared state, the
//!    workers' private columns and the per-task reports are adopted, and
//!    each worker's pending start event forwards itself to the task's
//!    recorded finish tick ([`Running::Committed`]) — completions then
//!    flow through the normal event loop in exactly the sequential order.
//!
//! Abort is always correct and commit is validated, so `SimResult`s are
//! bit-identical to the sequential engine at any thread count (pinned by
//! `tests/parallel_determinism.rs` and `tests/block_equivalence.rs`).
//! Configurations whose results are dominated by fine-grained contention
//! (a single slow DRAM channel, starved MSHR pools) would abort nearly
//! every epoch, so they are statically ineligible and never pay the
//! speculation cost ([`machine_parallel_eligible`]).

use std::collections::HashMap;

use taskpoint_runtime::{TaskInstanceId, TaskTypeId, WorkerId};
use taskpoint_stats::rng::Xoshiro256pp;
use taskpoint_telemetry::Sink;
use taskpoint_trace::{InstBlock, TraceSource};

use crate::config::MachineConfig;
use crate::core_model::{RobCore, TaskParams};
use crate::engine::{detailed_end, run_detailed_chunk, CoreComponent, Engine, Running};
use crate::hierarchy::{AccessRecorder, MemAccessResult, MemPort, MemorySystem};
use crate::noise::NoiseModel;
use crate::report::{SimMode, TaskReport};

/// A burst-mode wave member: `(task, end tick, worker)`. Bursts carry no
/// speculative state — only the completion event the schedule check needs.
type BurstMember = (TaskInstanceId, u64, u32);

/// Consecutive aborted epochs after which speculation is disabled for the
/// rest of the run: the workload is evidently interaction-heavy and the
/// wasted speculative work would slow the simulation down.
const ABORT_STREAK_LIMIT: u32 = 3;

/// Configuration and accounting of the parallel detail layer, owned by the
/// engine.
#[derive(Debug)]
pub(crate) struct ParallelState {
    /// Host threads the detailed executor may use (1 = sequential only).
    pub(crate) threads: usize,
    /// Instruction floor below which a task is not worth speculating.
    pub(crate) min_task_instructions: u64,
    /// Static machine eligibility (see [`machine_parallel_eligible`]).
    pub(crate) machine_eligible: bool,
    /// Tripped by [`ABORT_STREAK_LIMIT`] consecutive aborts.
    pub(crate) disabled: bool,
    pub(crate) abort_streak: u32,
    pub(crate) epochs_committed: u64,
    pub(crate) epochs_aborted: u64,
}

impl ParallelState {
    pub(crate) fn new(threads: usize, min_task_instructions: u64, machine: &MachineConfig) -> Self {
        Self {
            threads,
            min_task_instructions,
            machine_eligible: threads > 1 && machine_parallel_eligible(machine),
            disabled: false,
            abort_streak: 0,
            epochs_committed: 0,
            epochs_aborted: 0,
        }
    }
}

/// The fallback rule of the issue: configurations whose timing is
/// dominated by fine-grained shared-resource contention must keep the
/// exact sequential interleaving. Replay validation would preserve
/// correctness anyway (such epochs abort), but attempting them wastes the
/// full speculative execution each time, so they are ruled out statically:
///
/// * a single DRAM channel with a long service time concentrates every
///   miss on one heavily-loaded queue, making queue-delay outcomes depend
///   on precise arrival interleaving;
/// * starved MSHR pools (≤ 2) serialize cores on their own misses and
///   amplify any timing perturbation.
pub(crate) fn machine_parallel_eligible(m: &MachineConfig) -> bool {
    let dram_pressure = m.memory.channels == 1 && m.memory.service_cycles >= 8;
    let min_mshrs = std::iter::once(&m.core)
        .chain(m.core_groups.iter().filter_map(|g| g.core.as_ref()))
        .map(|c| c.mshrs)
        .min()
        .unwrap_or(0);
    !(dram_pressure || min_mshrs <= 2)
}

/// One shared-fabric operation recorded during speculation.
#[derive(Debug, Clone, Copy)]
enum SharedOp {
    /// A shared-level/DRAM lookup after all private levels missed, with
    /// the speculative outcome to validate against.
    Lookup { line: u64, now: u64, hit_level: u8, queue_delay: u64 },
    /// A prefetch installed `line` into the last shared level.
    Install { line: u64 },
    /// A read registered `line` in the snoop filter.
    SnoopRead { line: u64 },
    /// A write claimed exclusivity of `line`; `had_others` fed the
    /// speculative latency.
    SnoopWrite { line: u64, had_others: bool },
}

/// A [`SharedOp`] tagged with the event tick of the chunk that performed
/// it — the first half of the sequential engine's `(tick, worker)` event
/// order.
#[derive(Debug, Clone, Copy)]
struct TaggedOp {
    tick: u64,
    op: SharedOp,
}

/// [`AccessRecorder`] that appends to a speculation log.
struct OpRecorder<'a> {
    tick: u64,
    ops: &'a mut Vec<TaggedOp>,
}

impl AccessRecorder for OpRecorder<'_> {
    fn lookup(&mut self, line: u64, now: u64, hit_level: u8, queue_delay: u64) {
        self.ops.push(TaggedOp {
            tick: self.tick,
            op: SharedOp::Lookup { line, now, hit_level, queue_delay },
        });
    }

    fn install(&mut self, line: u64) {
        self.ops.push(TaggedOp { tick: self.tick, op: SharedOp::Install { line } });
    }

    fn snoop_read(&mut self, line: u64) {
        self.ops.push(TaggedOp { tick: self.tick, op: SharedOp::SnoopRead { line } });
    }

    fn snoop_write(&mut self, line: u64, had_others: bool) {
        self.ops.push(TaggedOp { tick: self.tick, op: SharedOp::SnoopWrite { line, had_others } });
    }
}

/// Memory port of a speculative execution: forwards to the shard while
/// logging every shared-fabric operation under the current chunk's event
/// tick.
struct RecordingMem<'a> {
    mem: &'a mut MemorySystem,
    tick: u64,
    ops: &'a mut Vec<TaggedOp>,
}

impl MemPort for RecordingMem<'_> {
    fn access(&mut self, core: u32, addr: u64, write: bool, now: u64) -> MemAccessResult {
        let mut rec = OpRecorder { tick: self.tick, ops: self.ops };
        self.mem.access_impl(core, addr, write, now, &mut rec)
    }
}

/// Everything one speculative task execution needs, moved onto its host
/// thread. All pieces are snapshots or fresh constructions — nothing
/// aliases engine state.
struct WaveUnit {
    worker: u32,
    task: TaskInstanceId,
    type_id: TaskTypeId,
    start: u64,
    /// The already-scheduled first event tick (`local_start · divider`).
    first_tick: u64,
    divider: u64,
    chunk_cycles: u64,
    concurrency: u32,
    params: TaskParams,
    task_seed: u64,
    noise: Option<NoiseModel>,
    source: Box<dyn TraceSource + Send>,
    core: RobCore,
    mem: MemorySystem,
    data_rng: Xoshiro256pp,
    code_rng: Xoshiro256pp,
    block_capacity: usize,
}

/// Result of one speculative task execution.
struct SpecOutcome {
    worker: u32,
    report: TaskReport,
    /// Event tick of the final chunk — where the sequential engine's
    /// completion event for this task would fire.
    finish_tick: u64,
    ops: Vec<TaggedOp>,
    mem: MemorySystem,
    /// The post-task pipeline state, adopted at commit so the engine's
    /// cycle accounting reads the same stall counters the sequential path
    /// would have produced.
    core: RobCore,
}

/// Executes one wave task to completion against its shard, mirroring the
/// sequential component's chunk loop exactly (same chunk boundaries, same
/// refills, same RNG draws).
fn speculate_one(mut unit: WaveUnit) -> SpecOutcome {
    let mut block = InstBlock::with_capacity(unit.block_capacity);
    let mut cursor = 0usize;
    let mut executed = 0u64;
    let mut ops = Vec::new();
    let mut data_rng = unit.data_rng.clone();
    let mut code_rng = unit.code_rng.clone();
    let mut now = unit.first_tick;
    loop {
        let mut port = RecordingMem { mem: &mut unit.mem, tick: now, ops: &mut ops };
        let finished = run_detailed_chunk(
            &mut unit.core,
            unit.worker,
            unit.divider,
            unit.chunk_cycles,
            now,
            unit.source.as_mut(),
            &mut block,
            &mut cursor,
            &mut executed,
            unit.params,
            &mut port,
            &mut data_rng,
            &mut code_rng,
        );
        if finished {
            break;
        }
        now = unit.core.dispatch_cycle() * unit.divider;
    }
    let end =
        detailed_end(&unit.core, unit.divider, unit.start, unit.noise.as_ref(), unit.task_seed);
    let report = TaskReport {
        task: unit.task,
        type_id: unit.type_id,
        worker: WorkerId(unit.worker),
        start: unit.start,
        end,
        instructions: executed,
        mode: SimMode::Detailed,
        concurrency: unit.concurrency,
    };
    SpecOutcome {
        worker: unit.worker,
        report,
        finish_tick: now,
        ops,
        mem: unit.mem,
        core: unit.core,
    }
}

impl<S: Sink> Engine<'_, S> {
    /// Attempts one speculative epoch over the freshly assigned wave.
    ///
    /// The caller (`assign_ready_tasks`) has established the epoch shape:
    /// no task was mid-flight before this batch, at least two are running
    /// now, and the ready queue is drained. This method applies the
    /// remaining gates, speculates, validates and either commits or walks
    /// away — on any abort the engine state is exactly as if the attempt
    /// never happened, and the wave executes sequentially.
    pub(crate) fn maybe_parallel_epoch(&mut self) {
        if self.parallel.threads <= 1
            || self.parallel.disabled
            || !self.parallel.machine_eligible
            // Telemetry streams are pinned byte-identical to sequential
            // execution, including per-event counters; the committed fast
            // path skips those events, so recording runs stay sequential.
            || self.sink.enabled()
        {
            return;
        }
        let Some((units, bursts)) = self.collect_wave() else { return };
        let wave_mask: u64 = units.iter().map(|u| 1u64 << u.worker).fold(0, |a, b| a | b);

        // Speculate: contiguous batches over up to `threads` host threads.
        // Outcome order is the unit (worker id) order regardless of thread
        // count or finish order, so everything downstream is
        // deterministic.
        let nthreads = self.parallel.threads.min(units.len());
        let batch_len = units.len().div_ceil(nthreads);
        let outcomes: Vec<SpecOutcome> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            let mut rest = units;
            while !rest.is_empty() {
                let take = batch_len.min(rest.len());
                let batch: Vec<WaveUnit> = rest.drain(..take).collect();
                handles.push(
                    s.spawn(move || batch.into_iter().map(speculate_one).collect::<Vec<_>>()),
                );
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("speculative detail worker panicked"))
                .collect()
        });

        if !self.wave_completion_order_is_safe(&outcomes, &bursts) {
            self.abort_epoch();
            return;
        }
        let Some((fork, invalidations)) = self.replay_and_validate(&outcomes, wave_mask) else {
            self.abort_epoch();
            return;
        };
        self.commit_epoch(outcomes, fork, invalidations);
    }

    /// Gathers the wave: one [`WaveUnit`] per freshly assigned detailed
    /// task plus the `(task, end, worker)` triples of burst members.
    /// Returns `None` when the wave is not worth (or not able to be)
    /// speculated — too few detailed tasks, one below the instruction
    /// floor, or a trace provider without `Send` sources.
    fn collect_wave(&self) -> Option<(Vec<WaveUnit>, Vec<BurstMember>)> {
        let mut units = Vec::new();
        let mut bursts = Vec::new();
        for comp in &self.components {
            match &comp.running {
                Some(Running::Detailed {
                    task,
                    params,
                    start,
                    concurrency,
                    data_rng,
                    code_rng,
                    ..
                }) => {
                    let inst = self.program.instance(*task);
                    if inst.instructions() < self.parallel.min_task_instructions {
                        return None;
                    }
                    let source = self.traces.source_send(*task, inst.trace())?;
                    units.push(WaveUnit {
                        worker: comp.id,
                        task: *task,
                        type_id: inst.type_id(),
                        start: *start,
                        first_tick: comp.next_tick?,
                        divider: comp.divider,
                        chunk_cycles: comp.chunk_cycles,
                        concurrency: *concurrency,
                        params: *params,
                        task_seed: inst.trace().seed(),
                        noise: self.noise,
                        source,
                        core: comp.core.clone(),
                        mem: self.mem.fork_for_worker(comp.id),
                        data_rng: data_rng.clone(),
                        code_rng: code_rng.clone(),
                        block_capacity: self.block_capacity,
                    });
                }
                Some(Running::Burst { task, end, .. }) => bursts.push((*task, *end, comp.id)),
                // `prev_running == 0` rules out leftovers from an earlier
                // epoch; be conservative if it ever changes.
                Some(Running::Committed { .. }) => return None,
                None => {}
            }
        }
        // One detailed task would just be sequential execution with
        // logging overhead.
        if units.len() < 2 {
            return None;
        }
        Some((units, bursts))
    }

    /// Checks that committing cannot reorder downstream scheduling: every
    /// task whose dependencies resolve *within* this wave must become
    /// ready at the wave's final completion event. If one were enabled
    /// earlier, the sequential engine would start it while other wave
    /// members are still executing chunks — interleavings the speculation
    /// never saw.
    fn wave_completion_order_is_safe(
        &self,
        outcomes: &[SpecOutcome],
        bursts: &[BurstMember],
    ) -> bool {
        // Completion event of each wave task, keyed by task id.
        let mut events: HashMap<u64, (u64, u32)> = HashMap::new();
        for o in outcomes {
            events.insert(o.report.task.0, (o.finish_tick, o.worker));
        }
        for &(task, end, worker) in bursts {
            events.insert(task.0, (end, worker));
        }
        let last_event = events.values().copied().max().expect("wave is non-empty");
        let graph = self.program.graph();
        for &task_id in events.keys() {
            for &succ in graph.successors(TaskInstanceId(task_id)) {
                let mut enabling: Option<(u64, u32)> = None;
                let mut covered = true;
                for &pred in graph.predecessors(succ) {
                    if let Some(&ev) = events.get(&pred.0) {
                        enabling = Some(enabling.map_or(ev, |e| e.max(ev)));
                    } else if !self.completed[pred.index()] {
                        covered = false;
                        break;
                    }
                }
                if covered && enabling.expect("succ has a wave pred") != last_event {
                    return false;
                }
            }
        }
        true
    }

    /// Merges the speculation logs in sequential event order — `(chunk
    /// event tick, worker id)`, the event heap's key — and replays them
    /// against a fresh snapshot of the authoritative shared fabric.
    /// Returns the replayed fork (the true post-wave shared state) and the
    /// deferred non-wave victim invalidations, or `None` when any outcome
    /// diverges from the speculation.
    fn replay_and_validate(
        &self,
        outcomes: &[SpecOutcome],
        wave_mask: u64,
    ) -> Option<(MemorySystem, Vec<(u32, u64)>)> {
        let mut fork = self.mem.fork_shared();
        let mut invalidations: Vec<(u32, u64)> = Vec::new();
        let mut idx = vec![0usize; outcomes.len()];
        loop {
            // K-way pick: smallest (tick, worker) among the streams' heads
            // (each stream is tick-sorted by construction).
            let mut best: Option<(u64, u32, usize)> = None;
            for (k, o) in outcomes.iter().enumerate() {
                if idx[k] < o.ops.len() {
                    let key = (o.ops[idx[k]].tick, o.worker, k);
                    if best.is_none_or(|b| (key.0, key.1) < (b.0, b.1)) {
                        best = Some(key);
                    }
                }
            }
            let Some((_, _, k)) = best else { break };
            let o = &outcomes[k];
            let op = o.ops[idx[k]];
            idx[k] += 1;
            match op.op {
                SharedOp::Lookup { line, now, hit_level, queue_delay } => {
                    // The speculative outcome fed the core's timing; the
                    // authoritative interleaving must agree exactly.
                    if fork.replay_lookup(line, now) != (hit_level, queue_delay) {
                        return None;
                    }
                }
                SharedOp::Install { line } => fork.replay_install(line, o.worker),
                SharedOp::SnoopRead { line } => fork.replay_snoop_read(line, o.worker),
                SharedOp::SnoopWrite { line, had_others } => {
                    let others = fork.replay_snoop_write(line, o.worker);
                    if (others != 0) != had_others {
                        return None;
                    }
                    // An invalidation into another wave worker's column is
                    // state that worker's speculation never observed.
                    if others & wave_mask != 0 {
                        return None;
                    }
                    for victim in BitIter(others) {
                        invalidations.push((victim, line));
                    }
                }
            }
        }
        Some((fork, invalidations))
    }

    /// Adopts a validated epoch: the replayed shared fabric, each wave
    /// worker's private column and prefetcher state, the deferred
    /// invalidations into non-wave columns (in replay order), and a
    /// [`Running::Committed`] completion per wave worker.
    fn commit_epoch(
        &mut self,
        outcomes: Vec<SpecOutcome>,
        fork: MemorySystem,
        invalidations: Vec<(u32, u64)>,
    ) {
        self.mem.adopt_shared(fork);
        for mut o in outcomes {
            self.mem.adopt_worker_state(o.worker, &mut o.mem);
            let comp: &mut CoreComponent = &mut self.components[o.worker as usize];
            comp.core = o.core;
            let prev = comp
                .running
                .replace(Running::Committed { report: o.report, finish_tick: o.finish_tick });
            // Reclaim the sequential path's refill block for the worker's
            // next detailed task — it was never filled (the wave committed
            // before the start event ticked), but dropping it here would
            // leak an allocation per committed task.
            if let Some(Running::Detailed { mut block, .. }) = prev {
                block.clear();
                comp.spare_block = Some(block);
            }
        }
        for (victim, line) in invalidations {
            self.mem.invalidate_private(victim, line);
        }
        self.parallel.abort_streak = 0;
        self.parallel.epochs_committed += 1;
    }

    fn abort_epoch(&mut self) {
        self.parallel.epochs_aborted += 1;
        self.parallel.abort_streak += 1;
        if self.parallel.abort_streak >= ABORT_STREAK_LIMIT {
            self.parallel.disabled = true;
        }
    }
}

/// Iterator over set bits of a u64 (ascending worker ids).
struct BitIter(u64);

impl Iterator for BitIter {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            let b = self.0.trailing_zeros();
            self.0 &= self.0 - 1;
            Some(b)
        }
    }
}
