//! Set-associative cache with LRU replacement.
//!
//! The building block of the memory hierarchy: used for the private L1/L2
//! levels (one instance per core) and the shared last level (one instance).
//! Tags are stored per set in MRU-first order; associativities in the
//! evaluation are ≤ 20, so linear probing within a set is faster than any
//! clever structure.

use serde::{Deserialize, Serialize};

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (possibly evicting another).
    Miss,
}

/// Sentinel marking an empty way. Unreachable as a real tag: line
/// addresses are byte addresses shifted right by the line bits, so hitting
/// `u64::MAX` would require an address far beyond the 64-bit space.
const EMPTY: u64 = u64::MAX;

/// A set-associative, write-allocate cache with true-LRU replacement,
/// indexed by line address (byte address >> log2(line size)).
///
/// Tags live in one flat array (`assoc` consecutive slots per set, MRU
/// first, empty slots at the tail as `EMPTY`) — the hottest lookup
/// structure in the simulator, so it is kept contiguous and
/// allocation-free rather than a `Vec` per set.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `tags[set * assoc ..][..assoc]` holds the set's ways, MRU first.
    tags: Vec<u64>,
    set_shift: u32,
    set_mask: u64,
    assoc: usize,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Creates a cache of `size_bytes` capacity with `associativity` ways
    /// and `line_size`-byte lines.
    ///
    /// # Panics
    ///
    /// Panics unless `line_size` is a power of two, the number of lines is
    /// divisible by the associativity, and the resulting set count is a
    /// power of two.
    pub fn new(size_bytes: u64, associativity: u32, line_size: u32) -> Self {
        assert!(line_size.is_power_of_two(), "line size must be a power of two");
        let lines = size_bytes / line_size as u64;
        assert!(lines > 0 && lines.is_multiple_of(associativity as u64), "bad geometry");
        let num_sets = lines / associativity as u64;
        assert!(num_sets.is_power_of_two(), "set count {num_sets} must be a power of two");
        Self {
            tags: vec![EMPTY; lines as usize],
            set_shift: line_size.trailing_zeros(),
            set_mask: num_sets - 1,
            assoc: associativity as usize,
            hits: 0,
            misses: 0,
        }
    }

    /// The set's way slots, MRU first.
    #[inline]
    fn ways_mut(&mut self, line: u64) -> &mut [u64] {
        let start = (line & self.set_mask) as usize * self.assoc;
        &mut self.tags[start..start + self.assoc]
    }

    #[inline]
    fn ways(&self, line: u64) -> &[u64] {
        let start = (line & self.set_mask) as usize * self.assoc;
        &self.tags[start..start + self.assoc]
    }

    /// Converts a byte address to this cache's line address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.set_shift
    }

    /// Position of `line` among `ways`, if present. Probes the flat
    /// sentinel tag array in batches of four ways with no early exit
    /// inside a batch: the equality tests become straight-line compares
    /// the compiler can turn into SIMD lanes, where a per-way
    /// `position()` scan is a chain of data-dependent branches. Tags are
    /// unique within a set, so the first match is the only match.
    #[inline]
    fn find_way(ways: &[u64], line: u64) -> Option<usize> {
        let mut i = 0;
        while i + 4 <= ways.len() {
            let m = (ways[i] == line) as u32
                | ((ways[i + 1] == line) as u32) << 1
                | ((ways[i + 2] == line) as u32) << 2
                | ((ways[i + 3] == line) as u32) << 3;
            if m != 0 {
                return Some(i + m.trailing_zeros() as usize);
            }
            i += 4;
        }
        while i < ways.len() {
            if ways[i] == line {
                return Some(i);
            }
            i += 1;
        }
        None
    }

    /// Accesses `line` (a line address): returns `Hit` and promotes it to
    /// MRU, or fills it (LRU eviction) and returns `Miss`.
    pub fn access(&mut self, line: u64) -> AccessOutcome {
        let ways = self.ways_mut(line);
        if let Some(pos) = Self::find_way(ways, line) {
            // Move to front (MRU): one bounded rotate, no allocation.
            ways[..=pos].rotate_right(1);
            self.hits += 1;
            AccessOutcome::Hit
        } else {
            // Insert at MRU; the last slot (the LRU way, or an empty
            // sentinel when the set is not full) rotates out.
            ways.rotate_right(1);
            ways[0] = line;
            self.misses += 1;
            AccessOutcome::Miss
        }
    }

    /// True if `line` is present (does not touch LRU order or counters).
    pub fn contains(&self, line: u64) -> bool {
        self.ways(line).contains(&line)
    }

    /// Removes `line` if present (coherence invalidation). Returns whether
    /// it was present.
    pub fn invalidate(&mut self, line: u64) -> bool {
        let ways = self.ways_mut(line);
        if let Some(pos) = Self::find_way(ways, line) {
            // Shift the tail up and leave an empty slot at the end,
            // preserving the LRU order of the remaining ways.
            ways[pos..].rotate_left(1);
            *ways.last_mut().expect("assoc >= 1") = EMPTY;
            true
        } else {
            false
        }
    }

    /// Drops all contents and statistics (cold state).
    pub fn reset(&mut self) {
        self.tags.fill(EMPTY);
        self.hits = 0;
        self.misses = 0;
    }

    /// Zeroes the hit/miss counters while keeping contents (used after
    /// pre-warming so statistics cover only the measured region).
    pub fn reset_counters(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Installs `line` without touching the hit/miss counters (prefetch or
    /// prewarm fill). No-op if already present; evicts LRU when full.
    pub fn install(&mut self, line: u64) {
        let ways = self.ways_mut(line);
        if ways.contains(&line) {
            return;
        }
        ways.rotate_right(1);
        ways[0] = line;
    }

    /// Number of resident lines.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != EMPTY).count()
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.tags.len()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate over the cache's lifetime; 0 when never accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512 B
        SetAssocCache::new(512, 2, 64)
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = small();
        assert_eq!(c.access(7), AccessOutcome::Miss);
        assert_eq!(c.access(7), AccessOutcome::Hit);
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.access(0);
        c.access(4);
        // Touch 0 so 4 becomes LRU.
        assert_eq!(c.access(0), AccessOutcome::Hit);
        // Fill a third line in the same set: evicts 4, not 0.
        c.access(8);
        assert!(c.contains(0));
        assert!(!c.contains(4));
        assert!(c.contains(8));
    }

    #[test]
    fn different_sets_do_not_interfere() {
        let mut c = small();
        for line in 0..4u64 {
            assert_eq!(c.access(line), AccessOutcome::Miss);
        }
        for line in 0..4u64 {
            assert_eq!(c.access(line), AccessOutcome::Hit, "line {line}");
        }
    }

    #[test]
    fn invalidate_removes_only_target() {
        let mut c = small();
        c.access(0);
        c.access(4);
        assert!(c.invalidate(0));
        assert!(!c.contains(0));
        assert!(c.contains(4));
        assert!(!c.invalidate(0), "second invalidate is a no-op");
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut c = small();
        for line in 0..100u64 {
            c.access(line);
        }
        assert_eq!(c.occupancy(), c.capacity_lines());
        assert_eq!(c.capacity_lines(), 8);
    }

    #[test]
    fn reset_returns_to_cold_state() {
        let mut c = small();
        c.access(1);
        c.access(2);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.misses(), 0);
        assert_eq!(c.access(1), AccessOutcome::Miss);
    }

    #[test]
    fn line_of_uses_line_size() {
        let c = SetAssocCache::new(1024, 2, 64);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.line_of(6400), 100);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        SetAssocCache::new(512, 2, 48);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        // Cyclic walk over 16 lines (cache holds 8) with LRU => 0% hit rate.
        let mut c = small();
        for _ in 0..10 {
            for line in 0..16u64 {
                c.access(line);
            }
        }
        assert!(c.hit_rate() < 1e-9);
    }
}
