//! Trace providers: where the engine gets a task's instruction stream.
//!
//! The original TaskSim is trace-driven — every task instance's dynamic
//! instruction stream is read from a recorded application trace. This
//! module is the seam that makes the engine agnostic to where streams come
//! from: a [`TraceProvider`] turns a task instance into a boxed
//! [`TraceSource`], and the engine consumes whatever comes back in
//! [`InstBlock`](taskpoint_trace::InstBlock) batches.
//!
//! Two providers ship:
//!
//! * [`ProceduralTraces`] (the default) — regenerates each stream from the
//!   instance's [`TraceSpec`], the repository's stand-in for trace files;
//! * [`RecordedTraces`] — replays pre-recorded streams in the
//!   [`taskpoint_trace::encode`] binary format, falling back to
//!   the procedural generator for tasks without a recording. This is how
//!   real recorded traces enter the simulator; see
//!   `examples/recorded_trace.rs` for the full record → persist → replay
//!   round trip.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;

use bytes::Bytes;
use taskpoint_runtime::{Program, TaskInstanceId};
use taskpoint_trace::encode::DecodeError;
use taskpoint_trace::{encode, RecordedTrace, TraceSource, TraceSpec};

/// Hands the engine a [`TraceSource`] for each task instance it simulates
/// in detail.
pub trait TraceProvider {
    /// A fresh source positioned at the start of `task`'s stream. `spec`
    /// is the instance's procedural descriptor (the fallback generator).
    fn source(&self, task: TaskInstanceId, spec: &TraceSpec) -> Box<dyn TraceSource>;

    /// Like [`TraceProvider::source`], but the returned source can be
    /// moved to another thread — the engine's parallel detail layer
    /// executes speculative tasks on a scoped pool. Must produce the
    /// identical instruction stream as [`TraceProvider::source`].
    /// Providers that cannot offer `Send` sources keep the default `None`;
    /// the engine then stays on the sequential path for their tasks.
    fn source_send(
        &self,
        task: TaskInstanceId,
        spec: &TraceSpec,
    ) -> Option<Box<dyn TraceSource + Send>> {
        let _ = (task, spec);
        None
    }
}

/// The default provider: every stream is regenerated procedurally from the
/// instance's [`TraceSpec`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ProceduralTraces;

impl TraceProvider for ProceduralTraces {
    fn source(&self, _task: TaskInstanceId, spec: &TraceSpec) -> Box<dyn TraceSource> {
        Box::new(spec.source())
    }

    fn source_send(
        &self,
        _task: TaskInstanceId,
        spec: &TraceSpec,
    ) -> Option<Box<dyn TraceSource + Send>> {
        Some(Box::new(spec.source()))
    }
}

/// A recording does not fit the program it is checked against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceMismatch {
    /// A recorded stream's instruction count differs from the spec's.
    CountMismatch {
        /// The offending task instance.
        task: TaskInstanceId,
        /// Instructions in the recording.
        recorded: u64,
        /// Instructions the program's spec declares.
        expected: u64,
    },
    /// The bundle holds a task id the program does not have.
    UnknownTask {
        /// The unknown task id.
        task: TaskInstanceId,
        /// Number of instances the program declares.
        instances: u64,
    },
}

impl std::fmt::Display for TraceMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceMismatch::CountMismatch { task, recorded, expected } => write!(
                f,
                "recorded trace for {task} has {recorded} instructions, program declares {expected}"
            ),
            TraceMismatch::UnknownTask { task, instances } => {
                write!(f, "recorded trace for {task}, but the program has only {instances} tasks")
            }
        }
    }
}

impl std::error::Error for TraceMismatch {}

const BUNDLE_MAGIC: &[u8; 8] = b"TPTRACE1";

/// A bundle of pre-recorded per-task instruction streams.
///
/// Streams are stored in the [`encode`] record format, validated on
/// insertion, and keyed by task-instance id. Tasks without a recording
/// fall back to the procedural generator, so partial recordings (e.g. only
/// the hot task type) work. The bundle persists to a simple
/// length-prefixed container ([`RecordedTraces::write_to`]).
#[derive(Debug, Clone, Default)]
pub struct RecordedTraces {
    /// Validated recordings, keyed by task id (ordered, so the on-disk
    /// layout is deterministic). Validation happens once here — handing a
    /// source to the engine is a clone, not a re-scan.
    per_task: BTreeMap<u64, RecordedTrace>,
}

impl RecordedTraces {
    /// An empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records every instance of `program` by materializing its procedural
    /// stream into the binary format — the repository's stand-in for
    /// tracing a native execution.
    pub fn record_program(program: &Program) -> Self {
        let mut bundle = Self::new();
        for inst in program.instances() {
            let bytes = encode::encode(inst.trace().iter());
            let trace = RecordedTrace::new(bytes).expect("encode emits valid records");
            bundle.per_task.insert(inst.id().0, trace);
        }
        bundle
    }

    /// Packages an externally ingested trace's per-task instruction
    /// streams as a bundle, keyed by the trace's dense task indices — the
    /// same ids `taskpoint_runtime::program_from_ingested` assigns (they
    /// are generated together), so the pair drives the engine
    /// directly. The streams' `Arc` storage is shared, not copied.
    pub fn from_ingested(trace: &taskpoint_trace::IngestedTrace) -> Self {
        let mut bundle = Self::new();
        for task in trace.tasks() {
            let recorded = RecordedTrace::from_arc(std::sync::Arc::clone(&task.bytes))
                .expect("ingestion validated every record");
            bundle.per_task.insert(task.index, recorded);
        }
        bundle
    }

    /// Adds (or replaces) the recording for one task.
    ///
    /// # Errors
    ///
    /// Rejects byte streams that are not valid [`encode`] records.
    pub fn insert(&mut self, task: TaskInstanceId, bytes: Bytes) -> Result<(), DecodeError> {
        self.per_task.insert(task.0, RecordedTrace::new(bytes)?);
        Ok(())
    }

    /// The recording for one task, if present.
    pub fn get(&self, task: TaskInstanceId) -> Option<&RecordedTrace> {
        self.per_task.get(&task.0)
    }

    /// Number of recorded tasks.
    pub fn len(&self) -> usize {
        self.per_task.len()
    }

    /// Whether the bundle holds no recordings.
    pub fn is_empty(&self) -> bool {
        self.per_task.is_empty()
    }

    /// Total encoded payload size in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.per_task.values().map(|t| t.bytes().len() as u64).sum()
    }

    /// Checks that every recording belongs to a task of `program` and that
    /// its instruction count matches the task's spec — the invariant
    /// fast-forwarding (`C_i = I_i / IPC_T`) relies on.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching task.
    pub fn verify_against(&self, program: &Program) -> Result<(), TraceMismatch> {
        let instances = program.num_instances() as u64;
        for (&id, trace) in &self.per_task {
            let task = TaskInstanceId(id);
            if id >= instances {
                return Err(TraceMismatch::UnknownTask { task, instances });
            }
            let recorded = trace.instructions();
            let expected = program.instance(task).instructions();
            if recorded != expected {
                return Err(TraceMismatch::CountMismatch { task, recorded, expected });
            }
        }
        Ok(())
    }

    /// Writes the bundle to a length-prefixed container file.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(path)?);
        f.write_all(BUNDLE_MAGIC)?;
        f.write_all(&(self.per_task.len() as u64).to_le_bytes())?;
        for (&task, trace) in &self.per_task {
            f.write_all(&task.to_le_bytes())?;
            f.write_all(&(trace.bytes().len() as u64).to_le_bytes())?;
            f.write_all(trace.bytes())?;
        }
        f.flush()
    }

    /// Reads a bundle written by [`RecordedTraces::write_to`], re-validating
    /// every stream.
    ///
    /// # Errors
    ///
    /// I/O errors pass through; framing or record corruption — including
    /// length fields pointing past the end of the file — surfaces as
    /// [`io::ErrorKind::InvalidData`] (nothing is allocated from an
    /// unvalidated length).
    pub fn read_from(path: &Path) -> io::Result<Self> {
        let bad = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let data = std::fs::read(path)?;
        let mut rest = data
            .strip_prefix(BUNDLE_MAGIC)
            .ok_or_else(|| bad("not a taskpoint trace bundle (bad magic)".to_string()))?;
        let read_u64 = |rest: &mut &[u8]| -> io::Result<u64> {
            let (word, tail) = rest
                .split_first_chunk::<8>()
                .ok_or_else(|| bad("truncated trace bundle".to_string()))?;
            *rest = tail;
            Ok(u64::from_le_bytes(*word))
        };
        let count = read_u64(&mut rest)?;
        let mut bundle = Self::new();
        for _ in 0..count {
            let task = read_u64(&mut rest)?;
            let len = read_u64(&mut rest)?;
            // Validate the length against the bytes actually present
            // before slicing; a corrupt length must not abort or OOM.
            if len > rest.len() as u64 {
                return Err(bad(format!(
                    "task {task}: payload length {len} exceeds remaining file size {}",
                    rest.len()
                )));
            }
            let (payload, tail) = rest.split_at(len as usize);
            rest = tail;
            bundle
                .insert(TaskInstanceId(task), Bytes::from(payload.to_vec()))
                .map_err(|e| bad(format!("task {task}: {e}")))?;
        }
        if !rest.is_empty() {
            return Err(bad(format!("{} trailing bytes after the last record", rest.len())));
        }
        Ok(bundle)
    }
}

impl TraceProvider for RecordedTraces {
    fn source(&self, task: TaskInstanceId, spec: &TraceSpec) -> Box<dyn TraceSource> {
        match self.per_task.get(&task.0) {
            // Validated once at insert/load; handing out a source is a
            // clone of the pre-validated trace, not a re-scan.
            Some(trace) => Box::new(trace.clone()),
            None => Box::new(spec.source()),
        }
    }

    fn source_send(
        &self,
        task: TaskInstanceId,
        spec: &TraceSpec,
    ) -> Option<Box<dyn TraceSource + Send>> {
        match self.per_task.get(&task.0) {
            Some(trace) => Some(Box::new(trace.clone())),
            None => Some(Box::new(spec.source())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint_trace::{InstBlock, InstKind, Instruction};

    fn tiny_program(n: u64) -> Program {
        let mut b = Program::builder("rec");
        let ty = b.add_type("work");
        for i in 0..n {
            b.add_task(ty, TraceSpec::synthetic(i, 200), vec![]);
        }
        b.build()
    }

    /// Drains a boxed source into a vector.
    fn drain(mut source: Box<dyn TraceSource>) -> Vec<Instruction> {
        let mut block = InstBlock::new();
        let mut out = Vec::new();
        while source.fill(&mut block) > 0 {
            out.extend(block.iter());
        }
        out
    }

    #[test]
    fn recorded_program_replays_identically_to_procedural() {
        let p = tiny_program(4);
        let recorded = RecordedTraces::record_program(&p);
        assert_eq!(recorded.len(), 4);
        recorded.verify_against(&p).unwrap();
        for inst in p.instances() {
            let from_recording = drain(recorded.source(inst.id(), inst.trace()));
            let from_spec = drain(ProceduralTraces.source(inst.id(), inst.trace()));
            assert_eq!(from_recording, from_spec, "task {}", inst.id());
        }
    }

    #[test]
    fn missing_tasks_fall_back_to_procedural() {
        let p = tiny_program(2);
        let bundle = RecordedTraces::new();
        assert!(bundle.is_empty());
        let inst = &p.instances()[1];
        let got = drain(bundle.source(inst.id(), inst.trace()));
        assert_eq!(got.len() as u64, inst.instructions());
    }

    #[test]
    fn insert_validates_records() {
        let mut bundle = RecordedTraces::new();
        let err = bundle.insert(TaskInstanceId(0), Bytes::from(vec![0xFF]));
        assert_eq!(err, Err(DecodeError::BadKind(0xFF)));
        let ok = encode::encode([Instruction::compute(InstKind::IntAlu)]);
        bundle.insert(TaskInstanceId(0), ok).unwrap();
        assert_eq!(bundle.len(), 1);
        assert_eq!(bundle.total_bytes(), 1);
        assert!(bundle.get(TaskInstanceId(0)).is_some());
    }

    #[test]
    fn verify_detects_instruction_count_mismatch() {
        let p = tiny_program(1);
        let mut bundle = RecordedTraces::new();
        bundle
            .insert(TaskInstanceId(0), encode::encode([Instruction::compute(InstKind::IntAlu)]))
            .unwrap();
        let err = bundle.verify_against(&p).unwrap_err();
        assert_eq!(
            err,
            TraceMismatch::CountMismatch { task: TaskInstanceId(0), recorded: 1, expected: 200 }
        );
        assert!(err.to_string().contains("200"));
    }

    #[test]
    fn verify_detects_unknown_tasks_without_panicking() {
        let p = tiny_program(2);
        let bundle = RecordedTraces::record_program(&tiny_program(4));
        bundle.verify_against(&tiny_program(4)).unwrap();
        let err = bundle.verify_against(&p).unwrap_err();
        assert_eq!(err, TraceMismatch::UnknownTask { task: TaskInstanceId(2), instances: 2 });
        assert!(err.to_string().contains("only 2 tasks"));
    }

    #[test]
    fn ingested_bundle_pairs_with_the_ingested_program() {
        use taskpoint_runtime::program_from_ingested;
        use taskpoint_trace::IngestedTrace;
        let text = "\
%tptrace 1
T:0:alpha
B:0:5:0
I:0:int_alu
M:0:load:4000:8
E:0:5
B:0:6:0:5
I:0:fp_alu
E:0:6
";
        let trace = IngestedTrace::parse_text(text).unwrap();
        let program = program_from_ingested("ext", &trace);
        let bundle = RecordedTraces::from_ingested(&trace);
        assert_eq!(bundle.len(), 2);
        // Dense ids line up, so the bundle verifies against the program.
        bundle.verify_against(&program).unwrap();
        // The replayed stream is the recorded one, not the fallback spec.
        let got =
            drain(bundle.source(TaskInstanceId(0), program.instance(TaskInstanceId(0)).trace()));
        assert_eq!(
            got,
            vec![
                Instruction::compute(InstKind::IntAlu),
                Instruction::memory(InstKind::Load, 0x4000, 8)
            ]
        );
    }

    #[test]
    fn bundle_file_round_trips() {
        let p = tiny_program(3);
        let bundle = RecordedTraces::record_program(&p);
        let path = std::env::temp_dir().join("taskpoint_test_bundle.tptrace");
        bundle.write_to(&path).unwrap();
        let back = RecordedTraces::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), bundle.len());
        assert_eq!(back.total_bytes(), bundle.total_bytes());
        for inst in p.instances() {
            assert_eq!(
                back.get(inst.id()).map(|t| t.bytes().to_vec()),
                bundle.get(inst.id()).map(|t| t.bytes().to_vec())
            );
        }
    }

    #[test]
    fn oversized_length_field_is_invalid_data_not_an_abort() {
        // magic + count=1 + task=0 + a length far beyond the file size.
        let mut data = Vec::new();
        data.extend_from_slice(b"TPTRACE1");
        data.extend_from_slice(&1u64.to_le_bytes());
        data.extend_from_slice(&0u64.to_le_bytes());
        data.extend_from_slice(&u64::MAX.to_le_bytes());
        let path = std::env::temp_dir().join("taskpoint_test_oversized_bundle.tptrace");
        std::fs::write(&path, &data).unwrap();
        let err = RecordedTraces::read_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("exceeds remaining"));
    }

    #[test]
    fn corrupt_bundle_file_is_invalid_data() {
        let path = std::env::temp_dir().join("taskpoint_test_bad_bundle.tptrace");
        std::fs::write(&path, b"not a bundle").unwrap();
        let err = RecordedTraces::read_from(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
