//! The discrete-event component scheduler.
//!
//! The engine used to be a lockstep loop over an anonymous worker heap;
//! this module factors the time base out into three named pieces so
//! heterogeneous machines (mixed clocks, asymmetric cores) fit without
//! special cases:
//!
//! * [`Component`] — anything that owns simulated state and advances in
//!   time. *Active* components (worker cores) report when they next need
//!   to run via [`Component::next_tick`]; *passive* components (the
//!   memory hierarchy, the noise model) return `None` and are advanced
//!   synchronously by the active component that touches them, which keeps
//!   every cache access and every noise draw on the exact cycle it had in
//!   the lockstep engine.
//! * [`EventScheduler`] — a deterministic min-heap of `(tick, component)`
//!   pairs. Ties break on the stable [`ComponentId`], **not** insertion
//!   order: the pop sequence is a pure function of the scheduled set, so
//!   results are reproducible and independent of heap capacity or the
//!   order components were registered in (pinned by
//!   `tests/event_determinism.rs`).
//! * [`EventCtx`] — what a component may see while ticking: the global
//!   time, the shared memory fabric, the program and the noise model. A
//!   component hands completed tasks back through the context; the engine
//!   processes them *synchronously, in the same event* — deferring them
//!   to a same-tick follow-up event would batch completions and change
//!   observable concurrency values.
//!
//! # Time base
//!
//! The scheduler's `u64` tick is the **base clock** of the machine: the
//! cycle counter of a clock-divider-1 core. A core in a group with
//! divider `d` runs its pipeline in *core-local* cycles and converts at
//! the component boundary — local cycle `c` occurs at global tick
//! `c · d`, and a global latency of `l` ticks costs the core
//! `ceil(l / d)` local cycles. Every component therefore reschedules
//! itself only on multiples of its own divider, and for `d = 1` all
//! conversions are exact identities (the bit-identity gate of
//! `tests/block_equivalence.rs` rests on this).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use taskpoint_runtime::Program;

use crate::hierarchy::MemorySystem;
use crate::noise::NoiseModel;
use crate::report::TaskReport;

/// Stable identity of a component within one simulation.
///
/// Ids are dense (`0..n`, assigned at engine construction, worker cores
/// first) and never reused, so they double as the deterministic
/// tie-breaker of the [`EventScheduler`]: of two components scheduled for
/// the same tick, the lower id runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// The id as a dense vector index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

/// A simulated hardware component driven by the [`EventScheduler`].
pub trait Component {
    /// Short human-readable kind ("core", "memory-hierarchy", ...).
    fn name(&self) -> &str;

    /// The next global tick this component needs to run at, or `None` if
    /// it is idle (or passive — advanced synchronously by others). The
    /// engine polls this after construction and after every
    /// [`tick`](Component::tick) and (re-)schedules accordingly, so a
    /// component never schedules itself directly.
    fn next_tick(&self) -> Option<u64>;

    /// Advances the component to `ctx.now()`. Completed tasks are
    /// reported through [`EventCtx::complete`]; the follow-up wake time is
    /// whatever [`next_tick`](Component::next_tick) returns afterwards.
    fn tick(&mut self, ctx: &mut EventCtx<'_>);
}

/// Everything a component may touch while ticking.
///
/// Carries disjoint borrows of the engine's shared state so a component
/// (itself borrowed mutably from the engine's component table) can still
/// reach the memory fabric — the classic split-borrow, resolved here
/// instead of at every call site.
pub struct EventCtx<'a> {
    now: u64,
    id: ComponentId,
    /// The shared cache hierarchy and DRAM — a passive [`Component`]
    /// advanced synchronously by core accesses.
    pub mem: &'a mut MemorySystem,
    /// The program being executed (task instances, types, traces).
    pub program: &'a Program,
    /// The system-noise model, if enabled — a passive [`Component`]
    /// consulted at task completion.
    pub noise: Option<&'a NoiseModel>,
    completions: Vec<TaskReport>,
}

impl<'a> EventCtx<'a> {
    /// Builds the context for one event.
    pub fn new(
        now: u64,
        id: ComponentId,
        mem: &'a mut MemorySystem,
        program: &'a Program,
        noise: Option<&'a NoiseModel>,
    ) -> Self {
        Self { now, id, mem, program, noise, completions: Vec::new() }
    }

    /// The global tick this event fires at.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The component being ticked.
    pub fn component(&self) -> ComponentId {
        self.id
    }

    /// Reports a completed task. The engine drains these synchronously
    /// after the tick — completion effects (successor readiness, worker
    /// release, re-assignment) happen before any other event fires.
    pub fn complete(&mut self, report: TaskReport) {
        self.completions.push(report);
    }

    /// Consumes the context, yielding the completions in report order.
    pub fn into_completions(self) -> Vec<TaskReport> {
        self.completions
    }
}

/// Deterministic min-heap of scheduled component wake-ups.
///
/// Pops strictly in `(tick, id)` order: earliest tick first, lowest
/// [`ComponentId`] on ties. Because the order is a total function of the
/// *set* of scheduled pairs, neither insertion order nor the heap's
/// initial capacity can influence results.
#[derive(Debug, Default)]
pub struct EventScheduler {
    heap: BinaryHeap<Reverse<(u64, u32)>>,
}

impl EventScheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty scheduler with pre-allocated room for `capacity` events.
    /// Capacity is a host-side allocation hint only; it never affects pop
    /// order (pinned by `tests/event_determinism.rs`).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { heap: BinaryHeap::with_capacity(capacity) }
    }

    /// Schedules `component` to run at `tick`.
    pub fn schedule(&mut self, tick: u64, component: ComponentId) {
        self.heap.push(Reverse((tick, component.0)));
    }

    /// Removes and returns the earliest event, ties broken by component
    /// id.
    pub fn pop(&mut self) -> Option<(u64, ComponentId)> {
        self.heap.pop().map(|Reverse((t, id))| (t, ComponentId(id)))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_tick_order() {
        let mut s = EventScheduler::new();
        s.schedule(30, ComponentId(0));
        s.schedule(10, ComponentId(1));
        s.schedule(20, ComponentId(2));
        assert_eq!(s.pop(), Some((10, ComponentId(1))));
        assert_eq!(s.pop(), Some((20, ComponentId(2))));
        assert_eq!(s.pop(), Some((30, ComponentId(0))));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn ties_break_on_component_id() {
        let mut s = EventScheduler::new();
        // Insert in descending id order: the pop order must not care.
        for id in (0..8u32).rev() {
            s.schedule(42, ComponentId(id));
        }
        for id in 0..8u32 {
            assert_eq!(s.pop(), Some((42, ComponentId(id))));
        }
    }

    #[test]
    fn capacity_is_behavior_neutral() {
        let events = [(5u64, 3u32), (5, 1), (2, 7), (9, 0), (2, 2)];
        let drain = |mut s: EventScheduler| {
            let mut out = Vec::new();
            for &(t, id) in &events {
                s.schedule(t, ComponentId(id));
            }
            while let Some(e) = s.pop() {
                out.push(e);
            }
            out
        };
        let a = drain(EventScheduler::new());
        let b = drain(EventScheduler::with_capacity(1));
        let c = drain(EventScheduler::with_capacity(1024));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(a[0], (2, ComponentId(2)), "lowest tick, lowest id first");
    }

    #[test]
    fn len_tracks_pending_events() {
        let mut s = EventScheduler::new();
        assert!(s.is_empty());
        s.schedule(1, ComponentId(0));
        s.schedule(2, ComponentId(0));
        assert_eq!(s.len(), 2);
        s.pop();
        assert_eq!(s.len(), 1);
    }
}
