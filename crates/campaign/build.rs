//! Computes the workspace *code fingerprint* baked into the binary as
//! `TASKPOINT_CODE_FINGERPRINT`.
//!
//! The content-addressed result store keys cached cells by their spec hash
//! *and* this fingerprint, so editing any crate that can change simulation
//! output (trace generation, runtime scheduling, the simulator, the
//! sampling controller, the workload generators, the stats kernels, or the
//! campaign layer itself) silently invalidates every cached result instead
//! of serving stale ones.

use std::fs;
use std::io::Read;
use std::path::{Path, PathBuf};

/// FNV-1a over a byte stream, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs")
            || path.file_name().is_some_and(|n| n == "Cargo.toml")
            // The checked-in fixture traces are compiled into the external
            // workload family (include_bytes!) and directly determine
            // external-cell results, so they are part of the fingerprint.
            || path.extension().is_some_and(|e| e == "tptrace" || e == "tptraceb")
        {
            out.push(path);
        }
    }
}

fn main() {
    let manifest = PathBuf::from(std::env::var("CARGO_MANIFEST_DIR").unwrap());
    let crates_root = manifest.parent().expect("crates/ parent").to_path_buf();

    // Every crate whose code can influence a simulation result. The
    // telemetry crate is watched too: recording must never perturb
    // results, but a bug there would — better to recompute than to serve
    // a cache poisoned by an instrumentation regression.
    let watched = [
        "core",
        "runtime",
        "trace",
        "stats",
        "workloads",
        "sim",
        "campaign",
        "accuracy",
        "telemetry",
    ];
    let mut files = Vec::new();
    for name in watched {
        let dir = crates_root.join(name);
        println!("cargo:rerun-if-changed={}", dir.display());
        collect_rs_files(&dir, &mut files);
    }
    files.sort();

    let mut h = Fnv::new();
    let mut buf = Vec::new();
    for path in &files {
        // Hash the path relative to crates/ so the fingerprint is stable
        // across checkouts at different absolute locations.
        let rel = path.strip_prefix(&crates_root).unwrap_or(path);
        h.write(rel.to_string_lossy().as_bytes());
        h.write(&[0]);
        buf.clear();
        if let Ok(mut f) = fs::File::open(path) {
            let _ = f.read_to_end(&mut buf);
        }
        h.write(&buf);
        h.write(&[0xFF]);
    }
    println!("cargo:rustc-env=TASKPOINT_CODE_FINGERPRINT={:016x}", h.0);
}
