//! The campaign determinism and resume guarantees, end to end:
//!
//! * the same sweep run with 1 and 8 executor workers emits byte-identical
//!   canonical JSONL;
//! * a second run over the same store completes entirely from cache (zero
//!   cells re-simulated) with, again, identical bytes;
//! * invalidating one cell recomputes exactly that cell.

use std::path::PathBuf;

use taskpoint::TaskPointConfig;
use taskpoint_campaign::{Campaign, CellKind, CellSpec, Executor, ResultStore};
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::MachineConfig;

fn tmp_root(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small but representative sweep: reference, sampled (both policies)
/// and variation cells over two kernels on the tiny test machine.
fn sweep() -> Vec<CellSpec> {
    let scale = ScaleConfig::quick();
    let machine = MachineConfig::tiny_test();
    let mut specs = Vec::new();
    for bench in [Benchmark::Spmv, Benchmark::Reduction] {
        specs.push(CellSpec::reference(bench, scale, machine.clone(), 2));
        specs.push(CellSpec::sampled(bench, scale, machine.clone(), 2, TaskPointConfig::lazy()));
        specs.push(CellSpec::sampled(
            bench,
            scale,
            machine.clone(),
            4,
            TaskPointConfig::periodic(),
        ));
        specs.push(CellSpec {
            bench,
            scale,
            machine: machine.clone(),
            workers: 4,
            kind: CellKind::Variation { noise_seed: Some(42) },
        });
    }
    specs
}

#[test]
fn one_and_eight_workers_emit_identical_jsonl() {
    let specs = sweep();
    let run = |name: &str, workers: usize| {
        let campaign = Campaign::new(ResultStore::at(tmp_root(name)), Executor::new(workers));
        let report = campaign.run(&specs);
        assert_eq!(report.computed, specs.len(), "{name}: fresh store computes everything");
        report.jsonl()
    };
    let sequential = run("det-w1", 1);
    let parallel = run("det-w8", 8);
    assert_eq!(sequential.as_bytes(), parallel.as_bytes(), "worker count changed the bytes");
    assert_eq!(sequential.lines().count(), specs.len());
    // And a third width, for good measure.
    let three = run("det-w3", 3);
    assert_eq!(sequential, three);
}

#[test]
fn second_run_completes_from_cache_with_identical_bytes() {
    let specs = sweep();
    let root = tmp_root("resume");

    let first = Campaign::new(ResultStore::at(root.clone()), Executor::new(4)).run(&specs);
    assert_eq!(first.computed, specs.len());
    assert_eq!(first.cached, 0);

    // A brand-new campaign (no in-memory state) over the same store.
    let second = Campaign::new(ResultStore::at(root.clone()), Executor::new(4)).run(&specs);
    assert_eq!(second.computed, 0, "second run must be pure cache");
    assert_eq!(second.cached, specs.len());
    assert_eq!(first.jsonl().as_bytes(), second.jsonl().as_bytes());
    for outcome in &second.outcomes {
        assert!(outcome.cached);
    }

    // Invalidate exactly one cell: the next run recomputes exactly it.
    let store = ResultStore::at(root);
    assert!(store.invalidate_cell(&specs[1].hash_hex()));
    let third = Campaign::new(store, Executor::new(4)).run(&specs);
    assert_eq!(third.computed, 1, "only the invalidated cell recomputes");
    assert_eq!(third.jsonl(), first.jsonl(), "recomputed cell reproduces its bytes");
}

#[test]
fn different_code_fingerprint_misses_the_cache() {
    let specs: Vec<CellSpec> = sweep().into_iter().take(2).collect();
    let root = tmp_root("fingerprint");
    let report = Campaign::new(ResultStore::at(root.clone()), Executor::new(2)).run(&specs);
    assert_eq!(report.computed, specs.len());
    // Same store root, simulated different code version.
    let stale = ResultStore::at(root).with_fingerprint("0123456789abcdef");
    for spec in &specs {
        assert!(!stale.contains(&spec.hash_hex()), "other fingerprint must not see entries");
    }
}

#[test]
fn interrupted_campaign_resumes_from_completed_cells() {
    // Simulate an interruption by running only a prefix of the sweep,
    // then the full sweep: the prefix cells must be served from cache.
    let specs = sweep();
    let root = tmp_root("interrupt");
    let prefix = &specs[..3];
    let partial = Campaign::new(ResultStore::at(root.clone()), Executor::new(2)).run(prefix);
    assert_eq!(partial.computed, 3);
    let full = Campaign::new(ResultStore::at(root), Executor::new(2)).run(&specs);
    assert_eq!(full.cached, 3, "completed prefix resumes from store");
    assert_eq!(full.computed, specs.len() - 3);
}
