//! Minimal JSON reading/writing for the result store.
//!
//! The vendored `serde` is a no-op stub (see `vendor/README.md`), so the
//! campaign layer carries its own tiny JSON implementation. The writer is
//! *canonical*: object keys keep insertion order, numbers use Rust's
//! shortest round-trip formatting, and there is no whitespace — so the
//! bytes produced for a given value are identical across runs, platforms
//! and executor worker counts. That canonical form is what the campaign
//! determinism guarantee is stated over.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`; u64 counters round-trip exactly up
    /// to 2^53, far above any count the evaluation produces).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. Insertion order is preserved by keeping a parallel key
    /// list, making writer output canonical.
    Obj(Object),
}

/// A JSON object preserving insertion order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Object {
    keys: Vec<String>,
    map: BTreeMap<String, Value>,
}

impl Object {
    /// Creates an empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a field, preserving first-insertion order.
    pub fn set(&mut self, key: &str, value: Value) {
        if !self.map.contains_key(key) {
            self.keys.push(key.to_string());
        }
        self.map.insert(key.to_string(), value);
    }

    /// Looks a field up.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.map.get(key)
    }

    /// The field names in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.keys.iter().map(String::as_str)
    }

    /// Fetches a number field as `f64`.
    pub fn num(&self, key: &str) -> Option<f64> {
        match self.get(key) {
            Some(Value::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// Fetches a number field as `u64` (rejecting negatives/fractions).
    pub fn u64(&self, key: &str) -> Option<u64> {
        let n = self.num(key)?;
        if n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53) {
            Some(n as u64)
        } else {
            None
        }
    }

    /// Fetches a string field.
    pub fn str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Value::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// Fetches a nested object field.
    pub fn obj(&self, key: &str) -> Option<&Object> {
        match self.get(key) {
            Some(Value::Obj(o)) => Some(o),
            _ => None,
        }
    }
}

impl Value {
    /// Convenience constructor for object values.
    pub fn object() -> Object {
        Object::new()
    }

    /// Serializes to canonical JSON (no whitespace, insertion-ordered
    /// keys, shortest round-trip numbers).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_number(*n, out),
            Value::Str(s) => write_string(s, out),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(obj) => {
                out.push('{');
                for (i, key) in obj.keys().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    obj.get(key).expect("key list in sync").write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Value, ParseError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(v)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; the store never produces them, but a guard
        // beats emitting unparseable output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`Value::parse`], with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut obj = Object::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(obj));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj.set(&key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(obj));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Value::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for (text, v) in [
            ("null", Value::Null),
            ("true", Value::Bool(true)),
            ("false", Value::Bool(false)),
            ("42", Value::Num(42.0)),
            ("-7", Value::Num(-7.0)),
            ("1.5", Value::Num(1.5)),
            ("\"hi\"", Value::Str("hi".to_string())),
        ] {
            assert_eq!(Value::parse(text).unwrap(), v, "{text}");
            assert_eq!(Value::parse(&v.to_json()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn round_trips_structures() {
        let mut inner = Object::new();
        inner.set("b", Value::Num(2.0));
        let mut obj = Object::new();
        obj.set("a", Value::Num(1.0));
        obj.set("nested", Value::Obj(inner));
        obj.set("list", Value::Arr(vec![Value::Num(1.0), Value::Str("x".into()), Value::Null]));
        let v = Value::Obj(obj);
        let text = v.to_json();
        assert_eq!(text, "{\"a\":1,\"nested\":{\"b\":2},\"list\":[1,\"x\",null]}");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut obj = Object::new();
        obj.set("z", Value::Num(1.0));
        obj.set("a", Value::Num(2.0));
        obj.set("z", Value::Num(3.0)); // replace keeps position
        assert_eq!(Value::Obj(obj).to_json(), "{\"z\":3,\"a\":2}");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".to_string());
        let text = v.to_json();
        assert_eq!(text, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
        assert_eq!(Value::parse(&text).unwrap(), v);
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, 1.0, -1.0, 0.05, 1e15, 123456789.123, f64::MIN_POSITIVE, 2f64.powi(53)] {
            let text = Value::Num(n).to_json();
            match Value::parse(&text).unwrap() {
                Value::Num(back) => assert_eq!(back.to_bits(), n.to_bits(), "{n} via {text}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn large_u64_counters_fit() {
        let mut o = Object::new();
        o.set("cycles", Value::Num(8_536_967.0));
        let v = Value::Obj(o);
        let parsed = Value::parse(&v.to_json()).unwrap();
        match parsed {
            Value::Obj(o) => assert_eq!(o.u64("cycles"), Some(8_536_967)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn non_finite_writes_null() {
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let e = Value::parse("{\"a\": }").unwrap_err();
        assert!(e.offset > 0);
        assert!(Value::parse("[1,2").is_err());
        assert!(Value::parse("12 34").is_err());
    }

    #[test]
    fn accessors() {
        let v = Value::parse("{\"s\":\"x\",\"n\":3,\"o\":{\"k\":1},\"neg\":-1.5}").unwrap();
        let Value::Obj(o) = v else { unreachable!() };
        assert_eq!(o.str("s"), Some("x"));
        assert_eq!(o.u64("n"), Some(3));
        assert_eq!(o.num("neg"), Some(-1.5));
        assert_eq!(o.u64("neg"), None);
        assert!(o.obj("o").is_some());
        assert!(o.get("missing").is_none());
    }
}
