//! Named sweeps: the paper's evaluation matrix as cell-spec generators.
//!
//! Each sweep is the cell list behind one table or figure (or the CI smoke
//! set). The bench crate's figure binaries and the `campaign` CLI both
//! build their specs here, so a figure regenerated interactively and a
//! sweep run by the CLI hit the same cache entries.

use taskpoint::{SamplingPolicy, TaskPointConfig};
use taskpoint_workloads::{Benchmark, ExternalWorkload, ScaleConfig};
use tasksim::{CoreGroupConfig, MachineConfig};

use crate::spec::CellSpec;

/// Threads used by the high-performance-machine figures (7 and 9).
pub const HIGH_PERF_THREADS: [u32; 4] = [8, 16, 32, 64];
/// Threads used by the low-power-machine figures (8 and 10).
pub const LOW_POWER_THREADS: [u32; 4] = [1, 2, 4, 8];
/// Threads used by the Fig. 6 sensitivity analysis.
pub const SENSITIVITY_THREADS: [u32; 2] = [32, 64];
/// Noise seed of the Fig. 1 "native execution" stand-in.
pub const FIG1_NOISE_SEED: u64 = 0xF161;

/// Which parameter Fig. 6 sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepPart {
    /// Fig. 6a: warmup size W (H=10, P=∞).
    Warmup,
    /// Fig. 6b: history size H (W=min(2,H), P=∞).
    History,
    /// Fig. 6c: sampling period P (W=2, H=4).
    Period,
}

/// The labelled controller configurations of one Fig. 6 part.
pub fn sensitivity_configs(part: SweepPart) -> Vec<(String, TaskPointConfig)> {
    match part {
        SweepPart::Warmup => (0..=10u64)
            .map(|w| (w.to_string(), TaskPointConfig::lazy().with_warmup(w).with_history(10)))
            .collect(),
        SweepPart::History => (1..=10usize)
            // W clamped to H: the paper's fixed W=2 is out of range for
            // the H=1 point now that configs validate `warmup <= history`.
            .map(|h| {
                (
                    h.to_string(),
                    TaskPointConfig::lazy().with_history(h).with_warmup(2.min(h as u64)),
                )
            })
            .collect(),
        SweepPart::Period => [10u64, 25, 50, 100, 250, 500, 1000]
            .into_iter()
            .map(|p| {
                (
                    p.to_string(),
                    TaskPointConfig::periodic().with_policy(SamplingPolicy::Periodic { period: p }),
                )
            })
            .collect(),
    }
}

/// Sampled cells of one error/speedup figure: every benchmark × every
/// thread count under `config` on `machine`.
pub fn error_speedup_specs(
    scale: ScaleConfig,
    machine: &MachineConfig,
    threads: &[u32],
    config: TaskPointConfig,
) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for bench in Benchmark::ALL {
        for &t in threads {
            specs.push(CellSpec::sampled(bench, scale, machine.clone(), t, config));
        }
    }
    specs
}

/// Sampled cells of one Fig. 6 part: every labelled config × the
/// sensitivity benchmarks × 32/64 threads, grouped by config.
pub fn sensitivity_specs(scale: ScaleConfig, part: SweepPart) -> Vec<CellSpec> {
    let machine = MachineConfig::high_performance();
    let mut specs = Vec::new();
    for (_, config) in sensitivity_configs(part) {
        for bench in Benchmark::SENSITIVITY_SET {
            for &t in &SENSITIVITY_THREADS {
                specs.push(CellSpec::sampled(bench, scale, machine.clone(), t, config));
            }
        }
    }
    specs
}

/// Variation cells (Figs. 1 and 5): every benchmark at 8 threads on
/// `machine`, with or without the noise model.
pub fn variation_specs(
    scale: ScaleConfig,
    machine: &MachineConfig,
    noise_seed: Option<u64>,
) -> Vec<CellSpec> {
    Benchmark::ALL
        .into_iter()
        .map(|bench| CellSpec {
            bench,
            scale,
            machine: machine.clone(),
            workers: 8,
            kind: crate::spec::CellKind::Variation { noise_seed },
        })
        .collect()
}

/// ROB sizes of the custom-machine design-space grid.
pub const DESIGN_SPACE_ROBS: [u32; 3] = [64, 168, 256];
/// L2 sizes (KiB) of the custom-machine design-space grid.
pub const DESIGN_SPACE_L2_KB: [u64; 3] = [512, 2048, 4096];

/// Exploration cells of the custom-machine design-space sweep: a 3×3
/// ROB × L2 grid of variants of the high-performance machine, each taken
/// both homogeneous and as a big.LITTLE split (4 big cores at full clock
/// plus 4 little cores at divider 2 sharing the grid point's L2), each
/// running cholesky at 8 threads under lazy sampling. No reference cells
/// — ranking designs cheaply is the entire point (the full machine config
/// is content-hashed, so every variant gets its own cache entry).
pub fn design_space_specs(scale: ScaleConfig) -> Vec<CellSpec> {
    let mut specs = Vec::new();
    for rob in DESIGN_SPACE_ROBS {
        for l2_kb in DESIGN_SPACE_L2_KB {
            let mut machine = MachineConfig::high_performance();
            machine.core.rob_size = rob;
            machine.caches[1].size_bytes = l2_kb * 1024;
            machine.name = format!("rob{rob}-l2_{l2_kb}k");
            let mut split = machine.clone();
            split.name = format!("rob{rob}-l2_{l2_kb}k-biglittle");
            split.core_groups = vec![
                CoreGroupConfig { name: "big".into(), cores: 4, clock_divider: 1, core: None },
                CoreGroupConfig { name: "little".into(), cores: 4, clock_divider: 2, core: None },
            ];
            for variant in [machine, split] {
                specs.push(CellSpec::explore(
                    Benchmark::Cholesky,
                    scale,
                    variant,
                    8,
                    TaskPointConfig::lazy(),
                ));
            }
        }
    }
    specs
}

/// Kernel workloads of the `hetero` sweep.
pub const HETERO_KERNELS: [Benchmark; 2] = [Benchmark::Cholesky, Benchmark::Spmv];

/// Simulated worker count of the `hetero` sweep (2 big + 2 little cores).
pub const HETERO_WORKERS: u32 = 4;

/// Cells of the `hetero` sweep: for each kernel, a full-detail reference
/// and a lazy-sampled run on the big.LITTLE machine, plus a homogeneous
/// high-performance reference at the same worker count as the baseline.
/// The heterogeneous cells carry per-group metrics in their JSONL
/// records; the homogeneous baseline proves the same record shape stays
/// group-free.
pub fn hetero_specs(scale: ScaleConfig) -> Vec<CellSpec> {
    let hetero = MachineConfig::big_little(2, 2);
    let baseline = MachineConfig::high_performance();
    let mut specs = Vec::new();
    for bench in HETERO_KERNELS {
        specs.push(CellSpec::reference(bench, scale, hetero.clone(), HETERO_WORKERS));
        specs.push(CellSpec::sampled(
            bench,
            scale,
            hetero.clone(),
            HETERO_WORKERS,
            TaskPointConfig::lazy(),
        ));
        specs.push(CellSpec::reference(bench, scale, baseline.clone(), HETERO_WORKERS));
    }
    specs
}

/// Simulated worker counts of the `ingested` sweep.
pub const INGESTED_WORKERS: u32 = 2;

/// Cells of the `ingested` sweep: for every external (fixture-trace)
/// workload, a full-detail reference plus lazy- and periodic-sampled runs
/// compared against it — the same sampled-vs-reference shape as the paper
/// figures, but over *ingested* traces replayed from the
/// `RecordedTraces` bundle instead of procedural streams.
///
/// External workloads replay fixed recordings, so `scale` only keys the
/// cache entries; it does not change the simulated work.
pub fn ingested_specs(scale: ScaleConfig) -> Vec<CellSpec> {
    let machine = MachineConfig::low_power();
    let mut specs = Vec::new();
    for workload in ExternalWorkload::ALL {
        let bench = Benchmark::External(workload);
        specs.push(CellSpec::reference(bench, scale, machine.clone(), INGESTED_WORKERS));
        for config in [TaskPointConfig::lazy(), TaskPointConfig::periodic()] {
            specs.push(CellSpec::sampled(bench, scale, machine.clone(), INGESTED_WORKERS, config));
        }
    }
    specs
}

/// Relative-CI targets of the `adaptive` sweep, loose → tight. Each
/// target is one operating point of the error/speedup frontier.
pub const ADAPTIVE_TARGETS: [f64; 3] = [0.10, 0.05, 0.02];

/// Pilot samples per stratum of the `adaptive` sweep's stratified cells.
pub const STRATIFIED_PILOT: u64 = 4;

/// Detailed budgets of the `adaptive` sweep's stratified cells, small →
/// large. Each budget is one operating point of the frontier, head to
/// head against the CI-target cells at comparable detail spend.
pub const STRATIFIED_BUDGETS: [u64; 2] = [64, 256];

/// Kernel workloads of the `adaptive` sweep.
pub const ADAPTIVE_KERNELS: [Benchmark; 2] = [Benchmark::Spmv, Benchmark::Cholesky];

/// Simulated worker count of the `adaptive` sweep's kernel cells.
pub const ADAPTIVE_WORKERS: u32 = 4;

/// The benchmark/worker pairs the `adaptive` sweep covers: the kernel set
/// plus every external (ingested fixture) workload. External cells use
/// [`INGESTED_WORKERS`] so their reference/lazy/periodic cells coincide —
/// and share cache entries — with the `ingested` sweep.
pub fn adaptive_workloads() -> Vec<(Benchmark, u32)> {
    let mut workloads: Vec<(Benchmark, u32)> =
        ADAPTIVE_KERNELS.into_iter().map(|b| (b, ADAPTIVE_WORKERS)).collect();
    workloads.extend(ExternalWorkload::ALL.map(|w| (Benchmark::External(w), INGESTED_WORKERS)));
    workloads
}

/// Cells of the `adaptive` sweep: for every workload, a full-detail
/// reference plus lazy, periodic, three confidence-driven cells (one per
/// [`ADAPTIVE_TARGETS`] entry) and two budget-driven stratified cells
/// (one per [`STRATIFIED_BUDGETS`] entry) compared against it. The
/// emitted JSONL is the error/speedup **frontier**: each policy column
/// trades detailed instances (→ wall clock) against cycles error; the
/// adaptive cells record their configured vs achieved per-cluster CI and
/// the stratified cells their pilot/budget/allocation split — the
/// head-to-head at matched detail spend.
pub fn adaptive_specs(scale: ScaleConfig) -> Vec<CellSpec> {
    let machine = MachineConfig::low_power();
    let mut specs = Vec::new();
    for (bench, workers) in adaptive_workloads() {
        specs.push(CellSpec::reference(bench, scale, machine.clone(), workers));
        let mut configs = vec![TaskPointConfig::lazy(), TaskPointConfig::periodic()];
        configs.extend(ADAPTIVE_TARGETS.map(TaskPointConfig::adaptive));
        configs
            .extend(STRATIFIED_BUDGETS.map(|b| TaskPointConfig::stratified(STRATIFIED_PILOT, b)));
        for config in configs {
            specs.push(CellSpec::sampled(bench, scale, machine.clone(), workers, config));
        }
    }
    specs
}

/// Reference cells of Table I: every benchmark at 1 and 64 threads on the
/// high-performance machine.
pub fn table1_specs(scale: ScaleConfig) -> Vec<CellSpec> {
    let machine = MachineConfig::high_performance();
    let mut specs = Vec::new();
    for bench in Benchmark::ALL {
        for t in [1u32, 64] {
            specs.push(CellSpec::reference(bench, scale, machine.clone(), t));
        }
    }
    specs
}

/// A named sweep the CLI can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sweep {
    /// A small CI set: three kernels × two thread counts, lazy sampling,
    /// low-power machine, plus one variation cell.
    Smoke,
    /// Table I reference runs.
    Table1,
    /// Fig. 1 (variation, noise model).
    Fig1,
    /// Fig. 5 (variation, clean simulation).
    Fig5,
    /// Fig. 6a (warmup sweep).
    Fig6a,
    /// Fig. 6b (history sweep).
    Fig6b,
    /// Fig. 6c (period sweep).
    Fig6c,
    /// Fig. 7 (periodic, high-performance).
    Fig7,
    /// Fig. 8 (periodic, low-power).
    Fig8,
    /// Fig. 9 (lazy, high-performance).
    Fig9,
    /// Fig. 10 (lazy, low-power).
    Fig10,
    /// Custom-machine design-space exploration (ROB × L2 grid, each point
    /// homogeneous and big.LITTLE-split; explore cells, no references).
    DesignSpace,
    /// Heterogeneous big.LITTLE cells: reference + lazy-sampled per
    /// kernel, with a homogeneous reference baseline.
    Hetero,
    /// Sampled-vs-reference cells over the external (ingested
    /// fixture-trace) workloads.
    Ingested,
    /// The error/speedup frontier: reference vs lazy vs periodic vs three
    /// adaptive CI targets over kernels + external workloads.
    Adaptive,
    /// Every table and figure sweep (excludes `smoke`, `design-space`,
    /// `hetero`, `ingested` and `adaptive`).
    All,
}

impl Sweep {
    /// Every named sweep, in CLI listing order.
    pub const ALL: [Sweep; 16] = [
        Sweep::Smoke,
        Sweep::Table1,
        Sweep::Fig1,
        Sweep::Fig5,
        Sweep::Fig6a,
        Sweep::Fig6b,
        Sweep::Fig6c,
        Sweep::Fig7,
        Sweep::Fig8,
        Sweep::Fig9,
        Sweep::Fig10,
        Sweep::DesignSpace,
        Sweep::Hetero,
        Sweep::Ingested,
        Sweep::Adaptive,
        Sweep::All,
    ];

    /// The CLI name.
    pub fn name(self) -> &'static str {
        match self {
            Sweep::Smoke => "smoke",
            Sweep::Table1 => "table1",
            Sweep::Fig1 => "fig1",
            Sweep::Fig5 => "fig5",
            Sweep::Fig6a => "fig6a",
            Sweep::Fig6b => "fig6b",
            Sweep::Fig6c => "fig6c",
            Sweep::Fig7 => "fig7",
            Sweep::Fig8 => "fig8",
            Sweep::Fig9 => "fig9",
            Sweep::Fig10 => "fig10",
            Sweep::DesignSpace => "design-space",
            Sweep::Hetero => "hetero",
            Sweep::Ingested => "ingested",
            Sweep::Adaptive => "adaptive",
            Sweep::All => "all",
        }
    }

    /// What the sweep covers.
    pub fn description(self) -> &'static str {
        match self {
            Sweep::Smoke => "CI smoke set: 3 kernels x 2 thread counts, lazy, low-power",
            Sweep::Table1 => "Table I reference runs (1 and 64 threads, high-performance)",
            Sweep::Fig1 => "Fig. 1 IPC variation, native-execution noise model, 8 threads",
            Sweep::Fig5 => "Fig. 5 IPC variation, simulation, 8 threads",
            Sweep::Fig6a => "Fig. 6a warmup sensitivity (W = 0..10)",
            Sweep::Fig6b => "Fig. 6b history sensitivity (H = 1..10)",
            Sweep::Fig6c => "Fig. 6c period sensitivity (P = 10..1000)",
            Sweep::Fig7 => "Fig. 7 periodic sampling, high-performance",
            Sweep::Fig8 => "Fig. 8 periodic sampling, low-power",
            Sweep::Fig9 => "Fig. 9 lazy sampling, high-performance",
            Sweep::Fig10 => "Fig. 10 lazy sampling, low-power",
            Sweep::DesignSpace => {
                "custom-machine DSE: 3x3 ROB x L2 grid x {homo, big.LITTLE}, cholesky, lazy"
            }
            Sweep::Hetero => {
                "big.LITTLE machine: reference + lazy per kernel, vs homogeneous baseline"
            }
            Sweep::Ingested => "external fixture traces: reference + lazy/periodic sampled cells",
            Sweep::Adaptive => {
                "error/speedup frontier: lazy vs periodic vs 3 adaptive CI targets vs 2 \
                 stratified budgets, low-power"
            }
            Sweep::All => {
                "every table and figure sweep (excludes smoke, design-space, hetero, ingested, adaptive)"
            }
        }
    }

    /// Looks a sweep up by CLI name.
    pub fn by_name(name: &str) -> Option<Sweep> {
        Sweep::ALL.into_iter().find(|s| s.name() == name)
    }

    /// The sweep's cell list at the given scale, in emission order.
    pub fn specs(self, scale: ScaleConfig) -> Vec<CellSpec> {
        match self {
            Sweep::Smoke => {
                let machine = MachineConfig::low_power();
                let mut specs = Vec::new();
                for bench in [Benchmark::Spmv, Benchmark::Reduction, Benchmark::Histogram] {
                    for t in [2u32, 4] {
                        specs.push(CellSpec::sampled(
                            bench,
                            scale,
                            machine.clone(),
                            t,
                            TaskPointConfig::lazy(),
                        ));
                    }
                }
                specs.push(CellSpec {
                    bench: Benchmark::Spmv,
                    scale,
                    machine: MachineConfig::high_performance(),
                    workers: 8,
                    kind: crate::spec::CellKind::Variation { noise_seed: None },
                });
                specs
            }
            Sweep::Table1 => table1_specs(scale),
            Sweep::Fig1 => {
                variation_specs(scale, &MachineConfig::high_performance(), Some(FIG1_NOISE_SEED))
            }
            Sweep::Fig5 => variation_specs(scale, &MachineConfig::high_performance(), None),
            Sweep::Fig6a => sensitivity_specs(scale, SweepPart::Warmup),
            Sweep::Fig6b => sensitivity_specs(scale, SweepPart::History),
            Sweep::Fig6c => sensitivity_specs(scale, SweepPart::Period),
            Sweep::Fig7 => error_speedup_specs(
                scale,
                &MachineConfig::high_performance(),
                &HIGH_PERF_THREADS,
                TaskPointConfig::periodic(),
            ),
            Sweep::Fig8 => error_speedup_specs(
                scale,
                &MachineConfig::low_power(),
                &LOW_POWER_THREADS,
                TaskPointConfig::periodic(),
            ),
            Sweep::Fig9 => error_speedup_specs(
                scale,
                &MachineConfig::high_performance(),
                &HIGH_PERF_THREADS,
                TaskPointConfig::lazy(),
            ),
            Sweep::Fig10 => error_speedup_specs(
                scale,
                &MachineConfig::low_power(),
                &LOW_POWER_THREADS,
                TaskPointConfig::lazy(),
            ),
            Sweep::DesignSpace => design_space_specs(scale),
            Sweep::Hetero => hetero_specs(scale),
            Sweep::Ingested => ingested_specs(scale),
            Sweep::Adaptive => adaptive_specs(scale),
            Sweep::All => {
                // `smoke` is a CI subset of other sweeps; `design-space`,
                // `hetero`, `ingested` and `adaptive` are not paper
                // tables/figures: none joins the union.
                let mut specs = Vec::new();
                for sweep in Sweep::ALL {
                    if !matches!(
                        sweep,
                        Sweep::All
                            | Sweep::Smoke
                            | Sweep::DesignSpace
                            | Sweep::Hetero
                            | Sweep::Ingested
                            | Sweep::Adaptive
                    ) {
                        specs.extend(sweep.specs(scale));
                    }
                }
                specs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for s in Sweep::ALL {
            assert_eq!(Sweep::by_name(s.name()), Some(s));
            assert!(!s.description().is_empty());
        }
        assert_eq!(Sweep::by_name("fig99"), None);
    }

    #[test]
    fn figure_sweep_sizes_match_the_paper_matrix() {
        let scale = ScaleConfig::quick();
        assert_eq!(Sweep::Fig7.specs(scale).len(), 19 * 4);
        assert_eq!(Sweep::Fig8.specs(scale).len(), 19 * 4);
        assert_eq!(Sweep::Fig6a.specs(scale).len(), 11 * 5 * 2);
        assert_eq!(Sweep::Fig6b.specs(scale).len(), 10 * 5 * 2);
        assert_eq!(Sweep::Fig6c.specs(scale).len(), 7 * 5 * 2);
        assert_eq!(Sweep::Table1.specs(scale).len(), 19 * 2);
        assert_eq!(Sweep::Fig1.specs(scale).len(), 19);
        assert_eq!(Sweep::Smoke.specs(scale).len(), 7);
        // 3x3 ROB x L2 grid, each point homogeneous + big.LITTLE-split.
        assert_eq!(Sweep::DesignSpace.specs(scale).len(), 9 * 2);
        // 2 kernels x (hetero reference + hetero lazy + homogeneous ref).
        assert_eq!(Sweep::Hetero.specs(scale).len(), 2 * 3);
        assert_eq!(Sweep::Ingested.specs(scale).len(), 2 * 3);
        // (2 kernels + 2 external) x (reference + lazy + periodic + 3 CI
        // targets + 2 stratified budgets).
        assert_eq!(Sweep::Adaptive.specs(scale).len(), 4 * 8);
    }

    #[test]
    fn adaptive_sweep_shares_cells_with_the_ingested_sweep() {
        // The external reference/lazy/periodic cells must hash identically
        // to the ingested sweep's, so CI runs hit the shared cache.
        let scale = ScaleConfig::quick();
        let ingested: std::collections::HashSet<String> =
            Sweep::Ingested.specs(scale).iter().map(CellSpec::hash_hex).collect();
        let shared = Sweep::Adaptive
            .specs(scale)
            .iter()
            .filter(|s| ingested.contains(&s.hash_hex()))
            .count();
        assert_eq!(shared, 6, "2 external workloads x (reference + lazy + periodic)");
    }

    #[test]
    fn all_is_the_union_of_the_evaluation_sweeps() {
        let scale = ScaleConfig::quick();
        let all = Sweep::All.specs(scale);
        let sum: usize = Sweep::ALL
            .into_iter()
            .filter(|s| {
                !matches!(
                    s,
                    Sweep::All
                        | Sweep::Smoke
                        | Sweep::DesignSpace
                        | Sweep::Hetero
                        | Sweep::Ingested
                        | Sweep::Adaptive
                )
            })
            .map(|s| s.specs(scale).len())
            .sum();
        assert_eq!(all.len(), sum);
    }

    #[test]
    fn specs_within_a_sweep_have_unique_hashes() {
        let scale = ScaleConfig::quick();
        for sweep in [
            Sweep::Smoke,
            Sweep::Fig7,
            Sweep::Fig6a,
            Sweep::Table1,
            Sweep::Fig1,
            Sweep::DesignSpace,
            Sweep::Hetero,
            Sweep::Ingested,
            Sweep::Adaptive,
        ] {
            let specs = sweep.specs(scale);
            let hashes: std::collections::HashSet<String> =
                specs.iter().map(CellSpec::hash_hex).collect();
            assert_eq!(hashes.len(), specs.len(), "{}", sweep.name());
        }
    }
}
