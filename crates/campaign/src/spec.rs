//! Cell specifications: the unit of work a campaign schedules, caches and
//! emits.
//!
//! A [`CellSpec`] pins *everything* that determines a simulation outcome —
//! benchmark, workload scale (including the master seed), full machine
//! configuration, simulated worker count and controller policy — and hashes
//! it into a stable 128-bit content address ([`CellSpec::hash_hex`]). Two
//! specs with the same hash produce byte-identical result records, so the
//! hash doubles as the cache key of the result store.

use taskpoint::{SamplingPolicy, TaskPointConfig};
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::MachineConfig;

use crate::hash::StableHasher;

/// How big campaign runs are (mirrors the workload scales).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Full evaluation scale (the crate's Table-I-shaped workloads).
    Full,
    /// Heavily reduced instruction counts for smoke tests and CI.
    Quick,
}

/// An unrecognized scale selector (e.g. `TASKPOINT_SCALE=ful`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScaleError {
    /// The rejected value.
    pub value: String,
}

impl std::fmt::Display for UnknownScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unrecognized scale {:?} (expected \"quick\" or \"full\")", self.value)
    }
}

impl std::error::Error for UnknownScaleError {}

impl RunScale {
    /// Parses a scale selector. Only the exact strings `"quick"` and
    /// `"full"` are accepted; anything else — including the typo that
    /// would previously run a multi-hour full sweep silently — is an error.
    pub fn parse(value: &str) -> Result<Self, UnknownScaleError> {
        match value {
            "quick" => Ok(RunScale::Quick),
            "full" => Ok(RunScale::Full),
            other => Err(UnknownScaleError { value: other.to_string() }),
        }
    }

    /// Reads the scale from the command line (`--quick`) or the
    /// `TASKPOINT_SCALE` environment variable (`quick`/`full`). An
    /// unrecognized environment value is an error rather than a silent
    /// fall-through to `Full`.
    pub fn from_env_and_args() -> Result<Self, UnknownScaleError> {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return Ok(RunScale::Quick);
        }
        match std::env::var("TASKPOINT_SCALE") {
            Ok(value) => Self::parse(&value),
            Err(_) => Ok(RunScale::Full),
        }
    }

    /// Like [`RunScale::from_env_and_args`], but prints the error and exits
    /// with status 2 — the behaviour every evaluation binary wants.
    pub fn from_env_or_exit() -> Self {
        match Self::from_env_and_args() {
            Ok(scale) => scale,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// The workload scale configuration.
    pub fn scale_config(self) -> ScaleConfig {
        match self {
            RunScale::Full => ScaleConfig::new(),
            RunScale::Quick => ScaleConfig::quick(),
        }
    }

    /// The name used in artefact paths (`"full"` / `"quick"`).
    pub fn name(self) -> &'static str {
        match self {
            RunScale::Full => "full",
            RunScale::Quick => "quick",
        }
    }
}

/// What a cell simulates.
#[derive(Debug, Clone, PartialEq)]
pub enum CellKind {
    /// Full-detail reference run (every instance through the cycle-level
    /// model). Also the implicit prerequisite of every `Sampled` cell.
    Reference,
    /// TaskPoint sampled run compared against its reference.
    Sampled {
        /// Controller parameters.
        config: TaskPointConfig,
    },
    /// Size-clustered sampled run (`(type, size-class)` sampling units)
    /// compared against its reference.
    Clustered {
        /// Controller parameters.
        config: TaskPointConfig,
        /// Size-class width in powers of two.
        granularity: u32,
    },
    /// Detailed run with per-task reports reduced to per-type-normalized
    /// IPC boxplot statistics (the layout of Figs. 1 and 5).
    Variation {
        /// Noise-model seed (`Some` reproduces the Fig. 1 "native
        /// execution" stand-in; `None` is clean simulation, Fig. 5).
        noise_seed: Option<u64>,
    },
    /// Sampled run *without* a reference comparison — design-space
    /// exploration, where the whole point is that no full-detail run of
    /// every candidate machine exists (the paper recommends lazy sampling
    /// exactly for this: "evaluations requiring a large number of
    /// simulations, e.g. during the early phase of design space
    /// exploration").
    Explore {
        /// Controller parameters.
        config: TaskPointConfig,
    },
}

impl CellKind {
    /// Short tag used in records and display (`reference` / `sampled` /
    /// `clustered` / `variation` / `explore`).
    pub fn tag(&self) -> &'static str {
        match self {
            CellKind::Reference => "reference",
            CellKind::Sampled { .. } => "sampled",
            CellKind::Clustered { .. } => "clustered",
            CellKind::Variation { .. } => "variation",
            CellKind::Explore { .. } => "explore",
        }
    }
}

/// One cell of the evaluation matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// The workload.
    pub bench: Benchmark,
    /// Workload scale (instruction factor + master seed).
    pub scale: ScaleConfig,
    /// The simulated machine (hashed in full, so custom design-space
    /// machines get distinct cache entries even when they share a name).
    pub machine: MachineConfig,
    /// Simulated worker threads.
    pub workers: u32,
    /// What to simulate.
    pub kind: CellKind,
}

fn hash_policy(h: &mut StableHasher, config: &TaskPointConfig) {
    h.write_u64(config.warmup_instances);
    h.write_u64(config.history_size as u64);
    // Explicit policy discriminant so every policy family keys apart.
    match config.policy {
        SamplingPolicy::Lazy => h.write_u32(0),
        SamplingPolicy::Periodic { period } => {
            h.write_u32(1);
            h.write_u64(period);
        }
        SamplingPolicy::Adaptive { target_ci, confidence, min_samples } => {
            h.write_u32(2);
            h.write_f64(target_ci);
            h.write_str(confidence.tag());
            h.write_u64(min_samples);
        }
        SamplingPolicy::Stratified { pilot_samples, budget, confidence } => {
            h.write_u32(3);
            h.write_u64(pilot_samples);
            h.write_u64(budget);
            h.write_str(confidence.tag());
        }
    }
    h.write_u64(config.rare_type_cutoff);
    h.write_f64(config.concurrency_change_ratio);
}

fn hash_core(h: &mut StableHasher, core: &tasksim::CoreConfig) {
    h.write_u32(core.rob_size);
    h.write_u32(core.issue_width);
    h.write_u32(core.commit_width);
    h.write_u32(core.mshrs);
    h.write_u32(core.mispredict_penalty);
    for lat in [
        core.latencies.int_alu,
        core.latencies.int_mul,
        core.latencies.int_div,
        core.latencies.fp_alu,
        core.latencies.fp_mul,
        core.latencies.fp_div,
        core.latencies.store,
        core.latencies.branch,
        core.latencies.atomic_extra,
        core.latencies.fence,
    ] {
        h.write_u32(lat);
    }
}

fn hash_machine(h: &mut StableHasher, m: &MachineConfig) {
    h.write_str(&m.name);
    h.write_u32(m.line_size);
    hash_core(h, &m.core);
    // Heterogeneous core groups, with explicit discriminants for the
    // optional per-group core override so `None` and any `Some` key apart.
    h.write_u64(m.core_groups.len() as u64);
    for g in &m.core_groups {
        h.write_str(&g.name);
        h.write_u32(g.cores);
        h.write_u32(g.clock_divider);
        match &g.core {
            None => h.write_u32(0),
            Some(core) => {
                h.write_u32(1);
                hash_core(h, core);
            }
        }
    }
    h.write_u64(m.caches.len() as u64);
    for c in &m.caches {
        h.write_str(&c.name);
        h.write_u64(c.size_bytes);
        h.write_u32(c.associativity);
        h.write_u32(c.latency);
        h.write_bool(c.shared);
        h.write_u32(c.service_cycles);
    }
    h.write_u32(m.memory.latency);
    h.write_u32(m.memory.channels);
    h.write_u32(m.memory.service_cycles);
    h.write_u64(m.chunk_cycles);
}

impl CellSpec {
    /// A reference (full-detail) cell.
    pub fn reference(
        bench: Benchmark,
        scale: ScaleConfig,
        machine: MachineConfig,
        workers: u32,
    ) -> Self {
        Self { bench, scale, machine, workers, kind: CellKind::Reference }
    }

    /// A sampled cell under `config`.
    pub fn sampled(
        bench: Benchmark,
        scale: ScaleConfig,
        machine: MachineConfig,
        workers: u32,
        config: TaskPointConfig,
    ) -> Self {
        Self { bench, scale, machine, workers, kind: CellKind::Sampled { config } }
    }

    /// An exploration cell (sampled, no reference) under `config`.
    pub fn explore(
        bench: Benchmark,
        scale: ScaleConfig,
        machine: MachineConfig,
        workers: u32,
        config: TaskPointConfig,
    ) -> Self {
        Self { bench, scale, machine, workers, kind: CellKind::Explore { config } }
    }

    /// The reference cell this cell's comparison needs, if any.
    pub fn reference_spec(&self) -> Option<CellSpec> {
        match self.kind {
            CellKind::Sampled { .. } | CellKind::Clustered { .. } => Some(CellSpec::reference(
                self.bench,
                self.scale,
                self.machine.clone(),
                self.workers,
            )),
            CellKind::Reference | CellKind::Variation { .. } | CellKind::Explore { .. } => None,
        }
    }

    /// The stable 128-bit content hash of this spec, as 32 hex characters.
    pub fn hash_hex(&self) -> String {
        let mut h = StableHasher::new();
        // A format-version byte so future spec extensions re-key cleanly
        // (v5: records carry task-latency percentiles and stall
        // attribution, so pre-v5 cached cells must recompute).
        h.write_u32(5);
        h.write_str(self.bench.name());
        h.write_f64(self.scale.instr_factor);
        h.write_u64(self.scale.seed);
        hash_machine(&mut h, &self.machine);
        h.write_u32(self.workers);
        h.write_str(self.kind.tag());
        match &self.kind {
            CellKind::Reference => {}
            CellKind::Sampled { config } => hash_policy(&mut h, config),
            CellKind::Clustered { config, granularity } => {
                hash_policy(&mut h, config);
                h.write_u32(*granularity);
            }
            CellKind::Variation { noise_seed } => h.write_opt_u64(*noise_seed),
            CellKind::Explore { config } => hash_policy(&mut h, config),
        }
        h.finish_hex()
    }

    /// A short human-readable label (`spmv/high-performance/8t/sampled`).
    pub fn label(&self) -> String {
        format!("{}/{}/{}t/{}", self.bench.name(), self.machine.name, self.workers, self.kind.tag())
    }
}

impl std::fmt::Display for CellSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> CellSpec {
        CellSpec::sampled(
            Benchmark::Spmv,
            ScaleConfig::quick(),
            MachineConfig::low_power(),
            4,
            TaskPointConfig::lazy(),
        )
    }

    #[test]
    fn parse_accepts_quick_and_full() {
        assert_eq!(RunScale::parse("quick"), Ok(RunScale::Quick));
        assert_eq!(RunScale::parse("full"), Ok(RunScale::Full));
    }

    #[test]
    fn parse_rejects_garbage_and_near_misses() {
        for bad in ["ful", "FULL", "Quick", "", " full", "fast"] {
            let err = RunScale::parse(bad).unwrap_err();
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains("quick"), "{err}");
        }
    }

    #[test]
    fn scale_configs_match_workloads() {
        assert_eq!(RunScale::Full.scale_config(), ScaleConfig::new());
        assert_eq!(RunScale::Quick.scale_config(), ScaleConfig::quick());
        assert_eq!(RunScale::Quick.name(), "quick");
    }

    #[test]
    fn hash_is_stable_for_equal_specs() {
        assert_eq!(base().hash_hex(), base().hash_hex());
        assert_eq!(base().hash_hex().len(), 32);
    }

    #[test]
    fn hash_distinguishes_every_axis() {
        let b = base();
        let variants = vec![
            CellSpec { bench: Benchmark::Vecop, ..b.clone() },
            CellSpec { workers: 8, ..b.clone() },
            CellSpec { scale: ScaleConfig { instr_factor: 0.06, ..b.scale }, ..b.clone() },
            CellSpec { scale: ScaleConfig { seed: 1, ..b.scale }, ..b.clone() },
            CellSpec { machine: MachineConfig::high_performance(), ..b.clone() },
            CellSpec { kind: CellKind::Reference, ..b.clone() },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::periodic() },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::adaptive(0.05) },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::adaptive(0.02) },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::stratified(4, 256) },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::stratified(4, 512) },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Sampled { config: TaskPointConfig::stratified(8, 512) },
                ..b.clone()
            },
            CellSpec {
                kind: CellKind::Clustered { config: TaskPointConfig::lazy(), granularity: 2 },
                ..b.clone()
            },
            CellSpec { kind: CellKind::Variation { noise_seed: None }, ..b.clone() },
            CellSpec { kind: CellKind::Variation { noise_seed: Some(0xF161) }, ..b.clone() },
            CellSpec { kind: CellKind::Explore { config: TaskPointConfig::lazy() }, ..b.clone() },
            CellSpec {
                kind: CellKind::Explore { config: TaskPointConfig::periodic() },
                ..b.clone()
            },
            CellSpec { machine: MachineConfig::big_little(2, 2), ..b.clone() },
            CellSpec { machine: MachineConfig::big_little(1, 3), ..b.clone() },
            CellSpec {
                machine: {
                    let mut m = MachineConfig::big_little(2, 2);
                    m.core_groups[1].clock_divider = 3;
                    m
                },
                ..b.clone()
            },
            CellSpec {
                // A group with `core: None` must hash apart from one whose
                // override equals the machine default (discriminant check).
                machine: {
                    let mut m = MachineConfig::big_little(2, 2);
                    m.core_groups[0].core = Some(m.core.clone());
                    m
                },
                ..b.clone()
            },
        ];
        let mut hashes: Vec<String> = variants.iter().map(CellSpec::hash_hex).collect();
        hashes.push(b.hash_hex());
        let unique: std::collections::HashSet<&String> = hashes.iter().collect();
        assert_eq!(unique.len(), hashes.len(), "hash collision across axes");
    }

    #[test]
    fn custom_machines_with_same_name_hash_apart() {
        let mut a = base();
        let mut b = base();
        b.machine.core.rob_size += 1;
        assert_eq!(a.machine.name, b.machine.name);
        assert_ne!(a.hash_hex(), b.hash_hex());
        // And the label stays readable.
        a.workers = 2;
        assert_eq!(a.label(), "sparse-matrix-vector-multiplication/low-power/2t/sampled");
    }

    #[test]
    fn reference_spec_links_sampled_to_reference() {
        let s = base();
        let r = s.reference_spec().unwrap();
        assert_eq!(r.kind, CellKind::Reference);
        assert_eq!(r.bench, s.bench);
        assert_eq!(r.workers, s.workers);
        assert!(CellSpec::reference(
            Benchmark::Spmv,
            ScaleConfig::quick(),
            MachineConfig::low_power(),
            4
        )
        .reference_spec()
        .is_none());
    }
}
