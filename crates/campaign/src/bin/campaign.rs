//! `campaign` — run, inspect and invalidate evaluation sweeps.
//!
//! ```text
//! campaign list
//! campaign run --sweep fig7 --quick --jobs 4
//! campaign status --sweep fig7 --quick
//! campaign invalidate --sweep fig7 --quick
//! campaign invalidate --all
//! ```
//!
//! `run` executes the sweep's cells on the deterministic work-stealing
//! executor, emits the canonical JSONL artefact (plus a `.timings.jsonl`
//! sidecar) under the store root, and reports how many cells were actually
//! simulated vs served from the content-addressed cache. A second
//! identical invocation completes with `computed=0`.

use std::path::PathBuf;

use taskpoint_campaign::{
    code_fingerprint, Campaign, Executor, ProgressSnapshot, ResultStore, RunScale, Sweep,
};

struct Args {
    command: String,
    sweeps: Vec<Sweep>,
    jobs: Option<usize>,
    store: Option<PathBuf>,
    out: Option<PathBuf>,
    cell: Option<String>,
    telemetry_dir: Option<PathBuf>,
    all: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         campaign list [--quick] [--store DIR]\n  \
         campaign run --sweep NAME [--sweep NAME ...] [--quick] [--jobs N] [--store DIR] [--out FILE] [--telemetry-dir DIR]\n  \
         campaign status [--sweep NAME] [--quick] [--store DIR]\n  \
         campaign invalidate (--all | --sweep NAME [--quick] | --cell HASH) [--store DIR]\n\n\
         sweeps: {}\n\
         scale:  --quick or TASKPOINT_SCALE=quick|full (default full)\n\
         jobs:   --jobs N or TASKPOINT_JOBS (default: host parallelism, max 8)\n\
         store:  --store DIR or TASKPOINT_CAMPAIGN_DIR (default results/campaign)\n\
         telemetry: --telemetry-dir DIR exports per-cell Chrome traces + tptrace timelines",
        Sweep::ALL.map(Sweep::name).join(" ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else { usage() };
    let mut parsed = Args {
        command,
        sweeps: Vec::new(),
        jobs: None,
        store: None,
        out: None,
        cell: None,
        telemetry_dir: None,
        all: false,
    };
    let rest: Vec<String> = args.collect();
    let mut i = 0;
    let value = |rest: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        match rest.get(*i) {
            Some(v) => v.clone(),
            None => {
                eprintln!("error: {flag} needs a value");
                usage();
            }
        }
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--sweep" => {
                let name = value(&rest, &mut i, "--sweep");
                match Sweep::by_name(&name) {
                    Some(s) => parsed.sweeps.push(s),
                    None => {
                        eprintln!(
                            "error: unknown sweep {name:?} (known: {})",
                            Sweep::ALL.map(Sweep::name).join(" ")
                        );
                        std::process::exit(2);
                    }
                }
            }
            "--jobs" => {
                let n = value(&rest, &mut i, "--jobs");
                match n.parse::<usize>() {
                    Ok(n) if n > 0 => parsed.jobs = Some(n),
                    _ => {
                        eprintln!("error: --jobs needs a positive integer, got {n:?}");
                        std::process::exit(2);
                    }
                }
            }
            "--store" => parsed.store = Some(PathBuf::from(value(&rest, &mut i, "--store"))),
            "--out" => parsed.out = Some(PathBuf::from(value(&rest, &mut i, "--out"))),
            "--cell" => parsed.cell = Some(value(&rest, &mut i, "--cell")),
            "--telemetry-dir" => {
                parsed.telemetry_dir = Some(PathBuf::from(value(&rest, &mut i, "--telemetry-dir")))
            }
            "--all" => parsed.all = true,
            "--quick" => {} // consumed by RunScale::from_env_and_args
            other => {
                eprintln!("error: unknown argument {other:?}");
                usage();
            }
        }
        i += 1;
    }
    parsed
}

fn open_store(args: &Args) -> ResultStore {
    match &args.store {
        Some(dir) => ResultStore::at(dir.clone()),
        None => ResultStore::open_default(),
    }
}

fn cmd_list(args: &Args, scale: RunScale) {
    let store = open_store(args);
    println!(
        "available sweeps (cell counts at {} scale; cached against {}):",
        scale.name(),
        store.root().map(|p| p.display().to_string()).unwrap_or_else(|| "(none)".into()),
    );
    let scale_config = scale.scale_config();
    for sweep in Sweep::ALL {
        let specs = sweep.specs(scale_config);
        let cached = specs.iter().filter(|s| store.contains(&s.hash_hex())).count();
        println!(
            "  {:<8} {:>4} cells  {:>4} cached  {}",
            sweep.name(),
            specs.len(),
            cached,
            sweep.description()
        );
    }
}

fn cmd_run(args: &Args, scale: RunScale) {
    if args.sweeps.is_empty() {
        eprintln!("error: run needs at least one --sweep NAME");
        usage();
    }
    if args.out.is_some() && args.sweeps.len() > 1 {
        eprintln!("error: --out only works with a single --sweep");
        std::process::exit(2);
    }
    let store = open_store(args);
    let executor = match args.jobs {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    };
    let root = store.root().map(PathBuf::from).expect("CLI stores always have a root");
    println!(
        "campaign: scale={} jobs={} store={} fingerprint={}",
        scale.name(),
        executor.workers(),
        root.display(),
        code_fingerprint(),
    );
    let mut campaign = Campaign::new(store, executor);
    if let Some(dir) = &args.telemetry_dir {
        campaign = campaign.with_telemetry_dir(dir.clone());
    }
    let mut failures = 0;
    for &sweep in &args.sweeps {
        let specs = sweep.specs(scale.scale_config());
        let label = format!("{}.{}", sweep.name(), scale.name());
        let report = campaign.run_labeled(&label, &specs);
        let out = args
            .out
            .clone()
            .unwrap_or_else(|| root.join(format!("{}.{}.jsonl", sweep.name(), scale.name())));
        let emitted = match report.write_jsonl(&out) {
            Ok(()) => out.display().to_string(),
            Err(e) => {
                eprintln!("error: cannot write {}: {e}", out.display());
                failures += 1;
                "(failed)".to_string()
            }
        };
        let telemetry_note = campaign
            .telemetry_dir()
            .map(|d| format!(" telemetry={}", d.display()))
            .unwrap_or_default();
        println!(
            "sweep={} cells={} computed={} cached={} wall={:.1}s out={}{}",
            sweep.name(),
            report.outcomes.len(),
            report.computed,
            report.cached,
            report.wall_seconds,
            emitted,
            telemetry_note,
        );
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

fn cmd_status(args: &Args, scale: RunScale) {
    let store = open_store(args);
    println!(
        "store: root={} fingerprint={} cached_cells={}",
        store.root().map(|p| p.display().to_string()).unwrap_or_else(|| "(none)".into()),
        store.fingerprint(),
        store.len(),
    );
    if let Some(snap) = store.root().and_then(ProgressSnapshot::read) {
        let age = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs().saturating_sub(snap.updated_unix))
            .unwrap_or(0);
        let live = snap.in_flight > 0 || snap.computed + snap.cached < snap.total;
        let throughput = snap
            .rolling_minstr_per_sec
            .map(|m| format!(" rolling={m:.2} Minstr/s"))
            .unwrap_or_default();
        println!(
            "{} batch: label={} cells={} computed={} cached={} in_flight={}{} updated={age}s ago",
            if live { "running" } else { "last" },
            snap.label,
            snap.total,
            snap.computed,
            snap.cached,
            snap.in_flight,
            throughput,
        );
    }
    let stale: Vec<String> =
        store.fingerprints_present().into_iter().filter(|f| f != store.fingerprint()).collect();
    if !stale.is_empty() {
        println!(
            "stale fingerprints present (old code versions; `invalidate --all` clears): {}",
            stale.join(" ")
        );
    }
    let sweeps: Vec<Sweep> = if args.sweeps.is_empty() {
        Sweep::ALL.into_iter().filter(|s| *s != Sweep::All).collect()
    } else {
        args.sweeps.clone()
    };
    println!("per-sweep coverage at {} scale:", scale.name());
    for sweep in sweeps {
        let specs = sweep.specs(scale.scale_config());
        let cached = specs.iter().filter(|s| store.contains(&s.hash_hex())).count();
        println!(
            "  {:<8} {:>4}/{:<4} cached{}",
            sweep.name(),
            cached,
            specs.len(),
            if cached == specs.len() { "  (complete)" } else { "" }
        );
    }
}

fn cmd_invalidate(args: &Args, scale: RunScale) {
    let store = open_store(args);
    if args.all {
        let existed = store.invalidate_all();
        println!("invalidated: {}", if existed { "entire cache" } else { "nothing (no cache)" });
        return;
    }
    if let Some(cell) = &args.cell {
        let removed = store.invalidate_cell(cell);
        println!("invalidated cell {cell}: {}", if removed { "removed" } else { "not cached" });
        return;
    }
    if args.sweeps.is_empty() {
        eprintln!("error: invalidate needs --all, --cell HASH or --sweep NAME");
        usage();
    }
    for &sweep in &args.sweeps {
        let mut removed = 0;
        for spec in sweep.specs(scale.scale_config()) {
            if store.invalidate_cell(&spec.hash_hex()) {
                removed += 1;
            }
            // Sampled/clustered cells imply a reference unit; drop it too
            // so the sweep genuinely recomputes.
            if let Some(reference) = spec.reference_spec() {
                if store.invalidate_cell(&reference.hash_hex()) {
                    removed += 1;
                }
            }
        }
        println!("invalidated sweep={} removed={removed}", sweep.name());
    }
}

fn main() {
    let args = parse_args();
    let scale = RunScale::from_env_or_exit();
    match args.command.as_str() {
        "list" => cmd_list(&args, scale),
        "run" => cmd_run(&args, scale),
        "status" => cmd_status(&args, scale),
        "invalidate" => cmd_invalidate(&args, scale),
        _ => {
            eprintln!("error: unknown command {:?}", args.command);
            usage();
        }
    }
}
