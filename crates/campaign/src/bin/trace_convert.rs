//! `trace-convert` — ingest, validate, convert and simulate external
//! `*.tptrace` traces.
//!
//! ```text
//! trace-convert inspect  TRACE                    # parse + validate + stats
//! trace-convert convert  TRACE --bundle OUT       # -> RecordedTraces bundle
//! trace-convert convert  TRACE --text OUT         # -> canonical text encoding
//! trace-convert convert  TRACE --binary OUT       # -> canonical binary encoding
//! trace-convert simulate TRACE [--workers N]      # reference + lazy sampled run
//! trace-convert timeline TRACE [--workers N] [--width N] [--out DIR]
//!                                            # simulate with telemetry; textual Gantt
//! trace-convert synth    NAME --out FILE    # regenerate a fixture recipe
//!                                             # (*.tptraceb extension -> binary)
//! ```
//!
//! `inspect`/`convert`/`simulate` auto-detect the text vs binary encoding.
//! Malformed input exits with status 1 and the typed
//! [`IngestError`](taskpoint_trace::IngestError) message; it never panics.
//! The on-disk formats are specified byte-by-byte in
//! `docs/TRACE_FORMATS.md`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use taskpoint::{
    run_reference_traced, run_sampled_observed, run_sampled_traced, ExperimentOutcome,
    TaskPointConfig, Telemetry,
};
use taskpoint_runtime::program_from_ingested;
use taskpoint_trace::IngestedTrace;
use taskpoint_workloads::external::{synthesize, ExternalWorkload};
use tasksim::{MachineConfig, RecordedTraces};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         trace-convert inspect  TRACE\n  \
         trace-convert convert  TRACE [--bundle FILE] [--text FILE] [--binary FILE]\n  \
         trace-convert simulate TRACE [--workers N]\n  \
         trace-convert timeline TRACE [--workers N] [--width N] [--out DIR]\n  \
         trace-convert synth    NAME --out FILE\n\n\
         TRACE is a *.tptrace file in the text or binary encoding (auto-detected).\n\
         synth NAMEs: {}",
        ExternalWorkload::ALL.map(|w| w.name()).join(" ")
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn load(path: &Path) -> Result<IngestedTrace, String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    IngestedTrace::parse(&data).map_err(|e| format!("{}: {e}", path.display()))
}

fn print_stats(trace: &IngestedTrace) {
    println!(
        "trace: {} types, {} tasks, {} threads, {} instructions",
        trace.num_types(),
        trace.num_tasks(),
        trace.threads(),
        trace.total_instructions()
    );
    let tasks = trace.tasks_per_type();
    let instrs = trace.instructions_per_type();
    // Per-type instruction-count coefficient of variation: the dispersion
    // the adaptive policy reacts to. A high CoV predicts many detailed
    // samples (or `(type, size-class)` clustering paying off); CoV ~ 0
    // predicts convergence right at the minimum-sample floor.
    let mut size_summaries = vec![taskpoint_stats::Summary::new(); trace.num_types()];
    for task in trace.tasks() {
        size_summaries[task.type_index as usize].add(task.instructions as f64);
    }
    for (i, ty) in trace.types().iter().enumerate() {
        println!(
            "  type {:>3} {:<16} {:>5} tasks {:>9} instructions  instr-cov={:.3}  \
             rates: branch={} dep={}",
            ty.id,
            ty.name,
            tasks[i],
            instrs[i],
            size_summaries[i].cv(),
            ty.branch_mispredict_rate,
            ty.dependency_rate
        );
    }
    let deps: usize = trace.tasks().iter().map(|t| t.deps.len()).sum();
    let bytes: usize = trace.tasks().iter().map(|t| t.bytes.len()).sum();
    println!("  {deps} dependence edges, {bytes} bytes of encoded streams");
}

/// `(flag, value)` pairs as parsed from the command line.
type Flags = Vec<(String, String)>;

/// Parses `--flag VALUE` pairs from `rest`; returns (flags, positional).
fn parse_flags(rest: &[String], with_value: &[&str]) -> Result<(Flags, Vec<String>), String> {
    let mut flags = Vec::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        let a = &rest[i];
        if let Some(name) = a.strip_prefix("--") {
            if with_value.contains(&name) {
                i += 1;
                let value = rest.get(i).ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value.clone()));
            } else {
                flags.push((name.to_string(), String::new()));
            }
        } else {
            positional.push(a.clone());
        }
        i += 1;
    }
    Ok((flags, positional))
}

fn cmd_inspect(path: &Path) -> ExitCode {
    match load(path) {
        Ok(trace) => {
            print_stats(&trace);
            ExitCode::SUCCESS
        }
        Err(e) => fail(e),
    }
}

fn cmd_convert(path: &Path, flags: &[(String, String)]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    print_stats(&trace);
    let program = program_from_ingested(
        path.file_stem().and_then(|s| s.to_str()).unwrap_or("ingested"),
        &trace,
    );
    let bundle = RecordedTraces::from_ingested(&trace);
    if let Err(e) = bundle.verify_against(&program) {
        return fail(format!("bundle does not match the converted program: {e}"));
    }
    let mut wrote = 0;
    for (flag, value) in flags {
        let out = PathBuf::from(value);
        let result = match flag.as_str() {
            "bundle" => bundle.write_to(&out).map_err(|e| e.to_string()),
            "text" => std::fs::write(&out, trace.to_text()).map_err(|e| e.to_string()),
            "binary" => std::fs::write(&out, trace.to_binary()).map_err(|e| e.to_string()),
            other => return fail(format!("unknown flag --{other}")),
        };
        match result {
            Ok(()) => {
                println!("wrote {} ({})", out.display(), flag);
                wrote += 1;
            }
            Err(e) => return fail(format!("cannot write {}: {e}", out.display())),
        }
    }
    if wrote == 0 {
        println!("validated (pass --bundle/--text/--binary to write outputs)");
    }
    ExitCode::SUCCESS
}

fn cmd_simulate(path: &Path, flags: &[(String, String)]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let workers = match flags.iter().find(|(f, _)| f == "workers") {
        None => 2,
        Some((_, v)) => match v.parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => return fail(format!("--workers needs a positive integer, got {v:?}")),
        },
    };
    print_stats(&trace);
    let program = program_from_ingested("ingested", &trace);
    let bundle = RecordedTraces::from_ingested(&trace);
    let machine = MachineConfig::low_power();
    let reference =
        run_reference_traced(&program, machine.clone(), workers, Box::new(bundle.clone()));
    let (sampled, stats) =
        run_sampled_traced(&program, machine, workers, TaskPointConfig::lazy(), Box::new(bundle));
    let outcome = ExperimentOutcome::compare(&sampled, &reference);
    println!(
        "reference: {} cycles ({} detailed tasks)",
        reference.total_cycles, reference.detailed_tasks
    );
    println!(
        "sampled:   {} cycles ({} detailed / {} fast tasks, {} resamples)",
        sampled.total_cycles,
        sampled.detailed_tasks,
        sampled.fast_tasks,
        stats.resamples.len()
    );
    println!("error {:.2}%  detail fraction {:.3}", outcome.error_percent, outcome.detail_fraction);
    ExitCode::SUCCESS
}

/// Simulates the trace with a recording telemetry handle and renders the
/// resulting schedule as a textual Gantt chart. With `--out DIR` it also
/// exports the Chrome trace-event JSON and the `*.tptrace` timeline, and
/// proves the export round-trips by re-parsing it through the ingest path.
fn cmd_timeline(path: &Path, flags: &[(String, String)]) -> ExitCode {
    let trace = match load(path) {
        Ok(t) => t,
        Err(e) => return fail(e),
    };
    let parse_num = |name: &str, default: u32| -> Result<u32, ExitCode> {
        match flags.iter().find(|(f, _)| f == name) {
            None => Ok(default),
            Some((_, v)) => match v.parse::<u32>() {
                Ok(n) if n > 0 => Ok(n),
                _ => Err(fail(format!("--{name} needs a positive integer, got {v:?}"))),
            },
        }
    };
    let workers = match parse_num("workers", 2) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let width = match parse_num("width", 100) {
        Ok(n) => n,
        Err(code) => return code,
    };
    let program = program_from_ingested("ingested", &trace);
    let bundle = RecordedTraces::from_ingested(&trace);
    let telemetry = Telemetry::recording();
    let (sampled, stats) = run_sampled_observed(
        &program,
        MachineConfig::low_power(),
        workers,
        TaskPointConfig::lazy(),
        Box::new(bundle),
        telemetry.clone(),
    );
    let report = telemetry.take_report().expect("recording handle yields a report");
    print!("{}", report.render_gantt(width as usize));
    println!(
        "sampled: {} cycles ({} detailed / {} fast tasks, {} resamples)",
        sampled.total_cycles,
        sampled.detailed_tasks,
        sampled.fast_tasks,
        stats.resamples.len()
    );
    println!(
        "telemetry: {} events, {} counters, fnv64={:016x}",
        report.events.len(),
        report.counters.len(),
        report.fnv64()
    );
    for name in ["mem.dram_accesses", "mem.contended_accesses", "mem.queue_delay_cycles"] {
        println!("  counter {name}={}", report.counter_total(name));
    }
    // Stall breakdown: where every core tick of the run went, per core
    // group (the always-on cycle accounting of `SimResult`).
    for acct in &sampled.cycle_accounts {
        let total = acct.total();
        println!("stalls [{}] ({} cores, {} total ticks):", acct.name, acct.cores, total);
        for (name, ticks) in acct.categories() {
            if ticks == 0 {
                continue;
            }
            println!("  {name:<12} {ticks:>12}  {:5.1}%", 100.0 * ticks as f64 / total as f64);
        }
    }
    // Task-latency distribution: the busiest log2 buckets next to the
    // engine-computed percentiles.
    if let Some(hist) = report.histogram("task.latency", 0) {
        println!(
            "task latency: {} tasks, p50={} p99={} p999={} cycles (approx)",
            hist.count(),
            hist.approx_quantile(0.50).unwrap_or(0),
            hist.approx_quantile(0.99).unwrap_or(0),
            hist.approx_quantile(0.999).unwrap_or(0),
        );
        for (index, count) in hist.top_buckets(5) {
            let (lo, hi) = tasksim::telemetry::Histogram::bucket_bounds(index);
            println!("  [{lo:>8}, {hi:>8}] {count:>8} tasks");
        }
    }
    if let Some((_, out)) = flags.iter().find(|(f, _)| f == "out") {
        let dir = PathBuf::from(out);
        if let Err(e) = std::fs::create_dir_all(&dir) {
            return fail(format!("cannot create {}: {e}", dir.display()));
        }
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("timeline");
        let chrome = dir.join(format!("{stem}.trace.json"));
        if let Err(e) = std::fs::write(&chrome, report.chrome_trace_json()) {
            return fail(format!("cannot write {}: {e}", chrome.display()));
        }
        println!("wrote {} (chrome trace)", chrome.display());
        let text = match report.tptrace_timeline() {
            Ok(t) => t,
            Err(e) => return fail(format!("cannot render timeline: {e}")),
        };
        let tpt = dir.join(format!("{stem}.timeline.tptrace"));
        if let Err(e) = std::fs::write(&tpt, &text) {
            return fail(format!("cannot write {}: {e}", tpt.display()));
        }
        // Round-trip guarantee: the exported timeline is itself a valid
        // ingest input describing exactly the tasks the schedule finished.
        match IngestedTrace::parse_text(&text) {
            Ok(reingested) => println!(
                "wrote {} (round-trips: {} tasks, {} threads)",
                tpt.display(),
                reingested.num_tasks(),
                reingested.threads()
            ),
            Err(e) => return fail(format!("exported timeline does not re-ingest: {e}")),
        }
    }
    ExitCode::SUCCESS
}

fn cmd_synth(name: &str, flags: &[(String, String)]) -> ExitCode {
    let Some(workload) = ExternalWorkload::by_name(name) else {
        return fail(format!(
            "unknown fixture {name:?} (known: {})",
            ExternalWorkload::ALL.map(|w| w.name()).join(" ")
        ));
    };
    let Some((_, out)) = flags.iter().find(|(f, _)| f == "out") else {
        return fail("synth needs --out FILE");
    };
    let text = synthesize(workload);
    // The extension picks the encoding, matching the checked-in fixtures:
    // `.tptraceb` is binary, everything else text.
    let result = if out.ends_with(".tptraceb") {
        let trace = IngestedTrace::parse_text(&text).expect("recipes synthesize valid traces");
        std::fs::write(out, trace.to_binary())
    } else {
        std::fs::write(out, text)
    };
    match result {
        Ok(()) => {
            println!("wrote {out}");
            ExitCode::SUCCESS
        }
        Err(e) => fail(format!("cannot write {out}: {e}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { return usage() };
    let (flags, positional) =
        match parse_flags(&args[1..], &["bundle", "text", "binary", "workers", "width", "out"]) {
            Ok(parsed) => parsed,
            Err(e) => {
                eprintln!("error: {e}");
                return usage();
            }
        };
    let one_positional = |what: &str| -> Result<&String, ExitCode> {
        match positional.as_slice() {
            [p] => Ok(p),
            _ => {
                eprintln!("error: {command} needs exactly one {what}");
                Err(usage())
            }
        }
    };
    match command.as_str() {
        "inspect" => match one_positional("TRACE file") {
            Ok(p) => cmd_inspect(Path::new(p)),
            Err(code) => code,
        },
        "convert" => match one_positional("TRACE file") {
            Ok(p) => cmd_convert(Path::new(p), &flags),
            Err(code) => code,
        },
        "simulate" => match one_positional("TRACE file") {
            Ok(p) => cmd_simulate(Path::new(p), &flags),
            Err(code) => code,
        },
        "timeline" => match one_positional("TRACE file") {
            Ok(p) => cmd_timeline(Path::new(p), &flags),
            Err(code) => code,
        },
        "synth" => match one_positional("fixture NAME") {
            Ok(n) => cmd_synth(n, &flags),
            Err(code) => code,
        },
        _ => usage(),
    }
}
