//! Stable content hashing for cell specs.
//!
//! Cache keys must be identical across runs, platforms and — critically —
//! across *code versions that do not change simulation behaviour of the
//! hashed inputs*, so [`std::hash::Hash`]/`DefaultHasher` (randomized, and
//! free to change between Rust releases) is unusable here. This module
//! implements 128-bit FNV-1a over an explicit canonical byte encoding:
//! every field is written through a typed `write_*` method with a
//! one-byte tag, so two different field sequences can never collide by
//! concatenation ambiguity.

/// 128-bit FNV-1a hasher with typed, tagged field encoding.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl StableHasher {
    /// Creates a hasher at the FNV-128 offset basis.
    pub fn new() -> Self {
        Self { state: FNV128_OFFSET }
    }

    fn write_byte(&mut self, b: u8) {
        self.state ^= b as u128;
        self.state = self.state.wrapping_mul(FNV128_PRIME);
    }

    /// Feeds raw bytes (no tag); prefer the typed writers.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_byte(b);
        }
    }

    /// Feeds a `u64` (tag + big-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_byte(0x01);
        self.write_bytes(&v.to_be_bytes());
    }

    /// Feeds a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.write_byte(0x02);
        self.write_bytes(&v.to_be_bytes());
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_byte(0x03);
        self.write_bytes(&v.to_bits().to_be_bytes());
    }

    /// Feeds a boolean.
    pub fn write_bool(&mut self, v: bool) {
        self.write_byte(0x04);
        self.write_byte(v as u8);
    }

    /// Feeds a length-prefixed string.
    pub fn write_str(&mut self, s: &str) {
        self.write_byte(0x05);
        self.write_bytes(&(s.len() as u64).to_be_bytes());
        self.write_bytes(s.as_bytes());
    }

    /// Feeds an optional `u64` (distinct encodings for `None` / `Some`).
    pub fn write_opt_u64(&mut self, v: Option<u64>) {
        match v {
            None => self.write_byte(0x06),
            Some(x) => {
                self.write_byte(0x07);
                self.write_bytes(&x.to_be_bytes());
            }
        }
    }

    /// Finishes the hash as 32 lowercase hex characters.
    pub fn finish_hex(&self) -> String {
        format!("{:032x}", self.state)
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_hash_is_offset_basis() {
        assert_eq!(StableHasher::new().finish_hex(), format!("{FNV128_OFFSET:032x}"));
    }

    #[test]
    fn hashing_is_deterministic_and_sensitive() {
        let mut a = StableHasher::new();
        a.write_str("spmv");
        a.write_u32(8);
        let mut b = StableHasher::new();
        b.write_str("spmv");
        b.write_u32(8);
        assert_eq!(a.finish_hex(), b.finish_hex());
        let mut c = StableHasher::new();
        c.write_str("spmv");
        c.write_u32(9);
        assert_ne!(a.finish_hex(), c.finish_hex());
    }

    #[test]
    fn field_types_are_disambiguated() {
        // A string "A" and a one-byte integer must not collide, nor must
        // None collide with any empty encoding.
        let mut s = StableHasher::new();
        s.write_str("");
        let mut n = StableHasher::new();
        n.write_opt_u64(None);
        assert_ne!(s.finish_hex(), n.finish_hex());
        let mut u = StableHasher::new();
        u.write_u64(0);
        let mut o = StableHasher::new();
        o.write_opt_u64(Some(0));
        assert_ne!(u.finish_hex(), o.finish_hex());
    }

    #[test]
    fn concatenation_is_unambiguous() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish_hex(), b.finish_hex());
    }

    #[test]
    fn f64_hashes_by_bit_pattern() {
        let mut a = StableHasher::new();
        a.write_f64(0.05);
        let mut b = StableHasher::new();
        b.write_f64(0.05);
        assert_eq!(a.finish_hex(), b.finish_hex());
        let mut c = StableHasher::new();
        c.write_f64(0.050000001);
        assert_ne!(a.finish_hex(), c.finish_hex());
    }

    #[test]
    fn pinned_reference_vector() {
        // Pin the encoding so accidental format changes (which would
        // silently orphan every cached result) fail a test instead.
        let mut h = StableHasher::new();
        h.write_str("cell");
        h.write_u32(4);
        h.write_u64(0x7A5C_901E);
        h.write_f64(1.0);
        h.write_bool(true);
        h.write_opt_u64(Some(250));
        assert_eq!(h.finish_hex(), "525f7e0051c3c93aef35b9aa871d001d");
    }
}
