//! The campaign driver: specs in, ordered outcomes out.

use std::path::Path;
use std::sync::Arc;

use taskpoint_runtime::Program;
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::{MachineConfig, SimResult};

use crate::context::Context;
use crate::executor::Executor;
use crate::record::CellOutcome;
use crate::spec::CellSpec;
use crate::store::ResultStore;

/// A sweep-execution engine: a result store, a worker pool and the shared
/// in-memory caches, bundled.
#[derive(Debug)]
pub struct Campaign {
    store: ResultStore,
    executor: Executor,
    ctx: Context,
}

/// The outcome of one [`Campaign::run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-cell outcomes, in spec order.
    pub outcomes: Vec<CellOutcome>,
    /// Cells actually simulated by this run.
    pub computed: usize,
    /// Cells served from the store.
    pub cached: usize,
    /// Wall time of the whole batch in seconds.
    pub wall_seconds: f64,
}

impl Campaign {
    /// Creates a campaign over an explicit store and executor.
    pub fn new(store: ResultStore, executor: Executor) -> Self {
        Self { store, executor, ctx: Context::new() }
    }

    /// The standard configuration: persistent store at the default root,
    /// executor sized from the environment.
    pub fn open_default() -> Self {
        Self::new(ResultStore::open_default(), Executor::from_env())
    }

    /// A campaign with no persistence — in-memory sharing only. The right
    /// choice for test binaries that want reference reuse without
    /// touching `results/`.
    pub fn in_memory() -> Self {
        Self::new(ResultStore::disabled(), Executor::from_env())
    }

    /// The underlying store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Runs every cell, fanning out across the executor's workers, and
    /// returns outcomes **in spec order** — byte-identical output
    /// regardless of worker count.
    pub fn run(&self, specs: &[CellSpec]) -> CampaignReport {
        let started = std::time::Instant::now();
        let outcomes = self.executor.run(specs, |_, spec| self.ctx.compute(&self.store, spec));
        let cached = outcomes.iter().filter(|o| o.cached).count();
        CampaignReport {
            computed: outcomes.len() - cached,
            cached,
            outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Runs a single cell (a one-element campaign).
    pub fn run_one(&self, spec: &CellSpec) -> CellOutcome {
        self.ctx.compute(&self.store, spec)
    }

    /// The benchmark's program (generated once per scale and shared).
    pub fn program(&self, bench: Benchmark, scale: &ScaleConfig) -> Arc<Program> {
        self.ctx.program(bench, scale)
    }

    /// The full-detail reference for a cell (computed or cache-loaded
    /// once, then shared; reports stripped).
    pub fn reference(
        &self,
        bench: Benchmark,
        scale: ScaleConfig,
        machine: MachineConfig,
        workers: u32,
    ) -> Arc<SimResult> {
        self.ctx.reference(&self.store, bench, scale, machine, workers)
    }
}

impl CampaignReport {
    /// The canonical JSONL artefact: one record per line, spec order,
    /// newline-terminated. These bytes are the determinism guarantee.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.record.to_json());
            out.push('\n');
        }
        out
    }

    /// The advisory timing sidecar: one line per cell, spec order. Not
    /// deterministic (host wall clock) and therefore emitted separately.
    pub fn timings_jsonl(&self) -> String {
        use crate::json::{Object, Value};
        let mut out = String::new();
        for o in &self.outcomes {
            let mut t = Object::new();
            t.set("cell", Value::Str(o.record.cell.clone()));
            t.set("cached", Value::Bool(o.cached));
            t.set("wall_seconds", Value::Num(o.timing.wall_seconds));
            if let Some(w) = o.timing.reference_wall_seconds {
                t.set("reference_wall_seconds", Value::Num(w));
            }
            if let Some(s) = o.timing.speedup {
                t.set("speedup", Value::Num(s));
            }
            if let Some(ips) = o.timing.detailed_instr_per_sec {
                t.set("detailed_instr_per_sec", Value::Num(ips));
            }
            out.push_str(&Value::Obj(t).to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the canonical JSONL (and the timing sidecar next to it, as
    /// `<stem>.timings.jsonl`).
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.jsonl())?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("campaign");
        let sidecar = path.with_file_name(format!("{stem}.timings.jsonl"));
        std::fs::write(sidecar, self.timings_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint::TaskPointConfig;

    fn tiny_specs() -> Vec<CellSpec> {
        let scale = ScaleConfig::quick();
        let machine = MachineConfig::tiny_test();
        vec![
            CellSpec::reference(Benchmark::Spmv, scale, machine.clone(), 2),
            CellSpec::sampled(Benchmark::Spmv, scale, machine.clone(), 2, TaskPointConfig::lazy()),
            CellSpec::sampled(Benchmark::Spmv, scale, machine, 2, TaskPointConfig::periodic()),
        ]
    }

    #[test]
    fn outcomes_come_back_in_spec_order() {
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(4));
        let specs = tiny_specs();
        let report = campaign.run(&specs);
        assert_eq!(report.outcomes.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&report.outcomes) {
            assert_eq!(outcome.record.cell, spec.hash_hex());
        }
        assert_eq!(report.computed, 3);
        assert_eq!(report.cached, 0);
        // Three lines, kinds in order.
        let jsonl = report.jsonl();
        let kinds: Vec<&str> = jsonl
            .lines()
            .map(|l| if l.contains("\"kind\":\"reference\"") { "r" } else { "s" })
            .collect();
        assert_eq!(kinds, vec!["r", "s", "s"]);
    }

    #[test]
    fn sampled_cells_share_one_reference_with_the_reference_cell() {
        // All three cells need the same detailed run; the context must
        // compute it exactly once even under a parallel executor. Equality
        // of reference_cycles across records is the observable.
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(3));
        let report = campaign.run(&tiny_specs());
        let ref_cycles = report.outcomes[0].record.metrics.as_reference().unwrap().total_cycles;
        for o in &report.outcomes[1..] {
            assert_eq!(o.record.metrics.as_eval().unwrap().reference_cycles, ref_cycles);
        }
    }

    #[test]
    fn duplicate_specs_in_one_batch_simulate_once() {
        // Sweep::All genuinely contains coinciding cells (e.g. a Fig. 6
        // history config equal to lazy()); they must dedup against the
        // in-flight guard, not race or re-simulate.
        let scale = ScaleConfig::quick();
        let machine = MachineConfig::tiny_test();
        let spec = CellSpec::sampled(Benchmark::Spmv, scale, machine, 2, TaskPointConfig::lazy());
        let specs = vec![spec.clone(), spec.clone(), spec];
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(3));
        let report = campaign.run(&specs);
        assert_eq!(report.computed, 1, "one simulation for three identical specs");
        assert_eq!(report.cached, 2);
        let jsonl = report.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], lines[1]);
        assert_eq!(lines[1], lines[2]);
    }

    #[test]
    fn timings_sidecar_has_one_line_per_cell() {
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(2));
        let report = campaign.run(&tiny_specs());
        assert_eq!(report.timings_jsonl().lines().count(), 3);
        for line in report.timings_jsonl().lines() {
            assert!(line.contains("\"wall_seconds\":"));
        }
    }
}
