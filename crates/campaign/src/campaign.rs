//! The campaign driver: specs in, ordered outcomes out.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use taskpoint_runtime::Program;
use taskpoint_telemetry::{ProfileSpan, TelemetryReport};
use taskpoint_workloads::{Benchmark, ScaleConfig};
use tasksim::{MachineConfig, SimResult, Telemetry};

use crate::context::Context;
use crate::executor::Executor;
use crate::record::CellOutcome;
use crate::spec::CellSpec;
use crate::store::ResultStore;

/// A sweep-execution engine: a result store, a worker pool and the shared
/// in-memory caches, bundled.
#[derive(Debug)]
pub struct Campaign {
    store: ResultStore,
    executor: Executor,
    ctx: Context,
    telemetry_dir: Option<PathBuf>,
}

/// The outcome of one [`Campaign::run`].
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-cell outcomes, in spec order.
    pub outcomes: Vec<CellOutcome>,
    /// Cells actually simulated by this run.
    pub computed: usize,
    /// Cells served from the store.
    pub cached: usize,
    /// Wall time of the whole batch in seconds.
    pub wall_seconds: f64,
}

impl Campaign {
    /// Creates a campaign over an explicit store and executor.
    pub fn new(store: ResultStore, executor: Executor) -> Self {
        Self { store, executor, ctx: Context::new(), telemetry_dir: None }
    }

    /// Enables per-cell telemetry export: every cell this campaign
    /// *simulates* (cache hits have no run to observe) records its full
    /// event stream and writes `<cell>.trace.json` (Chrome trace-event
    /// JSON) plus `<cell>.tptrace` (the ingestable text timeline) under
    /// `dir`, and the batch writes a `profile.trace.json` of wall-clock
    /// cell spans.
    pub fn with_telemetry_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry_dir = Some(dir.into());
        self
    }

    /// The telemetry export directory, if enabled.
    pub fn telemetry_dir(&self) -> Option<&Path> {
        self.telemetry_dir.as_deref()
    }

    /// The standard configuration: persistent store at the default root,
    /// executor sized from the environment.
    pub fn open_default() -> Self {
        Self::new(ResultStore::open_default(), Executor::from_env())
    }

    /// A campaign with no persistence — in-memory sharing only. The right
    /// choice for test binaries that want reference reuse without
    /// touching `results/`.
    pub fn in_memory() -> Self {
        Self::new(ResultStore::disabled(), Executor::from_env())
    }

    /// The underlying store.
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// The underlying executor.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Runs every cell, fanning out across the executor's workers, and
    /// returns outcomes **in spec order** — byte-identical output
    /// regardless of worker count.
    pub fn run(&self, specs: &[CellSpec]) -> CampaignReport {
        self.run_labeled("campaign", specs)
    }

    /// Like [`Campaign::run`], tagging live progress with `label`.
    ///
    /// When the store persists, a `progress.json` snapshot in the store
    /// root is rewritten atomically as cells start and finish — total,
    /// computed, cached, in-flight, and a rolling detailed-simulation
    /// throughput over the last few computed cells — so `campaign status`
    /// can introspect a batch while it runs.
    pub fn run_labeled(&self, label: &str, specs: &[CellSpec]) -> CampaignReport {
        let started = Instant::now();
        let progress = self
            .store
            .root()
            .map(|root| ProgressTracker::new(root.join("progress.json"), label, specs.len()));
        let profile: Mutex<Vec<ProfileSpan>> = Mutex::new(Vec::new());
        let outcomes = self.executor.run(specs, |index, spec| {
            if let Some(p) = &progress {
                p.started();
            }
            let t0 = started.elapsed();
            let telemetry = if self.telemetry_dir.is_some() {
                Telemetry::recording()
            } else {
                Telemetry::disabled()
            };
            let outcome = self.ctx.compute_observed(&self.store, spec, &telemetry);
            if let Some(dir) = &self.telemetry_dir {
                if let Some(report) = telemetry.take_report() {
                    export_cell_traces(dir, &outcome.record.cell, &report);
                }
                let dur = started.elapsed().saturating_sub(t0);
                // The span's tid is the cell's spec index: deterministic,
                // and in Perfetto it lines each cell up on its own lane.
                profile.lock().expect("profile spans poisoned").push(ProfileSpan {
                    name: if outcome.cached { "cell.cached" } else { "cell.computed" }.to_string(),
                    key: format!("{}:{}", outcome.record.bench, outcome.record.cell),
                    worker: index as u32,
                    wall_start_us: t0.as_micros() as u64,
                    wall_dur_us: (dur.as_micros() as u64).max(1),
                });
            }
            if let Some(p) = &progress {
                p.finished(outcome.cached, outcome.timing.detailed_instr_per_sec);
            }
            outcome
        });
        if let Some(dir) = &self.telemetry_dir {
            let mut spans = std::mem::take(&mut *profile.lock().expect("profile spans poisoned"));
            spans.sort_by(|a, b| (a.wall_start_us, &a.key).cmp(&(b.wall_start_us, &b.key)));
            write_profile_trace(dir, spans);
        }
        let cached = outcomes.iter().filter(|o| o.cached).count();
        CampaignReport {
            computed: outcomes.len() - cached,
            cached,
            outcomes,
            wall_seconds: started.elapsed().as_secs_f64(),
        }
    }

    /// Runs a single cell (a one-element campaign).
    pub fn run_one(&self, spec: &CellSpec) -> CellOutcome {
        self.ctx.compute(&self.store, spec)
    }

    /// The benchmark's program (generated once per scale and shared).
    pub fn program(&self, bench: Benchmark, scale: &ScaleConfig) -> Arc<Program> {
        self.ctx.program(bench, scale)
    }

    /// The full-detail reference for a cell (computed or cache-loaded
    /// once, then shared; reports stripped).
    pub fn reference(
        &self,
        bench: Benchmark,
        scale: ScaleConfig,
        machine: MachineConfig,
        workers: u32,
    ) -> Arc<SimResult> {
        self.ctx.reference(&self.store, bench, scale, machine, workers)
    }
}

/// Writes a cell's recorded telemetry next to its siblings under `dir`.
/// Export failures warn and continue — telemetry is an observer, never a
/// correctness dependency of the batch.
fn export_cell_traces(dir: &Path, cell: &str, report: &TelemetryReport) {
    if report.events.is_empty() && report.counters.is_empty() {
        return; // cache hit or empty cell: nothing ran, nothing to export
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create telemetry dir {}: {e}", dir.display());
        return;
    }
    let chrome = dir.join(format!("{cell}.trace.json"));
    if let Err(e) = std::fs::write(&chrome, report.chrome_trace_json()) {
        eprintln!("warning: cannot write {}: {e}", chrome.display());
    }
    let prom = dir.join(format!("{cell}.prom"));
    if let Err(e) = std::fs::write(&prom, report.text_exposition()) {
        eprintln!("warning: cannot write {}: {e}", prom.display());
    }
    // A stream with no finished tasks (counters only) has no timeline; the
    // Chrome trace above still carries the counters.
    if let Ok(text) = report.tptrace_timeline() {
        let path = dir.join(format!("{cell}.tptrace"));
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

/// Writes the batch's wall-clock cell spans as a profile-only Chrome trace.
fn write_profile_trace(dir: &Path, spans: Vec<ProfileSpan>) {
    if spans.is_empty() {
        return;
    }
    let report = TelemetryReport { profile: spans, ..TelemetryReport::default() };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create telemetry dir {}: {e}", dir.display());
        return;
    }
    let path = dir.join("profile.trace.json");
    if let Err(e) = std::fs::write(&path, report.chrome_trace_json()) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

/// How many of the freshest computed-cell throughputs feed the rolling
/// Minstr/s shown by `campaign status`.
const ROLLING_THROUGHPUT_WINDOW: usize = 10;

/// Live batch progress, rewritten atomically into the store root as cells
/// start and finish.
#[derive(Debug)]
struct ProgressTracker {
    path: PathBuf,
    label: String,
    total: usize,
    state: Mutex<ProgressState>,
}

#[derive(Debug, Default)]
struct ProgressState {
    computed: usize,
    cached: usize,
    in_flight: usize,
    /// Detailed instructions/second of the last few computed cells.
    recent_ips: VecDeque<f64>,
}

impl ProgressTracker {
    fn new(path: PathBuf, label: &str, total: usize) -> Self {
        let tracker = Self {
            path,
            label: label.to_string(),
            total,
            state: Mutex::new(ProgressState::default()),
        };
        tracker.write(&tracker.state.lock().expect("progress poisoned"));
        tracker
    }

    fn started(&self) {
        let mut st = self.state.lock().expect("progress poisoned");
        st.in_flight += 1;
        self.write(&st);
    }

    fn finished(&self, cached: bool, instr_per_sec: Option<f64>) {
        let mut st = self.state.lock().expect("progress poisoned");
        st.in_flight = st.in_flight.saturating_sub(1);
        if cached {
            st.cached += 1;
        } else {
            st.computed += 1;
            if let Some(ips) = instr_per_sec.filter(|v| v.is_finite() && *v > 0.0) {
                if st.recent_ips.len() == ROLLING_THROUGHPUT_WINDOW {
                    st.recent_ips.pop_front();
                }
                st.recent_ips.push_back(ips);
            }
        }
        self.write(&st);
    }

    /// Serializes a snapshot and publishes it with a temp-file rename, so
    /// a concurrent `campaign status` never reads a torn file. Failures
    /// are silent: progress is advisory.
    fn write(&self, st: &ProgressState) {
        use crate::json::{Object, Value};
        let mut o = Object::new();
        o.set("label", Value::Str(self.label.clone()));
        o.set("total", Value::Num(self.total as f64));
        o.set("computed", Value::Num(st.computed as f64));
        o.set("cached", Value::Num(st.cached as f64));
        o.set("in_flight", Value::Num(st.in_flight as f64));
        let unix = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        o.set("updated_unix", Value::Num(unix as f64));
        if !st.recent_ips.is_empty() {
            let mean = st.recent_ips.iter().sum::<f64>() / st.recent_ips.len() as f64;
            o.set("rolling_minstr_per_sec", Value::Num(mean / 1e6));
        }
        let text = format!("{}\n", Value::Obj(o).to_json());
        let tmp = self.path.with_extension(format!("tmp.{}", std::process::id()));
        let publish = || -> std::io::Result<()> {
            if let Some(parent) = self.path.parent() {
                std::fs::create_dir_all(parent)?;
            }
            std::fs::write(&tmp, text.as_bytes())?;
            std::fs::rename(&tmp, &self.path)
        };
        if publish().is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
    }
}

/// A parsed `progress.json` snapshot (see [`Campaign::run_labeled`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// The batch label (`<sweep>.<scale>` from the CLI).
    pub label: String,
    /// Cells in the batch.
    pub total: u64,
    /// Cells simulated so far.
    pub computed: u64,
    /// Cells served from the store so far.
    pub cached: u64,
    /// Cells currently being simulated.
    pub in_flight: u64,
    /// Unix timestamp of the last update.
    pub updated_unix: u64,
    /// Mean detailed-simulation throughput (Minstr/s) over the last few
    /// computed cells, if any have finished.
    pub rolling_minstr_per_sec: Option<f64>,
}

impl ProgressSnapshot {
    /// Reads and parses `<store root>/progress.json`. `None` if the file
    /// is absent or unreadable (no batch has run here yet).
    pub fn read(store_root: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(store_root.join("progress.json")).ok()?;
        let crate::json::Value::Obj(obj) = crate::json::Value::parse(&text).ok()? else {
            return None;
        };
        Some(Self {
            label: obj.str("label")?.to_string(),
            total: obj.u64("total")?,
            computed: obj.u64("computed")?,
            cached: obj.u64("cached")?,
            in_flight: obj.u64("in_flight")?,
            updated_unix: obj.u64("updated_unix")?,
            rolling_minstr_per_sec: obj.num("rolling_minstr_per_sec"),
        })
    }
}

impl CampaignReport {
    /// The canonical JSONL artefact: one record per line, spec order,
    /// newline-terminated. These bytes are the determinism guarantee.
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.record.to_json());
            out.push('\n');
        }
        out
    }

    /// The advisory timing sidecar: one line per cell, spec order. Not
    /// deterministic (host wall clock) and therefore emitted separately.
    pub fn timings_jsonl(&self) -> String {
        use crate::json::{Object, Value};
        let mut out = String::new();
        for o in &self.outcomes {
            let mut t = Object::new();
            t.set("cell", Value::Str(o.record.cell.clone()));
            t.set("cached", Value::Bool(o.cached));
            t.set("wall_seconds", Value::Num(o.timing.wall_seconds));
            if let Some(w) = o.timing.reference_wall_seconds {
                t.set("reference_wall_seconds", Value::Num(w));
            }
            if let Some(s) = o.timing.speedup {
                t.set("speedup", Value::Num(s));
            }
            if let Some(ips) = o.timing.detailed_instr_per_sec {
                t.set("detailed_instr_per_sec", Value::Num(ips));
            }
            out.push_str(&Value::Obj(t).to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the canonical JSONL (and the timing sidecar next to it, as
    /// `<stem>.timings.jsonl`).
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.jsonl())?;
        let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("campaign");
        let sidecar = path.with_file_name(format!("{stem}.timings.jsonl"));
        std::fs::write(sidecar, self.timings_jsonl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint::TaskPointConfig;

    fn tiny_specs() -> Vec<CellSpec> {
        let scale = ScaleConfig::quick();
        let machine = MachineConfig::tiny_test();
        vec![
            CellSpec::reference(Benchmark::Spmv, scale, machine.clone(), 2),
            CellSpec::sampled(Benchmark::Spmv, scale, machine.clone(), 2, TaskPointConfig::lazy()),
            CellSpec::sampled(Benchmark::Spmv, scale, machine, 2, TaskPointConfig::periodic()),
        ]
    }

    #[test]
    fn outcomes_come_back_in_spec_order() {
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(4));
        let specs = tiny_specs();
        let report = campaign.run(&specs);
        assert_eq!(report.outcomes.len(), specs.len());
        for (spec, outcome) in specs.iter().zip(&report.outcomes) {
            assert_eq!(outcome.record.cell, spec.hash_hex());
        }
        assert_eq!(report.computed, 3);
        assert_eq!(report.cached, 0);
        // Three lines, kinds in order.
        let jsonl = report.jsonl();
        let kinds: Vec<&str> = jsonl
            .lines()
            .map(|l| if l.contains("\"kind\":\"reference\"") { "r" } else { "s" })
            .collect();
        assert_eq!(kinds, vec!["r", "s", "s"]);
    }

    #[test]
    fn sampled_cells_share_one_reference_with_the_reference_cell() {
        // All three cells need the same detailed run; the context must
        // compute it exactly once even under a parallel executor. Equality
        // of reference_cycles across records is the observable.
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(3));
        let report = campaign.run(&tiny_specs());
        let ref_cycles = report.outcomes[0].record.metrics.as_reference().unwrap().total_cycles;
        for o in &report.outcomes[1..] {
            assert_eq!(o.record.metrics.as_eval().unwrap().reference_cycles, ref_cycles);
        }
    }

    #[test]
    fn duplicate_specs_in_one_batch_simulate_once() {
        // Sweep::All genuinely contains coinciding cells (e.g. a Fig. 6
        // history config equal to lazy()); they must dedup against the
        // in-flight guard, not race or re-simulate.
        let scale = ScaleConfig::quick();
        let machine = MachineConfig::tiny_test();
        let spec = CellSpec::sampled(Benchmark::Spmv, scale, machine, 2, TaskPointConfig::lazy());
        let specs = vec![spec.clone(), spec.clone(), spec];
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(3));
        let report = campaign.run(&specs);
        assert_eq!(report.computed, 1, "one simulation for three identical specs");
        assert_eq!(report.cached, 2);
        let jsonl = report.jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], lines[1]);
        assert_eq!(lines[1], lines[2]);
    }

    #[test]
    fn telemetry_dir_exports_traces_progress_and_profile() {
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-stores")
            .join(format!("telemetry-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let tdir = dir.join("telemetry");
        // Sequential executor: the reference cell runs before the sampled
        // cells that depend on it, so its own spec does the simulating and
        // every cell exports a trace.
        let campaign = Campaign::new(ResultStore::at(dir.join("store")), Executor::new(1))
            .with_telemetry_dir(&tdir);
        let specs = tiny_specs();
        let report = campaign.run_labeled("test.quick", &specs);
        assert_eq!(report.computed, 3);
        for o in &report.outcomes {
            assert!(tdir.join(format!("{}.trace.json", o.record.cell)).is_file());
            assert!(tdir.join(format!("{}.tptrace", o.record.cell)).is_file());
        }
        assert!(tdir.join("profile.trace.json").is_file());
        let snap = ProgressSnapshot::read(&dir.join("store")).expect("progress.json written");
        assert_eq!(snap.label, "test.quick");
        assert_eq!(snap.total, 3);
        assert_eq!(snap.computed, 3);
        assert_eq!(snap.cached, 0);
        assert_eq!(snap.in_flight, 0);
        assert!(snap.rolling_minstr_per_sec.unwrap() > 0.0);
        // Recording must not perturb the canonical records: an unobserved
        // in-memory run of the same specs produces identical JSONL.
        let plain = Campaign::new(ResultStore::disabled(), Executor::new(1)).run(&specs);
        assert_eq!(plain.jsonl(), report.jsonl());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timings_sidecar_has_one_line_per_cell() {
        let campaign = Campaign::new(ResultStore::disabled(), Executor::new(2));
        let report = campaign.run(&tiny_specs());
        assert_eq!(report.timings_jsonl().lines().count(), 3);
        for line in report.timings_jsonl().lines() {
            assert!(line.contains("\"wall_seconds\":"));
        }
    }
}
