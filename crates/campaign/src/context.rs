//! Shared computation context: programs and detailed references computed
//! once per process and shared across cells (and across executor threads).
//!
//! Generated programs and full-detail reference runs are the expensive
//! shared inputs of a sweep: every sampled cell of Figs. 7–10 compares
//! against the reference of its `(benchmark, machine, threads)` cell, and
//! several figures share benchmarks. The context keys both by content
//! (program: benchmark + scale; reference: the reference cell's hash) and
//! guards each slot with a [`OnceLock`], so under a parallel executor only
//! one worker computes a given unit while the others block on it —
//! never duplicating a multi-second detailed run.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use taskpoint::{
    run_adaptive_observed, run_clustered_adaptive_observed, run_clustered_observed,
    run_reference_observed, run_sampled_observed, run_stratified_observed, AccuracyReport,
    ExperimentOutcome, PolicyConfig, ResampleCause,
};
use taskpoint_runtime::Program;
use taskpoint_stats::{normalize_by_group, BoxplotStats};
use taskpoint_workloads::{Benchmark, ExternalWorkload, ScaleConfig};
use tasksim::{
    DetailedOnly, NoiseModel, ProceduralTraces, RecordedTraces, SimResult, Simulation, Telemetry,
    TraceProvider,
};

use crate::record::{
    CellMetrics, CellOutcome, CellRecord, CellTiming, EvalMetrics, ExploreMetrics, GroupMetric,
    PerfProfile, RefMetrics, StoredCell, VariationMetrics,
};
use crate::spec::{CellKind, CellSpec};
use crate::store::ResultStore;

/// Program cache key: benchmark + scale (by bit pattern).
type ProgramKey = (Benchmark, u64, u64);

fn program_key(bench: Benchmark, scale: &ScaleConfig) -> ProgramKey {
    (bench, scale.instr_factor.to_bits(), scale.seed)
}

/// A computed (or cache-loaded) reference unit.
#[derive(Debug, Clone)]
pub struct ReferenceEntry {
    /// The reference result (reports stripped; cache-loaded entries are
    /// reconstructed summaries carrying cycles, counts and wall time).
    pub result: Arc<SimResult>,
    /// The persisted form.
    pub stored: StoredCell,
    /// Whether it came from the store.
    pub cached: bool,
}

/// Shared per-process computation state.
///
/// Every expensive unit — program, reference, and each non-reference cell
/// — sits behind a per-key [`OnceLock`], so duplicate specs in one batch
/// (e.g. a Fig. 6 config that coincides with a Fig. 7/9 cell inside
/// `Sweep::All`) are simulated once and never race on the store.
#[derive(Debug, Default)]
pub struct Context {
    programs: Mutex<HashMap<ProgramKey, Arc<OnceLock<Arc<Program>>>>>,
    references: Mutex<HashMap<String, Arc<OnceLock<ReferenceEntry>>>>,
    cells: Mutex<HashMap<String, Arc<OnceLock<StoredCell>>>>,
    /// Recorded-stream bundles of external (ingested) workloads, shared
    /// like programs: the fixture is parsed and packaged once per process.
    bundles: Mutex<HashMap<ExternalWorkload, Arc<OnceLock<Arc<RecordedTraces>>>>>,
}

fn strip_reports(mut result: SimResult) -> SimResult {
    result.reports = Vec::new();
    result
}

/// Rebuilds a summary `SimResult` from a cached reference record — enough
/// for [`ExperimentOutcome::compare`] (cycles + wall time) and for callers
/// inspecting task counts.
fn reference_result_from_stored(stored: &StoredCell, workers: u32) -> SimResult {
    let m = stored.record.metrics.as_reference().expect("reference record");
    // v5 records persist latency percentiles; the stub rebuilds the
    // summary struct (count = completed tasks). Pre-v5 entries default.
    let task_latency = match &m.perf {
        Some(p) => tasksim::LatencyPercentiles {
            count: m.detailed_tasks,
            p50: p.lat_p50,
            p99: p.lat_p99,
            p999: p.lat_p999,
        },
        None => Default::default(),
    };
    let groups = m
        .groups
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|g| tasksim::GroupStats {
            name: g.name.clone(),
            cores: g.cores,
            clock_divider: g.clock_divider,
            detailed_tasks: g.detailed_tasks,
            fast_tasks: 0,
            instructions: g.instructions,
            busy_ticks: g.busy_ticks,
        })
        .collect();
    SimResult {
        total_cycles: m.total_cycles,
        wall_seconds: stored.timing.wall_seconds,
        detailed_tasks: m.detailed_tasks,
        fast_tasks: 0,
        detailed_instructions: m.instructions,
        fast_instructions: 0,
        reports: Vec::new(),
        invalidations: 0,
        dram_accesses: 0,
        private_cache: Vec::new(),
        shared_cache: Vec::new(),
        workers,
        groups,
        parallel_epochs: Default::default(),
        // Stall attribution is not reconstructible from the flat summed
        // keys; the stub carries no accounts (callers treat that as "no
        // accounting data", same as a pre-v5 record).
        cycle_accounts: Vec::new(),
        task_latency,
    }
}

/// The per-group metrics a reference result persists: `None` for
/// homogeneous machines (the record then omits the key entirely).
fn group_metrics(result: &SimResult) -> Option<Vec<GroupMetric>> {
    if result.groups.is_empty() {
        return None;
    }
    Some(
        result
            .groups
            .iter()
            .map(|g| GroupMetric {
                name: g.name.clone(),
                cores: g.cores,
                clock_divider: g.clock_divider,
                detailed_tasks: g.detailed_tasks,
                instructions: g.instructions,
                busy_ticks: g.busy_ticks,
            })
            .collect(),
    )
}

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns (generating on first use) the benchmark's program at the
    /// given scale.
    pub fn program(&self, bench: Benchmark, scale: &ScaleConfig) -> Arc<Program> {
        let slot = {
            let mut map = self.programs.lock().expect("program map poisoned");
            map.entry(program_key(bench, scale)).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(bench.generate(scale))).clone()
    }

    /// Returns (ingesting on first use) the recorded-stream bundle of an
    /// external workload's fixture trace.
    pub fn bundle(&self, workload: ExternalWorkload) -> Arc<RecordedTraces> {
        let slot = {
            let mut map = self.bundles.lock().expect("bundle map poisoned");
            map.entry(workload).or_default().clone()
        };
        slot.get_or_init(|| Arc::new(RecordedTraces::from_ingested(&workload.ingest()))).clone()
    }

    /// The trace provider a cell's detailed streams come from: the
    /// ingested bundle for external benchmarks (their fallback specs are
    /// placeholders), the procedural generator for everything else.
    /// Cloning the bundle shares the `Arc`-backed streams, not the bytes.
    fn provider(&self, bench: Benchmark) -> Box<dyn TraceProvider> {
        match bench {
            Benchmark::External(w) => Box::new(self.bundle(w).as_ref().clone()),
            _ => Box::new(ProceduralTraces),
        }
    }

    /// Returns (computing or cache-loading on first use) the reference
    /// entry for a reference cell spec. `cached` in the entry is true iff
    /// it was served from the persistent store.
    pub fn reference_entry(&self, store: &ResultStore, spec: &CellSpec) -> ReferenceEntry {
        self.reference_entry_observed(store, spec, &Telemetry::disabled())
    }

    /// Like [`Context::reference_entry`], recording the reference run into
    /// `telemetry` when this call performs the simulation. Cache hits (in
    /// memory or on disk) record nothing — there is no run to observe.
    pub fn reference_entry_observed(
        &self,
        store: &ResultStore,
        spec: &CellSpec,
        telemetry: &Telemetry,
    ) -> ReferenceEntry {
        debug_assert!(matches!(spec.kind, CellKind::Reference));
        let hash = spec.hash_hex();
        let slot = {
            let mut map = self.references.lock().expect("reference map poisoned");
            map.entry(hash.clone()).or_default().clone()
        };
        let entry = slot.get_or_init(|| {
            if let Some(stored) = store.load(&hash) {
                let result = Arc::new(reference_result_from_stored(&stored, spec.workers));
                return ReferenceEntry { result, stored, cached: true };
            }
            let program = self.program(spec.bench, &spec.scale);
            let result = strip_reports(run_reference_observed(
                &program,
                spec.machine.clone(),
                spec.workers,
                self.provider(spec.bench),
                telemetry.clone(),
            ));
            let stored = StoredCell {
                record: CellRecord {
                    cell: hash.clone(),
                    bench: spec.bench.name().to_string(),
                    machine: spec.machine.name.clone(),
                    workers: spec.workers,
                    scale: spec.scale,
                    kind: spec.kind.tag().to_string(),
                    metrics: CellMetrics::Reference(RefMetrics {
                        total_cycles: result.total_cycles,
                        detailed_tasks: result.detailed_tasks,
                        instructions: result.total_instructions(),
                        groups: group_metrics(&result),
                        perf: PerfProfile::from_result(&result),
                    }),
                },
                timing: CellTiming {
                    wall_seconds: result.wall_seconds,
                    reference_wall_seconds: None,
                    speedup: None,
                    detailed_instr_per_sec: result.detailed_instr_per_sec(),
                },
            };
            store.save(&hash, &stored);
            ReferenceEntry { result: Arc::new(result), stored, cached: false }
        });
        entry.clone()
    }

    /// Convenience: the reference `SimResult` for a cell (shared, reports
    /// stripped).
    pub fn reference(
        &self,
        store: &ResultStore,
        bench: Benchmark,
        scale: ScaleConfig,
        machine: tasksim::MachineConfig,
        workers: u32,
    ) -> Arc<SimResult> {
        let spec = CellSpec::reference(bench, scale, machine, workers);
        self.reference_entry(store, &spec).result
    }

    /// Computes (or loads) one cell. `cached` in the returned outcome is
    /// true whenever the process did not simulate it — served from the
    /// store, or deduplicated against a concurrent/earlier identical spec.
    ///
    /// For reference cells the flag deliberately reflects the *store*, not
    /// which call won the in-memory init: a sampled cell that races ahead
    /// of its reference's own spec computes the reference as a dependency,
    /// and which thread wins that race is scheduling noise — counting it
    /// as a cache hit would make `CampaignReport::computed` depend on
    /// thread timing.
    pub fn compute(&self, store: &ResultStore, spec: &CellSpec) -> CellOutcome {
        self.compute_observed(store, spec, &Telemetry::disabled())
    }

    /// Like [`Context::compute`], recording the cell's own simulation into
    /// `telemetry` when this call performs it. Cache hits record nothing,
    /// and dependency work (a sampled cell computing its reference) stays
    /// unobserved so each cell's event stream describes exactly one run.
    pub fn compute_observed(
        &self,
        store: &ResultStore,
        spec: &CellSpec,
        telemetry: &Telemetry,
    ) -> CellOutcome {
        let hash = spec.hash_hex();
        if let CellKind::Reference = spec.kind {
            let entry = self.reference_entry_observed(store, spec, telemetry);
            return CellOutcome {
                spec: spec.clone(),
                record: entry.stored.record.clone(),
                timing: entry.stored.timing.clone(),
                cached: entry.cached,
            };
        }
        let slot = {
            let mut map = self.cells.lock().expect("cell map poisoned");
            map.entry(hash.clone()).or_default().clone()
        };
        let mut ran_sim = false;
        let stored = slot.get_or_init(|| {
            if let Some(stored) = store.load(&hash) {
                return stored;
            }
            ran_sim = true;
            let stored = self.simulate_cell(store, spec, &hash, telemetry);
            store.save(&hash, &stored);
            stored
        });
        CellOutcome {
            spec: spec.clone(),
            record: stored.record.clone(),
            timing: stored.timing.clone(),
            cached: !ran_sim,
        }
    }

    /// Runs the simulation behind one non-reference cell. `telemetry`
    /// observes the cell's own run; dependency references stay unobserved.
    fn simulate_cell(
        &self,
        store: &ResultStore,
        spec: &CellSpec,
        hash: &str,
        telemetry: &Telemetry,
    ) -> StoredCell {
        match &spec.kind {
            CellKind::Reference => unreachable!("reference cells go through reference_entry"),
            CellKind::Sampled { config } => {
                let program = self.program(spec.bench, &spec.scale);
                let reference = self
                    .reference_entry(store, &spec.reference_spec().expect("sampled has reference"));
                // Adaptive-policy cells run the confidence-driven
                // controller, stratified cells the two-phase Neyman
                // controller; both keep the per-cluster accuracy report
                // for the record's CI and allocation fields.
                let (sampled, stats, accuracy) = if config.policy.is_adaptive() {
                    let (sampled, stats, accuracy) = run_adaptive_observed(
                        &program,
                        spec.machine.clone(),
                        spec.workers,
                        *config,
                        self.provider(spec.bench),
                        telemetry.clone(),
                    );
                    (sampled, stats, Some(accuracy))
                } else if config.policy.is_stratified() {
                    let (sampled, stats, accuracy) = run_stratified_observed(
                        &program,
                        spec.machine.clone(),
                        spec.workers,
                        *config,
                        self.provider(spec.bench),
                        telemetry.clone(),
                    );
                    (sampled, stats, Some(accuracy))
                } else {
                    let (sampled, stats) = run_sampled_observed(
                        &program,
                        spec.machine.clone(),
                        spec.workers,
                        *config,
                        self.provider(spec.bench),
                        telemetry.clone(),
                    );
                    (sampled, stats, None)
                };
                let outcome = ExperimentOutcome::compare(&sampled, &reference.result);
                self.eval_stored(spec, hash, &sampled, &outcome, &stats, None, accuracy.as_ref())
            }
            CellKind::Clustered { config, granularity } => {
                let program = self.program(spec.bench, &spec.scale);
                let reference = self.reference_entry(
                    store,
                    &spec.reference_spec().expect("clustered has reference"),
                );
                let (sampled, stats, clusters, accuracy) = if config.policy.is_adaptive() {
                    let (sampled, stats, accuracy, clusters) = run_clustered_adaptive_observed(
                        &program,
                        spec.machine.clone(),
                        spec.workers,
                        *config,
                        *granularity,
                        self.provider(spec.bench),
                        telemetry.clone(),
                    );
                    (sampled, stats, clusters, Some(accuracy))
                } else {
                    let (sampled, stats, clusters) = run_clustered_observed(
                        &program,
                        spec.machine.clone(),
                        spec.workers,
                        *config,
                        *granularity,
                        self.provider(spec.bench),
                        telemetry.clone(),
                    );
                    (sampled, stats, clusters, None)
                };
                let outcome = ExperimentOutcome::compare(&sampled, &reference.result);
                self.eval_stored(
                    spec,
                    hash,
                    &sampled,
                    &outcome,
                    &stats,
                    Some(clusters as u64),
                    accuracy.as_ref(),
                )
            }
            CellKind::Variation { noise_seed } => {
                let program = self.program(spec.bench, &spec.scale);
                let mut builder = Simulation::builder(&program, spec.machine.clone())
                    .workers(spec.workers)
                    .detail_threads(tasksim::detail_threads_from_env())
                    .collect_reports(true)
                    .telemetry(telemetry.clone());
                builder = builder.traces(self.provider(spec.bench));
                if let Some(seed) = noise_seed {
                    builder = builder.noise(NoiseModel::native_execution(*seed));
                }
                let result = builder.build().run(&mut DetailedOnly);
                let samples: Vec<(u32, f64)> = result
                    .reports
                    .iter()
                    .filter(|r| r.instructions > 0)
                    .map(|r| (r.type_id.0, r.ipc()))
                    .collect();
                let deviations = normalize_by_group(samples);
                let stats = BoxplotStats::from_samples(&deviations)
                    .expect("variation cell produced no IPC samples");
                StoredCell {
                    record: CellRecord {
                        cell: hash.to_string(),
                        bench: spec.bench.name().to_string(),
                        machine: spec.machine.name.clone(),
                        workers: spec.workers,
                        scale: spec.scale,
                        kind: spec.kind.tag().to_string(),
                        metrics: CellMetrics::Variation(VariationMetrics::from_boxplot(&stats)),
                    },
                    timing: CellTiming {
                        wall_seconds: result.wall_seconds,
                        reference_wall_seconds: None,
                        speedup: None,
                        detailed_instr_per_sec: result.detailed_instr_per_sec(),
                    },
                }
            }
            CellKind::Explore { config } => {
                let program = self.program(spec.bench, &spec.scale);
                let (sampled, stats) = run_sampled_observed(
                    &program,
                    spec.machine.clone(),
                    spec.workers,
                    *config,
                    self.provider(spec.bench),
                    telemetry.clone(),
                );
                StoredCell {
                    record: CellRecord {
                        cell: hash.to_string(),
                        bench: spec.bench.name().to_string(),
                        machine: spec.machine.name.clone(),
                        workers: spec.workers,
                        scale: spec.scale,
                        kind: spec.kind.tag().to_string(),
                        metrics: CellMetrics::Explore(ExploreMetrics {
                            predicted_cycles: sampled.total_cycles,
                            detail_fraction: sampled.detail_fraction(),
                            detailed_tasks: sampled.detailed_tasks,
                            fast_tasks: sampled.fast_tasks,
                            detailed_instructions: sampled.detailed_instructions,
                            fast_instructions: sampled.fast_instructions,
                            resamples: stats.resamples.len() as u64,
                        }),
                    },
                    timing: CellTiming {
                        wall_seconds: sampled.wall_seconds,
                        reference_wall_seconds: None,
                        speedup: None,
                        detailed_instr_per_sec: sampled.detailed_instr_per_sec(),
                    },
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn eval_stored(
        &self,
        spec: &CellSpec,
        hash: &str,
        sampled: &SimResult,
        outcome: &ExperimentOutcome,
        stats: &taskpoint::SamplingStats,
        clusters: Option<u64>,
        accuracy: Option<&AccuracyReport>,
    ) -> StoredCell {
        // Stratified cells persist the configured pilot/budget alongside
        // the realized allocation; everything else omits the keys.
        let strat = accuracy.and_then(|a| match &a.config {
            PolicyConfig::Stratified(c) => Some(*c),
            _ => None,
        });
        StoredCell {
            record: CellRecord {
                cell: hash.to_string(),
                bench: spec.bench.name().to_string(),
                machine: spec.machine.name.clone(),
                workers: spec.workers,
                scale: spec.scale,
                kind: spec.kind.tag().to_string(),
                metrics: CellMetrics::Eval(Box::new(EvalMetrics {
                    error_percent: outcome.error_percent,
                    predicted_cycles: outcome.predicted_cycles,
                    reference_cycles: outcome.reference_cycles,
                    detail_fraction: outcome.detail_fraction,
                    detailed_tasks: sampled.detailed_tasks,
                    fast_tasks: sampled.fast_tasks,
                    detailed_instructions: sampled.detailed_instructions,
                    fast_instructions: sampled.fast_instructions,
                    resamples: stats.resamples.len() as u64,
                    resamples_policy: stats.resamples_by(ResampleCause::Policy) as u64,
                    resamples_new_type: stats.resamples_by(ResampleCause::NewTaskType) as u64,
                    resamples_concurrency: stats.resamples_by(ResampleCause::ConcurrencyChange)
                        as u64,
                    resamples_empty: stats.resamples_by(ResampleCause::EmptyHistories) as u64,
                    clusters,
                    ci_target: accuracy.and_then(|a| a.config.target_ci()),
                    ci_confidence: accuracy.map(|a| a.config.confidence().level()),
                    ci_max: accuracy.and_then(AccuracyReport::max_rel_ci),
                    ci_mean: accuracy.and_then(AccuracyReport::mean_rel_ci),
                    ci_units: accuracy.map(|a| a.units() as u64),
                    ci_converged: accuracy.map(|a| a.converged_units() as u64),
                    strat_pilot: strat.map(|c| c.pilot_samples),
                    strat_budget: strat.map(|c| c.budget),
                    strat_allocated: accuracy.and_then(|a| a.allocated),
                    strat_reopened: accuracy.map(|a| a.reopened_bands() as u64),
                    perf: PerfProfile::from_result(sampled),
                })),
            },
            timing: CellTiming {
                wall_seconds: outcome.sampled_wall_seconds,
                reference_wall_seconds: Some(outcome.reference_wall_seconds),
                speedup: Some(outcome.speedup),
                detailed_instr_per_sec: sampled.detailed_instr_per_sec(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use taskpoint::TaskPointConfig;
    use tasksim::MachineConfig;

    fn quick() -> ScaleConfig {
        ScaleConfig::quick()
    }

    #[test]
    fn programs_are_shared() {
        let ctx = Context::new();
        let a = ctx.program(Benchmark::Spmv, &quick());
        let b = ctx.program(Benchmark::Spmv, &quick());
        assert!(Arc::ptr_eq(&a, &b));
        let other_scale = ScaleConfig { seed: 1, ..quick() };
        let c = ctx.program(Benchmark::Spmv, &other_scale);
        assert!(!Arc::ptr_eq(&a, &c), "different scale, different program");
    }

    #[test]
    fn references_are_shared_and_report_free() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let a = ctx.reference(&store, Benchmark::Spmv, quick(), machine.clone(), 2);
        let b = ctx.reference(&store, Benchmark::Spmv, quick(), machine, 2);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.reports.is_empty());
        assert!(a.total_cycles > 0);
    }

    #[test]
    fn sampled_cell_reuses_in_memory_reference() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let reference = ctx.reference(&store, Benchmark::Spmv, quick(), machine.clone(), 2);
        let spec = CellSpec::sampled(Benchmark::Spmv, quick(), machine, 2, TaskPointConfig::lazy());
        let outcome = ctx.compute(&store, &spec);
        assert!(!outcome.cached);
        let m = outcome.record.metrics.as_eval().unwrap();
        assert_eq!(m.reference_cycles, reference.total_cycles);
        assert!(m.error_percent.is_finite());
        assert_eq!(
            m.resamples,
            m.resamples_policy + m.resamples_new_type + m.resamples_concurrency + m.resamples_empty
        );
    }

    #[test]
    fn adaptive_cells_record_configured_and_achieved_ci() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let spec = CellSpec::sampled(
            Benchmark::Spmv,
            quick(),
            machine.clone(),
            2,
            TaskPointConfig::adaptive(0.1),
        );
        let outcome = ctx.compute(&store, &spec);
        let m = outcome.record.metrics.as_eval().unwrap();
        assert_eq!(m.ci_target, Some(0.1));
        assert_eq!(m.ci_confidence, Some(0.95));
        let units = m.ci_units.expect("adaptive cells record unit counts");
        assert!(units >= 1);
        assert!(m.ci_converged.unwrap() <= units);
        assert!(m.error_percent.is_finite());
        // Non-adaptive cells keep the CI fields empty.
        let lazy = ctx.compute(
            &store,
            &CellSpec::sampled(Benchmark::Spmv, quick(), machine, 2, TaskPointConfig::lazy()),
        );
        let lm = lazy.record.metrics.as_eval().unwrap();
        assert_eq!(lm.ci_target, None);
        assert_eq!(lm.ci_units, None);
        // The adaptive record round-trips through the store encoding.
        let stored = StoredCell { record: outcome.record.clone(), timing: outcome.timing.clone() };
        assert_eq!(StoredCell::from_json(&stored.to_json()).unwrap(), stored);
    }

    #[test]
    fn stratified_cells_record_budget_and_allocation() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let spec = CellSpec::sampled(
            Benchmark::Spmv,
            quick(),
            machine,
            2,
            TaskPointConfig::stratified(4, 64),
        );
        let outcome = ctx.compute(&store, &spec);
        let m = outcome.record.metrics.as_eval().unwrap();
        assert_eq!(m.strat_pilot, Some(4));
        assert_eq!(m.strat_budget, Some(64));
        let allocated = m.strat_allocated.expect("pilot completed, allocation ran");
        assert!(allocated <= 64, "allocation {allocated} within budget");
        assert_eq!(m.strat_reopened, Some(0), "quick spmv has no concurrency ramp");
        // Budget-driven policy: no CI target, but a confidence level for
        // the reported per-stratum intervals.
        assert_eq!(m.ci_target, None);
        assert_eq!(m.ci_confidence, Some(0.95));
        assert!(m.ci_units.unwrap() >= 1);
        assert!(m.error_percent.is_finite());
        // The stratified record round-trips through the store encoding.
        let stored = StoredCell { record: outcome.record.clone(), timing: outcome.timing.clone() };
        assert_eq!(StoredCell::from_json(&stored.to_json()).unwrap(), stored);
    }

    #[test]
    fn explore_cells_simulate_without_a_reference() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let spec = CellSpec::explore(
            Benchmark::Spmv,
            quick(),
            MachineConfig::tiny_test(),
            2,
            TaskPointConfig::lazy(),
        );
        assert!(spec.reference_spec().is_none());
        let outcome = ctx.compute(&store, &spec);
        let m = outcome.record.metrics.as_explore().expect("explore metrics");
        assert!(m.predicted_cycles > 0);
        assert!(m.detail_fraction > 0.0 && m.detail_fraction < 1.0);
        assert_eq!(outcome.record.kind, "explore");
        // Throughput is advisory but must be present for a run that
        // executed detailed instructions.
        assert!(outcome.timing.detailed_instr_per_sec.unwrap() > 0.0);
        // And the whole thing round-trips through the store encoding.
        let stored = StoredCell { record: outcome.record.clone(), timing: outcome.timing.clone() };
        assert_eq!(StoredCell::from_json(&stored.to_json()).unwrap(), stored);
    }

    #[test]
    fn external_cells_simulate_from_the_ingested_bundle() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let bench = Benchmark::External(ExternalWorkload::DagMini);
        let scale = quick();
        // Reference counts every recorded instruction in detail.
        let reference = ctx.reference(&store, bench, scale, machine.clone(), 2);
        let trace = ExternalWorkload::DagMini.ingest();
        assert_eq!(reference.detailed_instructions, trace.total_instructions());
        // The sampled cell compares against that reference and
        // fast-forwards part of the 48 instances.
        let spec = CellSpec::sampled(bench, scale, machine, 2, TaskPointConfig::lazy());
        let outcome = ctx.compute(&store, &spec);
        let m = outcome.record.metrics.as_eval().unwrap();
        assert_eq!(m.reference_cycles, reference.total_cycles);
        assert!(m.error_percent.is_finite());
        assert!(m.fast_tasks > 0, "sampling fast-forwards some ingested instances");
        assert_eq!(m.detailed_tasks + m.fast_tasks, 48);
        // Determinism: recomputing through a fresh context is bit-identical.
        let ctx2 = Context::new();
        let again = ctx2.compute(&ResultStore::disabled(), &spec);
        assert_eq!(again.record.to_json(), outcome.record.to_json());
    }

    #[test]
    fn bundles_are_shared_per_process() {
        let ctx = Context::new();
        let a = ctx.bundle(ExternalWorkload::PipelineMini);
        let b = ctx.bundle(ExternalWorkload::PipelineMini);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn stored_reference_round_trips_through_stub() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::tiny_test();
        let spec = CellSpec::reference(Benchmark::Reduction, quick(), machine.clone(), 2);
        let entry = ctx.reference_entry(&store, &spec);
        let stub = reference_result_from_stored(&entry.stored, spec.workers);
        assert_eq!(stub.total_cycles, entry.result.total_cycles);
        assert_eq!(stub.detailed_tasks, entry.result.detailed_tasks);
        assert_eq!(stub.workers, 2);
        assert!(stub.groups.is_empty(), "homogeneous stub has no groups");
    }

    #[test]
    fn heterogeneous_reference_persists_per_group_metrics() {
        let ctx = Context::new();
        let store = ResultStore::disabled();
        let machine = MachineConfig::big_little(2, 2);
        let spec = CellSpec::reference(Benchmark::Cholesky, quick(), machine, 4);
        let entry = ctx.reference_entry(&store, &spec);
        // The live result carries groups, the record persists them, and
        // the stub reconstructs them.
        assert_eq!(entry.result.groups.len(), 2);
        let m = entry.stored.record.metrics.as_reference().unwrap();
        let groups = m.groups.as_ref().expect("hetero record stores groups");
        assert_eq!(groups[0].name, "big");
        assert_eq!(groups[1].name, "little");
        assert_eq!(groups[1].clock_divider, 2);
        // Little cores on a half clock must accumulate measurably
        // different busy time than big cores (the issue's acceptance
        // criterion at the campaign layer).
        assert_ne!(groups[0].busy_ticks, groups[1].busy_ticks);
        let stub = reference_result_from_stored(&entry.stored, spec.workers);
        assert_eq!(stub.groups.len(), 2);
        assert_eq!(stub.groups[0].detailed_tasks, groups[0].detailed_tasks);
        // And the record's canonical JSON round-trips bit-identically.
        let text = entry.stored.to_json();
        assert!(text.contains("\"groups\":[{\"name\":\"big\""));
        assert_eq!(StoredCell::from_json(&text).unwrap(), entry.stored);
    }
}
