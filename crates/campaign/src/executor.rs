//! Deterministic work-stealing executor.
//!
//! Cells of a sweep are independent, so a campaign fans them out over a
//! pool of OS threads. Determinism is *by construction*, not by luck:
//!
//! * each cell's computation is internally deterministic (pinned seeds),
//!   so *which* worker runs it cannot change its canonical record;
//! * every result is written into the slot of its original index, and the
//!   campaign emits in spec order — so the output byte stream is identical
//!   for 1, 4 or 64 workers, and identical to a sequential run.
//!
//! Scheduling is classic work-stealing: the items are dealt round-robin
//! into one deque per worker; a worker pops from the *front* of its own
//! deque and, when empty, steals from the *back* of the fullest victim.
//! Stealing from the back moves the work least likely to be popped next by
//! the owner, which keeps long reference runs from pinning a whole sweep
//! behind one thread.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width worker pool executing one batch of independent jobs.
#[derive(Debug, Clone)]
pub struct Executor {
    workers: usize,
}

impl Executor {
    /// Creates an executor with `workers` OS threads (clamped to ≥ 1).
    pub fn new(workers: usize) -> Self {
        Self { workers: workers.max(1) }
    }

    /// An executor sized from `$TASKPOINT_JOBS` or the host parallelism
    /// (capped at 8 — simulation cells are memory-hungry).
    pub fn from_env() -> Self {
        let jobs = std::env::var("TASKPOINT_JOBS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
            });
        Self::new(jobs)
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item, in parallel, returning results in item
    /// order. `f` receives `(index, &item)`.
    ///
    /// # Panics
    ///
    /// Propagates a panic from `f` (the batch is aborted).
    pub fn run<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n);
        if workers == 1 {
            return items.iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }

        // Deal indices round-robin so every worker starts with a spread of
        // the sweep (adjacent cells tend to share a benchmark and
        // therefore cost; dealing avoids one worker drawing all the
        // expensive ones).
        let queues: Vec<Mutex<VecDeque<usize>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, q) in (0..n).zip((0..workers).cycle()) {
            queues[q].lock().expect("queue poisoned").push_back(i);
        }

        let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let panicked = AtomicUsize::new(0);

        std::thread::scope(|scope| {
            for me in 0..workers {
                let queues = &queues;
                let slots = &slots;
                let f = &f;
                let panicked = &panicked;
                scope.spawn(move || {
                    loop {
                        if panicked.load(Ordering::Relaxed) != 0 {
                            return;
                        }
                        let job = {
                            let mut own = queues[me].lock().expect("queue poisoned");
                            own.pop_front()
                        }
                        .or_else(|| Self::steal(queues, me));
                        let Some(index) = job else { return };
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            f(index, &items[index])
                        }));
                        match result {
                            Ok(r) => *slots[index].lock().expect("slot poisoned") = Some(r),
                            Err(payload) => {
                                panicked.store(1, Ordering::Relaxed);
                                // Re-raise on this thread after flagging, so
                                // siblings drain quickly and the scope
                                // propagates the original payload.
                                std::panic::resume_unwind(payload);
                            }
                        }
                    }
                });
            }
        });

        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner().expect("slot poisoned").expect("every job ran exactly once")
            })
            .collect()
    }

    /// Steals one job from the back of the fullest other queue.
    fn steal(queues: &[Mutex<VecDeque<usize>>], me: usize) -> Option<usize> {
        // Two passes: a sizing pass without holding more than one lock at
        // a time, then a pop from the best victim (re-checked under its
        // lock; another thief may have emptied it, in which case fall
        // through to any non-empty queue).
        let mut best: Option<(usize, usize)> = None;
        for (i, q) in queues.iter().enumerate() {
            if i == me {
                continue;
            }
            let len = q.lock().expect("queue poisoned").len();
            if len > 0 && best.is_none_or(|(_, l)| len > l) {
                best = Some((i, len));
            }
        }
        let (victim, _) = best?;
        if let Some(job) = queues[victim].lock().expect("queue poisoned").pop_back() {
            return Some(job);
        }
        // Raced another thief; linear fallback scan.
        for (i, q) in queues.iter().enumerate() {
            if i == me {
                continue;
            }
            if let Some(job) = q.lock().expect("queue poisoned").pop_back() {
                return Some(job);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_item_order_regardless_of_workers() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = Executor::new(workers).run(&items, |_, &x| x * x);
            assert_eq!(got, expect, "{workers} workers");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counters: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        Executor::new(7).run(&(0..100).collect::<Vec<_>>(), |i, _| {
            counters[i].fetch_add(1, Ordering::SeqCst);
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn stealing_balances_skewed_work() {
        // Item 0 is enormously more expensive than the rest; with 2
        // workers the short items all land behind it on worker 0's deque
        // unless stealing moves them. The run must still finish and
        // preserve order (a hang here would be the regression).
        let items: Vec<u64> = (0..64).collect();
        let got = Executor::new(2).run(&items, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn workers_genuinely_overlap() {
        // Structural concurrency check (no wall-clock bound, so it cannot
        // flake on a loaded runner): with 4 workers over blocking jobs,
        // at least two jobs must be observed in flight simultaneously —
        // the property behind the multi-worker wall-clock speedup on
        // multi-core hosts.
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        let items: Vec<u64> = (0..8).collect();
        Executor::new(4).run(&items, |_, _| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(20));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(
            peak.load(Ordering::SeqCst) >= 2,
            "4 workers never overlapped: peak {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn empty_and_singleton_batches() {
        let e = Executor::new(4);
        let empty: Vec<u32> = Vec::new();
        assert!(e.run(&empty, |_, &x| x).is_empty());
        assert_eq!(e.run(&[5u32], |_, &x| x * 2), vec![10]);
    }

    #[test]
    fn worker_count_clamps_to_one() {
        assert_eq!(Executor::new(0).workers(), 1);
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(4).run(&(0..32).collect::<Vec<_>>(), |i, _| {
                if i == 13 {
                    panic!("boom");
                }
                i
            });
        });
        assert!(result.is_err());
    }
}
