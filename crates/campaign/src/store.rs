//! Content-addressed result store.
//!
//! Layout under the store root (default `results/campaign/`):
//!
//! ```text
//! results/campaign/
//!   cache/
//!     <code-fingerprint>/      one directory per workspace code version
//!       <cell-hash>.json       one StoredCell per computed cell
//!   <sweep>.<scale>.jsonl      canonical JSONL artefacts emitted by runs
//! ```
//!
//! Cells are keyed by the spec's content hash *within* a directory named
//! after the workspace **code fingerprint** (computed by `build.rs` over
//! every crate that can change simulation output), so editing simulator or
//! workload code orphans stale results instead of serving them. Writes are
//! atomic (temp file + rename): a campaign killed mid-run leaves only
//! whole cell files behind, and a re-run resumes from exactly the cells
//! that completed.

use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::record::{RecordError, StoredCell};

/// The workspace code fingerprint baked in at compile time.
pub fn code_fingerprint() -> &'static str {
    env!("TASKPOINT_CODE_FINGERPRINT")
}

/// A content-addressed store of computed cells rooted at a directory.
#[derive(Debug, Clone)]
pub struct ResultStore {
    root: Option<PathBuf>,
    fingerprint: String,
}

impl ResultStore {
    /// Opens (without touching the filesystem yet) a store at `root`.
    pub fn at(root: impl Into<PathBuf>) -> Self {
        Self { root: Some(root.into()), fingerprint: code_fingerprint().to_string() }
    }

    /// The default store location: `$TASKPOINT_CAMPAIGN_DIR` or
    /// `results/campaign` relative to the working directory.
    pub fn default_root() -> PathBuf {
        std::env::var_os("TASKPOINT_CAMPAIGN_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("results").join("campaign"))
    }

    /// Opens the default store.
    pub fn open_default() -> Self {
        Self::at(Self::default_root())
    }

    /// A store that never persists anything — every lookup misses and
    /// every save is dropped. Used by unit tests and one-shot embedders
    /// that only want the in-memory sharing of a campaign run.
    pub fn disabled() -> Self {
        Self { root: None, fingerprint: code_fingerprint().to_string() }
    }

    /// Overrides the fingerprint (tests only — simulates a code change).
    #[doc(hidden)]
    pub fn with_fingerprint(mut self, fingerprint: &str) -> Self {
        self.fingerprint = fingerprint.to_string();
        self
    }

    /// The store root, if persistence is enabled.
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// The active fingerprint directory name.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    fn cache_dir(&self) -> Option<PathBuf> {
        Some(self.root.as_ref()?.join("cache").join(&self.fingerprint))
    }

    fn cell_path(&self, cell_hash: &str) -> Option<PathBuf> {
        // Hard validation (not debug_assert): `invalidate --cell` feeds
        // user input here, and a non-hex "hash" like `../../x` would
        // otherwise escape the store root.
        if cell_hash.is_empty() || !cell_hash.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        Some(self.cache_dir()?.join(format!("{cell_hash}.json")))
    }

    /// Loads a cached cell. Corrupt entries are treated as misses (and
    /// removed so the slot recomputes cleanly).
    pub fn load(&self, cell_hash: &str) -> Option<StoredCell> {
        let path = self.cell_path(cell_hash)?;
        let text = std::fs::read_to_string(&path).ok()?;
        match StoredCell::from_json(&text) {
            Ok(cell) => Some(cell),
            Err(RecordError::Parse(_) | RecordError::Shape(_)) => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// True if the cell is cached (without the cost of parsing it).
    pub fn contains(&self, cell_hash: &str) -> bool {
        self.cell_path(cell_hash).is_some_and(|p| p.is_file())
    }

    /// Persists a computed cell atomically. Failures are silently ignored
    /// (the cache is an accelerator, not a correctness dependency), but a
    /// warning is printed so operators notice read-only stores.
    pub fn save(&self, cell_hash: &str, cell: &StoredCell) {
        let Some(path) = self.cell_path(cell_hash) else { return };
        let Some(dir) = self.cache_dir() else { return };
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create store dir {}: {e}", dir.display());
            return;
        }
        // Pid + process-wide counter: concurrent saves of the same cell
        // (duplicate specs across executor threads) must never share a
        // temp file, or interleaved writes could publish corrupt JSON.
        static TMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = TMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = dir.join(format!(".{cell_hash}.{}.{seq}.tmp", std::process::id()));
        let write = || -> std::io::Result<()> {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(cell.to_json().as_bytes())?;
            f.write_all(b"\n")?;
            f.sync_all()?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            let _ = std::fs::remove_file(&tmp);
            eprintln!("warning: cannot persist cell {cell_hash}: {e}");
        }
    }

    /// Number of cells cached under the active fingerprint.
    pub fn len(&self) -> usize {
        self.iter_hashes().len()
    }

    /// True if nothing is cached under the active fingerprint.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cell hashes cached under the active fingerprint, sorted.
    pub fn iter_hashes(&self) -> Vec<String> {
        let Some(dir) = self.cache_dir() else { return Vec::new() };
        let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
        let mut hashes: Vec<String> = entries
            .flatten()
            .filter_map(|e| {
                let name = e.file_name().into_string().ok()?;
                let hash = name.strip_suffix(".json")?;
                if !hash.is_empty() && hash.bytes().all(|b| b.is_ascii_hexdigit()) {
                    Some(hash.to_string())
                } else {
                    None
                }
            })
            .collect();
        hashes.sort();
        hashes
    }

    /// Removes one cached cell. Returns whether it existed.
    pub fn invalidate_cell(&self, cell_hash: &str) -> bool {
        self.cell_path(cell_hash).is_some_and(|p| std::fs::remove_file(p).is_ok())
    }

    /// Removes every cached cell under the active fingerprint. Returns the
    /// number removed.
    pub fn invalidate_fingerprint(&self) -> usize {
        let hashes = self.iter_hashes();
        let mut removed = 0;
        for h in &hashes {
            if self.invalidate_cell(h) {
                removed += 1;
            }
        }
        if let Some(dir) = self.cache_dir() {
            let _ = std::fs::remove_dir(dir);
        }
        removed
    }

    /// Removes the whole cache (every fingerprint). Returns whether the
    /// cache directory existed.
    pub fn invalidate_all(&self) -> bool {
        let Some(root) = self.root.as_ref() else { return false };
        let cache = root.join("cache");
        let existed = cache.is_dir();
        if existed {
            let _ = std::fs::remove_dir_all(&cache);
        }
        existed
    }

    /// Lists the fingerprint directories present in the cache (stale ones
    /// linger until `invalidate_all`; `status` surfaces them).
    pub fn fingerprints_present(&self) -> Vec<String> {
        let Some(root) = self.root.as_ref() else { return Vec::new() };
        let Ok(entries) = std::fs::read_dir(root.join("cache")) else { return Vec::new() };
        let mut names: Vec<String> = entries
            .flatten()
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CellMetrics, CellRecord, CellTiming, RefMetrics};
    use taskpoint_workloads::ScaleConfig;

    fn tmp_store(name: &str) -> ResultStore {
        // Keep test artefacts inside the workspace target dir.
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/test-stores")
            .join(format!("store-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::at(dir)
    }

    fn stored(cell: &str) -> StoredCell {
        StoredCell {
            record: CellRecord {
                cell: cell.to_string(),
                bench: "spmv".to_string(),
                machine: "low-power".to_string(),
                workers: 2,
                scale: ScaleConfig::quick(),
                kind: "reference".to_string(),
                metrics: CellMetrics::Reference(RefMetrics {
                    total_cycles: 10,
                    detailed_tasks: 1,
                    instructions: 10,
                    groups: None,
                    perf: None,
                }),
            },
            timing: CellTiming {
                wall_seconds: 0.1,
                reference_wall_seconds: None,
                speedup: None,
                detailed_instr_per_sec: None,
            },
        }
    }

    #[test]
    fn save_load_round_trip() {
        let store = tmp_store("roundtrip");
        let hash = "a".repeat(32);
        assert!(store.load(&hash).is_none());
        assert!(!store.contains(&hash));
        let cell = stored(&hash);
        store.save(&hash, &cell);
        assert!(store.contains(&hash));
        assert_eq!(store.load(&hash), Some(cell));
        assert_eq!(store.iter_hashes(), vec![hash.clone()]);
        assert_eq!(store.len(), 1);
        let _ = store.invalidate_all();
    }

    #[test]
    fn corrupt_entries_become_misses_and_are_removed() {
        let store = tmp_store("corrupt");
        let hash = "b".repeat(32);
        let dir = store.cache_dir().unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!("{hash}.json")), b"{truncated").unwrap();
        assert!(store.load(&hash).is_none());
        assert!(!store.contains(&hash), "corrupt entry must be removed");
        let _ = store.invalidate_all();
    }

    #[test]
    fn fingerprint_change_orphans_entries() {
        let store = tmp_store("fpr");
        let hash = "c".repeat(32);
        store.save(&hash, &stored(&hash));
        assert!(store.contains(&hash));
        let other = store.clone().with_fingerprint("deadbeefdeadbeef");
        assert!(!other.contains(&hash), "different code version must miss");
        assert_eq!(store.fingerprints_present(), vec![store.fingerprint().to_string()]);
        let _ = store.invalidate_all();
    }

    #[test]
    fn invalidate_cell_and_fingerprint() {
        let store = tmp_store("inval");
        let h1 = "d".repeat(32);
        let h2 = "e".repeat(32);
        store.save(&h1, &stored(&h1));
        store.save(&h2, &stored(&h2));
        assert!(store.invalidate_cell(&h1));
        assert!(!store.invalidate_cell(&h1), "already gone");
        assert_eq!(store.len(), 1);
        assert_eq!(store.invalidate_fingerprint(), 1);
        assert!(store.is_empty());
        let _ = store.invalidate_all();
    }

    #[test]
    fn non_hex_hashes_are_rejected_in_release_too() {
        let store = tmp_store("traversal");
        store.save(&"a".repeat(32), &stored(&"a".repeat(32)));
        for evil in ["../../../etc/passwd", "..", "x/y", "", "zz", "ABCg"] {
            assert!(store.load(evil).is_none(), "{evil:?}");
            assert!(!store.contains(evil), "{evil:?}");
            assert!(!store.invalidate_cell(evil), "{evil:?}");
        }
        // Uppercase hex is still hex.
        assert!(!store.contains(&"A".repeat(32)));
        let _ = store.invalidate_all();
    }

    #[test]
    fn disabled_store_is_inert() {
        let store = ResultStore::disabled();
        let hash = "f".repeat(32);
        store.save(&hash, &stored(&hash));
        assert!(store.load(&hash).is_none());
        assert!(!store.contains(&hash));
        assert!(store.iter_hashes().is_empty());
        assert!(!store.invalidate_all());
        assert!(store.root().is_none());
    }
}
