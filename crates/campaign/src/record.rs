//! Result records: what a campaign stores, caches and emits per cell.
//!
//! A record is split in two on purpose:
//!
//! * [`CellRecord`] — the *canonical* part. Every field is a deterministic
//!   function of the cell spec (cycle counts, task/instruction counts,
//!   cycle-derived error percentages, boxplot statistics). Its canonical
//!   JSON encoding is byte-identical across runs, platforms and executor
//!   worker counts; the determinism guarantee and the JSONL artefacts are
//!   stated over these bytes.
//! * [`CellTiming`] — the *advisory* part. Host wall-clock seconds and the
//!   wall-clock speedup derived from them. Inherently noisy, therefore kept
//!   out of the canonical bytes; cached timings are the measurements of the
//!   run that originally computed the cell.

use taskpoint::ExperimentOutcome;
use taskpoint_stats::BoxplotStats;
use taskpoint_workloads::ScaleConfig;

use crate::json::{Object, ParseError, Value};
use crate::spec::CellSpec;

/// Deterministic per-core-group metrics of a heterogeneous cell, in the
/// machine's group order.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupMetric {
    /// Group name from the machine description.
    pub name: String,
    /// Cores in the group.
    pub cores: u32,
    /// The group's clock divider.
    pub clock_divider: u32,
    /// Task instances the group executed in detail.
    pub detailed_tasks: u64,
    /// Instructions the group executed.
    pub instructions: u64,
    /// Base-clock ticks the group's cores spent running tasks.
    pub busy_ticks: u64,
}

/// Deterministic metrics of a reference (full-detail) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct RefMetrics {
    /// Simulated execution time in cycles.
    pub total_cycles: u64,
    /// Task instances simulated (all of them, in detail).
    pub detailed_tasks: u64,
    /// Dynamic instructions simulated.
    pub instructions: u64,
    /// Per-core-group metrics — present exactly for heterogeneous
    /// machines (same pattern as the adaptive-only `ci_*` fields:
    /// homogeneous records do not carry the key at all).
    pub groups: Option<Vec<GroupMetric>>,
    /// Task-latency percentiles and stall attribution (record format v5;
    /// pre-v5 cached records lack the keys entirely).
    pub perf: Option<PerfProfile>,
}

/// Task-latency percentiles and machine-wide stall attribution of one
/// simulated run — the record-format-v5 extension of the JSONL schema.
///
/// Latencies are simulated base-clock cycles per task instance; stall
/// fields are global base-clock core-ticks summed across all core groups,
/// in the fixed taxonomy of `tasksim`'s cycle accounting. The block is
/// all-or-nothing: either every key below is present or none is.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfProfile {
    /// Median task latency (cycles).
    pub lat_p50: f64,
    /// 99th-percentile task latency (cycles).
    pub lat_p99: f64,
    /// 99.9th-percentile task latency (cycles).
    pub lat_p999: f64,
    /// Ticks stalled on a full reorder buffer behind a compute op.
    pub stall_rob_full: u64,
    /// Ticks stalled on serialized dependencies (div/fence/mispredict).
    pub stall_dep_wait: u64,
    /// Ticks stalled on L1-hit load latency at the ROB head.
    pub stall_l1_wait: u64,
    /// Ticks stalled on shared-cache load latency at the ROB head.
    pub stall_l2_wait: u64,
    /// Ticks stalled on DRAM load latency at the ROB head.
    pub stall_dram_wait: u64,
    /// Ticks stalled acquiring an MSHR for an outstanding miss.
    pub stall_mshr_full: u64,
    /// Ticks stalled behind bank/channel service queues.
    pub stall_contention: u64,
    /// Ticks cores sat idle with no ready task assigned.
    pub stall_idle: u64,
}

impl PerfProfile {
    /// Builds the profile from a simulation result: percentiles straight
    /// from the engine, stall categories summed across core groups.
    /// `None` when the run produced no cycle accounts (e.g. a stub
    /// reconstructed from a pre-v5 cached record).
    pub fn from_result(result: &tasksim::SimResult) -> Option<Self> {
        if result.cycle_accounts.is_empty() {
            return None;
        }
        let mut p = PerfProfile {
            lat_p50: result.task_latency.p50,
            lat_p99: result.task_latency.p99,
            lat_p999: result.task_latency.p999,
            stall_rob_full: 0,
            stall_dep_wait: 0,
            stall_l1_wait: 0,
            stall_l2_wait: 0,
            stall_dram_wait: 0,
            stall_mshr_full: 0,
            stall_contention: 0,
            stall_idle: 0,
        };
        for a in &result.cycle_accounts {
            p.stall_rob_full += a.rob_full;
            p.stall_dep_wait += a.dep_wait;
            p.stall_l1_wait += a.l1_wait;
            p.stall_l2_wait += a.l2_wait;
            p.stall_dram_wait += a.dram_wait;
            p.stall_mshr_full += a.mshr_full;
            p.stall_contention += a.contention;
            p.stall_idle += a.idle;
        }
        Some(p)
    }
}

/// Deterministic metrics of a sampled (or clustered) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalMetrics {
    /// Absolute percent error of predicted vs reference cycles.
    pub error_percent: f64,
    /// Predicted total cycles (sampled run).
    pub predicted_cycles: u64,
    /// Reference total cycles.
    pub reference_cycles: u64,
    /// Fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Instances simulated in detail.
    pub detailed_tasks: u64,
    /// Instances fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions simulated in detail.
    pub detailed_instructions: u64,
    /// Instructions fast-forwarded.
    pub fast_instructions: u64,
    /// Total resamples triggered.
    pub resamples: u64,
    /// Resamples triggered by the periodic policy.
    pub resamples_policy: u64,
    /// Resamples triggered by new task types.
    pub resamples_new_type: u64,
    /// Resamples triggered by concurrency changes.
    pub resamples_concurrency: u64,
    /// Resamples triggered by empty histories.
    pub resamples_empty: u64,
    /// `(type, size-class)` clusters formed (clustered cells only).
    pub clusters: Option<u64>,
    /// Configured relative-CI target (adaptive cells only).
    pub ci_target: Option<f64>,
    /// Configured confidence level as a fraction, e.g. `0.95` (adaptive
    /// cells only).
    pub ci_confidence: Option<f64>,
    /// Largest achieved per-cluster relative CI half-width at the end of
    /// the run (adaptive cells with ≥ 2 samples in some cluster).
    pub ci_max: Option<f64>,
    /// Mean achieved per-cluster relative CI half-width (same condition).
    pub ci_mean: Option<f64>,
    /// Sampling units observed by the adaptive controller.
    pub ci_units: Option<u64>,
    /// Units that converged (stopped sampling) by CI or cutoff.
    pub ci_converged: Option<u64>,
    /// Configured pilot samples per stratum (stratified cells only).
    pub strat_pilot: Option<u64>,
    /// Configured total detailed budget (stratified cells only).
    pub strat_budget: Option<u64>,
    /// Detailed instances Neyman-allocated after the pilot phase, summed
    /// across strata (stratified cells only).
    pub strat_allocated: Option<u64>,
    /// `(cluster, concurrency-band)` re-openings triggered by sustained
    /// parallelism shifts (adaptive and stratified cells).
    pub strat_reopened: Option<u64>,
    /// Task-latency percentiles and stall attribution of the sampled run
    /// itself (record format v5; pre-v5 cached records lack the keys).
    pub perf: Option<PerfProfile>,
}

/// Deterministic metrics of a variation cell: per-type-normalized IPC
/// deviation boxplot (percent).
#[derive(Debug, Clone, PartialEq)]
pub struct VariationMetrics {
    /// 5th percentile.
    pub p5: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Smallest deviation.
    pub min: f64,
    /// Largest deviation.
    pub max: f64,
    /// Number of task-instance samples.
    pub samples: u64,
}

impl VariationMetrics {
    /// Builds from boxplot statistics.
    pub fn from_boxplot(b: &BoxplotStats) -> Self {
        Self {
            p5: b.p5,
            q1: b.q1,
            median: b.median,
            q3: b.q3,
            p95: b.p95,
            min: b.min,
            max: b.max,
            samples: b.count as u64,
        }
    }

    /// The larger of |p5| and |p95| — the paper's "within ±5%" criterion.
    pub fn whisker_halfwidth(&self) -> f64 {
        self.p95.abs().max(self.p5.abs())
    }
}

/// Deterministic metrics of an exploration cell: a sampled run with no
/// reference comparison (design-space sweeps rank designs by predicted
/// cycles; running a detailed reference per candidate would defeat the
/// point of sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreMetrics {
    /// Predicted total cycles — the design-ranking criterion.
    pub predicted_cycles: u64,
    /// Fraction of instructions simulated in detail.
    pub detail_fraction: f64,
    /// Instances simulated in detail.
    pub detailed_tasks: u64,
    /// Instances fast-forwarded.
    pub fast_tasks: u64,
    /// Instructions simulated in detail.
    pub detailed_instructions: u64,
    /// Instructions fast-forwarded.
    pub fast_instructions: u64,
    /// Total resamples triggered.
    pub resamples: u64,
}

/// Kind-specific deterministic metrics.
#[derive(Debug, Clone, PartialEq)]
pub enum CellMetrics {
    /// Metrics of a reference cell.
    Reference(RefMetrics),
    /// Metrics of a sampled or clustered cell (boxed: the eval payload
    /// dwarfs the other variants).
    Eval(Box<EvalMetrics>),
    /// Metrics of a variation cell.
    Variation(VariationMetrics),
    /// Metrics of an exploration cell.
    Explore(ExploreMetrics),
}

impl CellMetrics {
    /// The eval metrics, if this is a sampled/clustered cell.
    pub fn as_eval(&self) -> Option<&EvalMetrics> {
        match self {
            CellMetrics::Eval(m) => Some(m),
            _ => None,
        }
    }

    /// The variation metrics, if this is a variation cell.
    pub fn as_variation(&self) -> Option<&VariationMetrics> {
        match self {
            CellMetrics::Variation(m) => Some(m),
            _ => None,
        }
    }

    /// The reference metrics, if this is a reference cell.
    pub fn as_reference(&self) -> Option<&RefMetrics> {
        match self {
            CellMetrics::Reference(m) => Some(m),
            _ => None,
        }
    }

    /// The exploration metrics, if this is an explore cell.
    pub fn as_explore(&self) -> Option<&ExploreMetrics> {
        match self {
            CellMetrics::Explore(m) => Some(m),
            _ => None,
        }
    }
}

/// The canonical (deterministic) record of one computed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// The cell's content hash (32 hex chars).
    pub cell: String,
    /// Benchmark name.
    pub bench: String,
    /// Machine name.
    pub machine: String,
    /// Simulated worker threads.
    pub workers: u32,
    /// Workload scale.
    pub scale: ScaleConfig,
    /// Kind tag (`reference`/`sampled`/`clustered`/`variation`).
    pub kind: String,
    /// Deterministic metrics.
    pub metrics: CellMetrics,
}

/// The advisory (wall-clock) side of a computed cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellTiming {
    /// Host seconds of this cell's own simulation.
    pub wall_seconds: f64,
    /// Host seconds of the reference run it was compared against (sampled
    /// and clustered cells only).
    pub reference_wall_seconds: Option<f64>,
    /// Wall-clock speedup over the reference (sampled/clustered only).
    pub speedup: Option<f64>,
    /// Detailed-mode simulation throughput of this cell's own run, in
    /// instructions per host second — the figure of merit of the batched
    /// trace pipeline. `None` when no detailed instructions ran.
    pub detailed_instr_per_sec: Option<f64>,
}

/// A computed (or cache-loaded) cell: spec + record + timing.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The spec that produced this outcome.
    pub spec: CellSpec,
    /// Canonical record.
    pub record: CellRecord,
    /// Advisory timing (from the run that originally computed the cell).
    pub timing: CellTiming,
    /// Whether the result was served from the store without simulating.
    pub cached: bool,
}

impl CellOutcome {
    /// Reconstructs the evaluation outcome the bench layer works with.
    /// Returns `None` for reference/variation cells.
    pub fn experiment_outcome(&self) -> Option<ExperimentOutcome> {
        let m = self.record.metrics.as_eval()?;
        Some(ExperimentOutcome {
            error_percent: m.error_percent,
            speedup: self.timing.speedup.unwrap_or(0.0),
            predicted_cycles: m.predicted_cycles,
            reference_cycles: m.reference_cycles,
            sampled_wall_seconds: self.timing.wall_seconds,
            reference_wall_seconds: self.timing.reference_wall_seconds.unwrap_or(0.0),
            detail_fraction: m.detail_fraction,
        })
    }
}

fn scale_json(scale: &ScaleConfig) -> Value {
    let mut o = Object::new();
    o.set("instr_factor", Value::Num(scale.instr_factor));
    o.set("seed", Value::Num(scale.seed as f64));
    Value::Obj(o)
}

fn perf_json(o: &mut Object, perf: &Option<PerfProfile>) {
    let Some(p) = perf else { return };
    o.set("lat_p50", Value::Num(p.lat_p50));
    o.set("lat_p99", Value::Num(p.lat_p99));
    o.set("lat_p999", Value::Num(p.lat_p999));
    for (key, value) in [
        ("stall_rob_full", p.stall_rob_full),
        ("stall_dep_wait", p.stall_dep_wait),
        ("stall_l1_wait", p.stall_l1_wait),
        ("stall_l2_wait", p.stall_l2_wait),
        ("stall_dram_wait", p.stall_dram_wait),
        ("stall_mshr_full", p.stall_mshr_full),
        ("stall_contention", p.stall_contention),
        ("stall_idle", p.stall_idle),
    ] {
        o.set(key, Value::Num(value as f64));
    }
}

fn metrics_json(metrics: &CellMetrics) -> Value {
    let mut o = Object::new();
    match metrics {
        CellMetrics::Reference(m) => {
            o.set("total_cycles", Value::Num(m.total_cycles as f64));
            o.set("detailed_tasks", Value::Num(m.detailed_tasks as f64));
            o.set("instructions", Value::Num(m.instructions as f64));
            if let Some(groups) = &m.groups {
                let arr = groups
                    .iter()
                    .map(|g| {
                        let mut go = Object::new();
                        go.set("name", Value::Str(g.name.clone()));
                        go.set("cores", Value::Num(g.cores as f64));
                        go.set("clock_divider", Value::Num(g.clock_divider as f64));
                        go.set("detailed_tasks", Value::Num(g.detailed_tasks as f64));
                        go.set("instructions", Value::Num(g.instructions as f64));
                        go.set("busy_ticks", Value::Num(g.busy_ticks as f64));
                        Value::Obj(go)
                    })
                    .collect();
                o.set("groups", Value::Arr(arr));
            }
            perf_json(&mut o, &m.perf);
        }
        CellMetrics::Eval(m) => {
            o.set("error_percent", Value::Num(m.error_percent));
            o.set("predicted_cycles", Value::Num(m.predicted_cycles as f64));
            o.set("reference_cycles", Value::Num(m.reference_cycles as f64));
            o.set("detail_fraction", Value::Num(m.detail_fraction));
            o.set("detailed_tasks", Value::Num(m.detailed_tasks as f64));
            o.set("fast_tasks", Value::Num(m.fast_tasks as f64));
            o.set("detailed_instructions", Value::Num(m.detailed_instructions as f64));
            o.set("fast_instructions", Value::Num(m.fast_instructions as f64));
            o.set("resamples", Value::Num(m.resamples as f64));
            o.set("resamples_policy", Value::Num(m.resamples_policy as f64));
            o.set("resamples_new_type", Value::Num(m.resamples_new_type as f64));
            o.set("resamples_concurrency", Value::Num(m.resamples_concurrency as f64));
            o.set("resamples_empty", Value::Num(m.resamples_empty as f64));
            if let Some(c) = m.clusters {
                o.set("clusters", Value::Num(c as f64));
            }
            for (key, value) in [
                ("ci_target", m.ci_target),
                ("ci_confidence", m.ci_confidence),
                ("ci_max", m.ci_max),
                ("ci_mean", m.ci_mean),
            ] {
                if let Some(v) = value {
                    o.set(key, Value::Num(v));
                }
            }
            for (key, value) in [
                ("ci_units", m.ci_units),
                ("ci_converged", m.ci_converged),
                ("strat_pilot", m.strat_pilot),
                ("strat_budget", m.strat_budget),
                ("strat_allocated", m.strat_allocated),
                ("strat_reopened", m.strat_reopened),
            ] {
                if let Some(v) = value {
                    o.set(key, Value::Num(v as f64));
                }
            }
            perf_json(&mut o, &m.perf);
        }
        CellMetrics::Variation(m) => {
            o.set("p5", Value::Num(m.p5));
            o.set("q1", Value::Num(m.q1));
            o.set("median", Value::Num(m.median));
            o.set("q3", Value::Num(m.q3));
            o.set("p95", Value::Num(m.p95));
            o.set("min", Value::Num(m.min));
            o.set("max", Value::Num(m.max));
            o.set("samples", Value::Num(m.samples as f64));
        }
        CellMetrics::Explore(m) => {
            o.set("predicted_cycles", Value::Num(m.predicted_cycles as f64));
            o.set("detail_fraction", Value::Num(m.detail_fraction));
            o.set("detailed_tasks", Value::Num(m.detailed_tasks as f64));
            o.set("fast_tasks", Value::Num(m.fast_tasks as f64));
            o.set("detailed_instructions", Value::Num(m.detailed_instructions as f64));
            o.set("fast_instructions", Value::Num(m.fast_instructions as f64));
            o.set("resamples", Value::Num(m.resamples as f64));
        }
    }
    Value::Obj(o)
}

impl CellRecord {
    /// The canonical JSON encoding — the bytes the determinism guarantee
    /// covers (and one line of the emitted JSONL artefact).
    pub fn to_json(&self) -> String {
        let mut o = Object::new();
        o.set("cell", Value::Str(self.cell.clone()));
        o.set("bench", Value::Str(self.bench.clone()));
        o.set("machine", Value::Str(self.machine.clone()));
        o.set("workers", Value::Num(self.workers as f64));
        o.set("scale", scale_json(&self.scale));
        o.set("kind", Value::Str(self.kind.clone()));
        o.set("metrics", metrics_json(&self.metrics));
        Value::Obj(o).to_json()
    }
}

/// A corrupt or incompatible store entry.
#[derive(Debug)]
pub enum RecordError {
    /// The JSON did not parse.
    Parse(ParseError),
    /// The JSON parsed but is missing or mistypes a field.
    Shape(String),
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Parse(e) => write!(f, "{e}"),
            RecordError::Shape(s) => write!(f, "malformed record: {s}"),
        }
    }
}

impl std::error::Error for RecordError {}

fn shape(field: &str) -> RecordError {
    RecordError::Shape(format!("missing or mistyped field {field:?}"))
}

fn parse_groups(o: &Object) -> Result<Option<Vec<GroupMetric>>, RecordError> {
    let Some(v) = o.get("groups") else { return Ok(None) };
    let Value::Arr(items) = v else {
        return Err(RecordError::Shape("groups is not an array".to_string()));
    };
    let mut groups = Vec::with_capacity(items.len());
    for item in items {
        let Value::Obj(g) = item else {
            return Err(RecordError::Shape("group entry is not an object".to_string()));
        };
        groups.push(GroupMetric {
            name: g.str("name").ok_or_else(|| shape("groups.name"))?.to_string(),
            cores: g.u64("cores").ok_or_else(|| shape("groups.cores"))? as u32,
            clock_divider: g.u64("clock_divider").ok_or_else(|| shape("groups.clock_divider"))?
                as u32,
            detailed_tasks: g
                .u64("detailed_tasks")
                .ok_or_else(|| shape("groups.detailed_tasks"))?,
            instructions: g.u64("instructions").ok_or_else(|| shape("groups.instructions"))?,
            busy_ticks: g.u64("busy_ticks").ok_or_else(|| shape("groups.busy_ticks"))?,
        });
    }
    Ok(Some(groups))
}

fn parse_perf(o: &Object) -> Result<Option<PerfProfile>, RecordError> {
    // The block is all-or-nothing: its lead key decides presence, the
    // rest are then required so a half-written record fails loudly.
    if o.get("lat_p50").is_none() {
        return Ok(None);
    }
    Ok(Some(PerfProfile {
        lat_p50: o.num("lat_p50").ok_or_else(|| shape("lat_p50"))?,
        lat_p99: o.num("lat_p99").ok_or_else(|| shape("lat_p99"))?,
        lat_p999: o.num("lat_p999").ok_or_else(|| shape("lat_p999"))?,
        stall_rob_full: o.u64("stall_rob_full").ok_or_else(|| shape("stall_rob_full"))?,
        stall_dep_wait: o.u64("stall_dep_wait").ok_or_else(|| shape("stall_dep_wait"))?,
        stall_l1_wait: o.u64("stall_l1_wait").ok_or_else(|| shape("stall_l1_wait"))?,
        stall_l2_wait: o.u64("stall_l2_wait").ok_or_else(|| shape("stall_l2_wait"))?,
        stall_dram_wait: o.u64("stall_dram_wait").ok_or_else(|| shape("stall_dram_wait"))?,
        stall_mshr_full: o.u64("stall_mshr_full").ok_or_else(|| shape("stall_mshr_full"))?,
        stall_contention: o.u64("stall_contention").ok_or_else(|| shape("stall_contention"))?,
        stall_idle: o.u64("stall_idle").ok_or_else(|| shape("stall_idle"))?,
    }))
}

fn parse_metrics(kind: &str, o: &Object) -> Result<CellMetrics, RecordError> {
    match kind {
        "reference" => Ok(CellMetrics::Reference(RefMetrics {
            total_cycles: o.u64("total_cycles").ok_or_else(|| shape("total_cycles"))?,
            detailed_tasks: o.u64("detailed_tasks").ok_or_else(|| shape("detailed_tasks"))?,
            instructions: o.u64("instructions").ok_or_else(|| shape("instructions"))?,
            groups: parse_groups(o)?,
            perf: parse_perf(o)?,
        })),
        "sampled" | "clustered" => Ok(CellMetrics::Eval(Box::new(EvalMetrics {
            error_percent: o.num("error_percent").ok_or_else(|| shape("error_percent"))?,
            predicted_cycles: o.u64("predicted_cycles").ok_or_else(|| shape("predicted_cycles"))?,
            reference_cycles: o.u64("reference_cycles").ok_or_else(|| shape("reference_cycles"))?,
            detail_fraction: o.num("detail_fraction").ok_or_else(|| shape("detail_fraction"))?,
            detailed_tasks: o.u64("detailed_tasks").ok_or_else(|| shape("detailed_tasks"))?,
            fast_tasks: o.u64("fast_tasks").ok_or_else(|| shape("fast_tasks"))?,
            detailed_instructions: o
                .u64("detailed_instructions")
                .ok_or_else(|| shape("detailed_instructions"))?,
            fast_instructions: o
                .u64("fast_instructions")
                .ok_or_else(|| shape("fast_instructions"))?,
            resamples: o.u64("resamples").ok_or_else(|| shape("resamples"))?,
            resamples_policy: o.u64("resamples_policy").ok_or_else(|| shape("resamples_policy"))?,
            resamples_new_type: o
                .u64("resamples_new_type")
                .ok_or_else(|| shape("resamples_new_type"))?,
            resamples_concurrency: o
                .u64("resamples_concurrency")
                .ok_or_else(|| shape("resamples_concurrency"))?,
            resamples_empty: o.u64("resamples_empty").ok_or_else(|| shape("resamples_empty"))?,
            clusters: o.u64("clusters"),
            ci_target: o.num("ci_target"),
            ci_confidence: o.num("ci_confidence"),
            ci_max: o.num("ci_max"),
            ci_mean: o.num("ci_mean"),
            ci_units: o.u64("ci_units"),
            ci_converged: o.u64("ci_converged"),
            strat_pilot: o.u64("strat_pilot"),
            strat_budget: o.u64("strat_budget"),
            strat_allocated: o.u64("strat_allocated"),
            strat_reopened: o.u64("strat_reopened"),
            perf: parse_perf(o)?,
        }))),
        "explore" => Ok(CellMetrics::Explore(ExploreMetrics {
            predicted_cycles: o.u64("predicted_cycles").ok_or_else(|| shape("predicted_cycles"))?,
            detail_fraction: o.num("detail_fraction").ok_or_else(|| shape("detail_fraction"))?,
            detailed_tasks: o.u64("detailed_tasks").ok_or_else(|| shape("detailed_tasks"))?,
            fast_tasks: o.u64("fast_tasks").ok_or_else(|| shape("fast_tasks"))?,
            detailed_instructions: o
                .u64("detailed_instructions")
                .ok_or_else(|| shape("detailed_instructions"))?,
            fast_instructions: o
                .u64("fast_instructions")
                .ok_or_else(|| shape("fast_instructions"))?,
            resamples: o.u64("resamples").ok_or_else(|| shape("resamples"))?,
        })),
        "variation" => Ok(CellMetrics::Variation(VariationMetrics {
            p5: o.num("p5").ok_or_else(|| shape("p5"))?,
            q1: o.num("q1").ok_or_else(|| shape("q1"))?,
            median: o.num("median").ok_or_else(|| shape("median"))?,
            q3: o.num("q3").ok_or_else(|| shape("q3"))?,
            p95: o.num("p95").ok_or_else(|| shape("p95"))?,
            min: o.num("min").ok_or_else(|| shape("min"))?,
            max: o.num("max").ok_or_else(|| shape("max"))?,
            samples: o.u64("samples").ok_or_else(|| shape("samples"))?,
        })),
        other => Err(RecordError::Shape(format!("unknown kind {other:?}"))),
    }
}

/// One store entry: record + timing, as persisted in a cache file.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredCell {
    /// Canonical record.
    pub record: CellRecord,
    /// Timing measured by the run that computed the cell.
    pub timing: CellTiming,
}

impl StoredCell {
    /// Serializes the store-file content.
    pub fn to_json(&self) -> String {
        let record =
            Value::parse(&self.record.to_json()).expect("canonical record encodes valid JSON");
        let mut timing = Object::new();
        timing.set("wall_seconds", Value::Num(self.timing.wall_seconds));
        if let Some(w) = self.timing.reference_wall_seconds {
            timing.set("reference_wall_seconds", Value::Num(w));
        }
        if let Some(s) = self.timing.speedup {
            timing.set("speedup", Value::Num(s));
        }
        if let Some(t) = self.timing.detailed_instr_per_sec {
            timing.set("detailed_instr_per_sec", Value::Num(t));
        }
        let mut o = Object::new();
        o.set("record", record);
        o.set("timing", Value::Obj(timing));
        Value::Obj(o).to_json()
    }

    /// Parses a store-file content.
    pub fn from_json(text: &str) -> Result<Self, RecordError> {
        let v = Value::parse(text).map_err(RecordError::Parse)?;
        let Value::Obj(top) = v else {
            return Err(RecordError::Shape("top level is not an object".to_string()));
        };
        let r = top.obj("record").ok_or_else(|| shape("record"))?;
        let scale = r.obj("scale").ok_or_else(|| shape("scale"))?;
        let kind = r.str("kind").ok_or_else(|| shape("kind"))?.to_string();
        let metrics_obj = r.obj("metrics").ok_or_else(|| shape("metrics"))?;
        let record = CellRecord {
            cell: r.str("cell").ok_or_else(|| shape("cell"))?.to_string(),
            bench: r.str("bench").ok_or_else(|| shape("bench"))?.to_string(),
            machine: r.str("machine").ok_or_else(|| shape("machine"))?.to_string(),
            workers: r.u64("workers").ok_or_else(|| shape("workers"))? as u32,
            scale: ScaleConfig {
                instr_factor: scale.num("instr_factor").ok_or_else(|| shape("instr_factor"))?,
                seed: scale.u64("seed").ok_or_else(|| shape("seed"))?,
            },
            metrics: parse_metrics(&kind, metrics_obj)?,
            kind,
        };
        let t = top.obj("timing").ok_or_else(|| shape("timing"))?;
        let timing = CellTiming {
            wall_seconds: t.num("wall_seconds").ok_or_else(|| shape("wall_seconds"))?,
            reference_wall_seconds: t.num("reference_wall_seconds"),
            speedup: t.num("speedup"),
            detailed_instr_per_sec: t.num("detailed_instr_per_sec"),
        };
        Ok(StoredCell { record, timing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_record() -> CellRecord {
        CellRecord {
            cell: "ab".repeat(16),
            bench: "spmv".to_string(),
            machine: "low-power".to_string(),
            workers: 4,
            scale: ScaleConfig::quick(),
            kind: "sampled".to_string(),
            metrics: CellMetrics::Eval(Box::new(EvalMetrics {
                error_percent: 3.25,
                predicted_cycles: 1020,
                reference_cycles: 1000,
                detail_fraction: 0.125,
                detailed_tasks: 47,
                fast_tasks: 977,
                detailed_instructions: 400,
                fast_instructions: 600,
                resamples: 3,
                resamples_policy: 1,
                resamples_new_type: 1,
                resamples_concurrency: 1,
                resamples_empty: 0,
                clusters: None,
                ci_target: None,
                ci_confidence: None,
                ci_max: None,
                ci_mean: None,
                ci_units: None,
                ci_converged: None,
                strat_pilot: None,
                strat_budget: None,
                strat_allocated: None,
                strat_reopened: None,
                perf: None,
            })),
        }
    }

    fn sample_perf() -> PerfProfile {
        PerfProfile {
            lat_p50: 120.0,
            lat_p99: 900.5,
            lat_p999: 1800.0,
            stall_rob_full: 11,
            stall_dep_wait: 22,
            stall_l1_wait: 33,
            stall_l2_wait: 44,
            stall_dram_wait: 55,
            stall_mshr_full: 6,
            stall_contention: 7,
            stall_idle: 88,
        }
    }

    #[test]
    fn record_json_is_canonical_and_parses_back() {
        let r = eval_record();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"cell\":\"abab"));
        assert!(a.contains("\"error_percent\":3.25"));
        assert!(!a.contains(' '), "canonical form has no whitespace");
    }

    #[test]
    fn stored_cell_round_trips() {
        let stored = StoredCell {
            record: eval_record(),
            timing: CellTiming {
                wall_seconds: 0.05,
                reference_wall_seconds: Some(0.93),
                speedup: Some(18.6),
                detailed_instr_per_sec: Some(2.9e7),
            },
        };
        let text = stored.to_json();
        let back = StoredCell::from_json(&text).unwrap();
        assert_eq!(back, stored);
    }

    #[test]
    fn reference_and_variation_round_trip() {
        for (kind, metrics) in [
            (
                "reference",
                CellMetrics::Reference(RefMetrics {
                    total_cycles: 8_536_967,
                    detailed_tasks: 1024,
                    instructions: 9_700_000,
                    groups: None,
                    perf: Some(sample_perf()),
                }),
            ),
            (
                "variation",
                CellMetrics::Variation(VariationMetrics {
                    p5: -4.5,
                    q1: -1.0,
                    median: 0.0,
                    q3: 1.0,
                    p95: 4.5,
                    min: -9.0,
                    max: 8.0,
                    samples: 16384,
                }),
            ),
            (
                "explore",
                CellMetrics::Explore(ExploreMetrics {
                    predicted_cycles: 123_456,
                    detail_fraction: 0.04,
                    detailed_tasks: 12,
                    fast_tasks: 1000,
                    detailed_instructions: 4000,
                    fast_instructions: 96_000,
                    resamples: 2,
                }),
            ),
        ] {
            let stored = StoredCell {
                record: CellRecord { kind: kind.to_string(), metrics, ..eval_record() },
                timing: CellTiming {
                    wall_seconds: 1.5,
                    reference_wall_seconds: None,
                    speedup: None,
                    detailed_instr_per_sec: None,
                },
            };
            let back = StoredCell::from_json(&stored.to_json()).unwrap();
            assert_eq!(back, stored, "{kind}");
        }
    }

    #[test]
    fn adaptive_ci_fields_round_trip() {
        let mut record = eval_record();
        let CellMetrics::Eval(ref mut m) = record.metrics else { unreachable!() };
        m.ci_target = Some(0.05);
        m.ci_confidence = Some(0.95);
        m.ci_max = Some(0.041);
        m.ci_mean = Some(0.017);
        m.ci_units = Some(6);
        m.ci_converged = Some(6);
        let stored = StoredCell {
            record,
            timing: CellTiming {
                wall_seconds: 0.2,
                reference_wall_seconds: Some(1.0),
                speedup: Some(5.0),
                detailed_instr_per_sec: None,
            },
        };
        let text = stored.to_json();
        assert!(text.contains("\"ci_target\":0.05"));
        assert!(text.contains("\"ci_converged\":6"));
        let back = StoredCell::from_json(&text).unwrap();
        assert_eq!(back, stored);
    }

    #[test]
    fn stratified_fields_round_trip() {
        let mut record = eval_record();
        let CellMetrics::Eval(ref mut m) = record.metrics else { unreachable!() };
        m.ci_confidence = Some(0.95);
        m.strat_pilot = Some(4);
        m.strat_budget = Some(256);
        m.strat_allocated = Some(198);
        m.strat_reopened = Some(2);
        let stored = StoredCell {
            record,
            timing: CellTiming {
                wall_seconds: 0.2,
                reference_wall_seconds: Some(1.0),
                speedup: Some(5.0),
                detailed_instr_per_sec: None,
            },
        };
        let text = stored.to_json();
        assert!(text.contains("\"strat_pilot\":4"));
        assert!(text.contains("\"strat_budget\":256"));
        assert!(text.contains("\"strat_allocated\":198"));
        assert!(text.contains("\"strat_reopened\":2"));
        // Budget-driven policy: no CI target key at all.
        assert!(!text.contains("ci_target"));
        let back = StoredCell::from_json(&text).unwrap();
        assert_eq!(back, stored);
        // Non-stratified records must not carry the keys at all.
        assert!(!eval_record().to_json().contains("strat_"));
    }

    #[test]
    fn heterogeneous_group_metrics_round_trip() {
        let groups = vec![
            GroupMetric {
                name: "big".to_string(),
                cores: 2,
                clock_divider: 1,
                detailed_tasks: 700,
                instructions: 7_000_000,
                busy_ticks: 4_100_000,
            },
            GroupMetric {
                name: "little".to_string(),
                cores: 2,
                clock_divider: 2,
                detailed_tasks: 324,
                instructions: 2_700_000,
                busy_ticks: 3_900_000,
            },
        ];
        let stored = StoredCell {
            record: CellRecord {
                kind: "reference".to_string(),
                metrics: CellMetrics::Reference(RefMetrics {
                    total_cycles: 5_000_000,
                    detailed_tasks: 1024,
                    instructions: 9_700_000,
                    groups: Some(groups),
                    perf: None,
                }),
                ..eval_record()
            },
            timing: CellTiming {
                wall_seconds: 1.0,
                reference_wall_seconds: None,
                speedup: None,
                detailed_instr_per_sec: None,
            },
        };
        let text = stored.to_json();
        // The exact JSONL shape the hetero CI grep pins.
        assert!(text.contains("\"groups\":[{\"name\":\"big\""), "{text}");
        assert!(text.contains("\"clock_divider\":2"));
        let back = StoredCell::from_json(&text).unwrap();
        assert_eq!(back, stored);
        // Homogeneous records must not carry the key at all.
        let homogeneous = StoredCell {
            record: CellRecord {
                kind: "reference".to_string(),
                metrics: CellMetrics::Reference(RefMetrics {
                    total_cycles: 1,
                    detailed_tasks: 1,
                    instructions: 1,
                    groups: None,
                    perf: None,
                }),
                ..eval_record()
            },
            timing: stored.timing.clone(),
        };
        assert!(!homogeneous.to_json().contains("groups"));
    }

    #[test]
    fn perf_profile_fields_round_trip() {
        let mut record = eval_record();
        let CellMetrics::Eval(ref mut m) = record.metrics else { unreachable!() };
        m.perf = Some(sample_perf());
        let stored = StoredCell {
            record,
            timing: CellTiming {
                wall_seconds: 0.2,
                reference_wall_seconds: Some(1.0),
                speedup: Some(5.0),
                detailed_instr_per_sec: None,
            },
        };
        let text = stored.to_json();
        // The exact flat keys the CI smoke greps out of the JSONL.
        assert!(text.contains("\"lat_p50\":120"), "{text}");
        assert!(text.contains("\"lat_p99\":900.5"));
        assert!(text.contains("\"lat_p999\":1800"));
        assert!(text.contains("\"stall_rob_full\":11"));
        assert!(text.contains("\"stall_dram_wait\":55"));
        assert!(text.contains("\"stall_idle\":88"));
        let back = StoredCell::from_json(&text).unwrap();
        assert_eq!(back, stored);
        // Pre-v5 records carry none of the keys and still parse (perf
        // stays None); a half-written block is rejected, not defaulted.
        assert!(!eval_record().to_json().contains("lat_p"));
        assert!(!eval_record().to_json().contains("stall_"));
        let truncated = text.replace(",\"stall_idle\":88", "");
        assert!(StoredCell::from_json(&truncated).is_err());
    }

    #[test]
    fn variation_whisker_halfwidth() {
        let m = VariationMetrics {
            p5: -6.0,
            q1: 0.0,
            median: 0.0,
            q3: 0.0,
            p95: 4.0,
            min: -7.0,
            max: 5.0,
            samples: 3,
        };
        assert_eq!(m.whisker_halfwidth(), 6.0);
    }

    #[test]
    fn malformed_entries_are_rejected_not_panicked() {
        assert!(StoredCell::from_json("not json").is_err());
        assert!(StoredCell::from_json("{}").is_err());
        assert!(StoredCell::from_json("{\"record\":{},\"timing\":{}}").is_err());
        let mut good = StoredCell {
            record: eval_record(),
            timing: CellTiming {
                wall_seconds: 1.0,
                reference_wall_seconds: None,
                speedup: None,
                detailed_instr_per_sec: None,
            },
        }
        .to_json();
        good = good.replace("\"error_percent\":3.25", "\"error_percent\":\"three\"");
        assert!(StoredCell::from_json(&good).is_err());
    }

    #[test]
    fn experiment_outcome_reconstruction() {
        let outcome = CellOutcome {
            spec: crate::spec::CellSpec::sampled(
                taskpoint_workloads::Benchmark::Spmv,
                ScaleConfig::quick(),
                tasksim::MachineConfig::low_power(),
                4,
                taskpoint::TaskPointConfig::lazy(),
            ),
            record: eval_record(),
            timing: CellTiming {
                wall_seconds: 0.5,
                reference_wall_seconds: Some(10.0),
                speedup: Some(20.0),
                detailed_instr_per_sec: None,
            },
            cached: false,
        };
        let o = outcome.experiment_outcome().unwrap();
        assert_eq!(o.predicted_cycles, 1020);
        assert_eq!(o.speedup, 20.0);
        assert_eq!(o.reference_wall_seconds, 10.0);
    }
}
