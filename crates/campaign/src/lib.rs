//! # taskpoint-campaign — deterministic parallel sweep execution
//!
//! The paper's evaluation is a large cell matrix (benchmarks × machines ×
//! thread counts × sampling policies). This crate turns that matrix into a
//! first-class subsystem:
//!
//! * [`CellSpec`] — one cell of the matrix, with a stable 128-bit content
//!   hash over everything that determines its outcome;
//! * [`Executor`] — a deterministic work-stealing pool on [`std::thread`]:
//!   results are collected in spec order, so emitted artefacts are
//!   byte-identical for any worker count;
//! * [`ResultStore`] — a content-addressed store under `results/campaign/`
//!   keyed by cell hash + workspace code fingerprint, so re-runs skip
//!   already-computed cells and interrupted campaigns resume;
//! * [`Campaign`] — the driver tying those together, plus shared in-memory
//!   program/reference caches so concurrent cells never duplicate a
//!   detailed reference run;
//! * [`Sweep`] — the named cell lists behind every table and figure, used
//!   by both the figure binaries and the `campaign` CLI.
//!
//! Determinism contract: the *canonical* record stream
//! ([`CampaignReport::jsonl`]) contains only deterministic quantities
//! (cycle counts, instruction counts, cycle-derived errors). Host
//! wall-clock measurements live in a separate advisory timing sidecar.
//!
//! # Quickstart
//!
//! ```
//! use taskpoint_campaign::{Campaign, CellSpec, Executor, ResultStore};
//! use taskpoint::TaskPointConfig;
//! use taskpoint_workloads::{Benchmark, ScaleConfig};
//! use tasksim::MachineConfig;
//!
//! let campaign = Campaign::new(ResultStore::disabled(), Executor::new(2));
//! let specs = vec![CellSpec::sampled(
//!     Benchmark::Spmv,
//!     ScaleConfig::quick(),
//!     MachineConfig::tiny_test(),
//!     2,
//!     TaskPointConfig::lazy(),
//! )];
//! let report = campaign.run(&specs);
//! assert_eq!(report.outcomes.len(), 1);
//! println!("{}", report.jsonl());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod context;
pub mod executor;
pub mod hash;
pub mod json;
pub mod record;
pub mod spec;
pub mod store;
pub mod sweeps;

pub use campaign::{Campaign, CampaignReport, ProgressSnapshot};
pub use context::Context;
pub use executor::Executor;
pub use record::{
    CellMetrics, CellOutcome, CellRecord, CellTiming, EvalMetrics, GroupMetric, RefMetrics,
    StoredCell, VariationMetrics,
};
pub use spec::{CellKind, CellSpec, RunScale, UnknownScaleError};
pub use store::{code_fingerprint, ResultStore};
pub use sweeps::{
    adaptive_specs, adaptive_workloads, error_speedup_specs, hetero_specs, sensitivity_configs,
    sensitivity_specs, table1_specs, variation_specs, Sweep, SweepPart, ADAPTIVE_KERNELS,
    ADAPTIVE_TARGETS, ADAPTIVE_WORKERS, FIG1_NOISE_SEED, HETERO_KERNELS, HETERO_WORKERS,
    HIGH_PERF_THREADS, LOW_POWER_THREADS, SENSITIVITY_THREADS, STRATIFIED_BUDGETS,
    STRATIFIED_PILOT,
};
