//! The 19 task-based benchmarks of the TaskPoint evaluation (Table I).
//!
//! Each benchmark is a *synthetic workload generator* that reproduces the
//! structural properties the paper reports and analyzes: the exact task
//! type and instance counts of Table I, the dependence structure (tile
//! DAGs, wavefronts, pipelines, reduction trees), the instruction mixes and
//! memory behaviour of the "Properties" column, and — crucially for the
//! error analysis — the per-instance size imbalance of the problematic
//! benchmarks (freqmine's 4-decade spread, dedup's input-dependent
//! compression, spmv's row imbalance, checkSparseLU's fill-dependent
//! blocks).
//!
//! # Example
//!
//! ```
//! use taskpoint_workloads::{Benchmark, ScaleConfig};
//!
//! let program = Benchmark::Cholesky.generate(&ScaleConfig::quick());
//! assert_eq!(program.num_types(), 4);
//! assert_eq!(program.num_instances(), 19_600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod external;
pub mod info;
pub mod kernels;
pub mod layout;
pub mod parsec;
pub mod scale;

pub use external::ExternalWorkload;
pub use info::{BenchClass, WorkloadInfo};
pub use layout::AddressAllocator;
pub use scale::ScaleConfig;

use taskpoint_runtime::Program;

/// The 19 benchmarks, in Table I order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// 2d-convolution kernel.
    Conv2d,
    /// 3d-stencil kernel.
    Stencil3d,
    /// atomic-monte-carlo-dynamics kernel.
    MonteCarlo,
    /// dense-matrix-multiplication kernel.
    Matmul,
    /// histogram kernel.
    Histogram,
    /// n-body kernel.
    Nbody,
    /// reduction kernel.
    Reduction,
    /// sparse-matrix-vector-multiplication kernel.
    Spmv,
    /// vector-operation kernel.
    Vecop,
    /// checkSparseLU application.
    SparseLu,
    /// cholesky application.
    Cholesky,
    /// kmeans application.
    Kmeans,
    /// knn application.
    Knn,
    /// blackscholes (PARSEC).
    Blackscholes,
    /// bodytrack (PARSEC).
    Bodytrack,
    /// canneal (PARSEC).
    Canneal,
    /// dedup (PARSEC).
    Dedup,
    /// freqmine (PARSEC).
    Freqmine,
    /// swaptions (PARSEC).
    Swaptions,
    /// An externally ingested trace (the `external` workload family; not
    /// part of Table I, so not in [`Benchmark::ALL`]).
    External(ExternalWorkload),
}

impl Benchmark {
    /// All 19 benchmarks in Table I order.
    pub const ALL: [Benchmark; 19] = [
        Benchmark::Conv2d,
        Benchmark::Stencil3d,
        Benchmark::MonteCarlo,
        Benchmark::Matmul,
        Benchmark::Histogram,
        Benchmark::Nbody,
        Benchmark::Reduction,
        Benchmark::Spmv,
        Benchmark::Vecop,
        Benchmark::SparseLu,
        Benchmark::Cholesky,
        Benchmark::Kmeans,
        Benchmark::Knn,
        Benchmark::Blackscholes,
        Benchmark::Bodytrack,
        Benchmark::Canneal,
        Benchmark::Dedup,
        Benchmark::Freqmine,
        Benchmark::Swaptions,
    ];

    /// The five benchmarks the paper uses for the Fig. 6 sensitivity
    /// analysis ("benchmarks and kernels with an error > 5% for at least
    /// one value of H").
    pub const SENSITIVITY_SET: [Benchmark; 5] = [
        Benchmark::Conv2d,
        Benchmark::Stencil3d,
        Benchmark::MonteCarlo,
        Benchmark::Knn,
        Benchmark::Blackscholes,
    ];

    /// The external workloads (ingested fixture traces), in fixture order.
    pub const EXTERNAL: [Benchmark; 2] = [
        Benchmark::External(ExternalWorkload::DagMini),
        Benchmark::External(ExternalWorkload::PipelineMini),
    ];

    /// Table I metadata (fixture-derived metadata for external workloads).
    pub fn info(self) -> WorkloadInfo {
        match self {
            Benchmark::Conv2d => kernels::conv2d::INFO,
            Benchmark::Stencil3d => kernels::stencil3d::INFO,
            Benchmark::MonteCarlo => kernels::monte_carlo::INFO,
            Benchmark::Matmul => kernels::matmul::INFO,
            Benchmark::Histogram => kernels::histogram::INFO,
            Benchmark::Nbody => kernels::nbody::INFO,
            Benchmark::Reduction => kernels::reduction::INFO,
            Benchmark::Spmv => kernels::spmv::INFO,
            Benchmark::Vecop => kernels::vecop::INFO,
            Benchmark::SparseLu => apps::sparselu::INFO,
            Benchmark::Cholesky => apps::cholesky::INFO,
            Benchmark::Kmeans => apps::kmeans::INFO,
            Benchmark::Knn => apps::knn::INFO,
            Benchmark::Blackscholes => parsec::blackscholes::INFO,
            Benchmark::Bodytrack => parsec::bodytrack::INFO,
            Benchmark::Canneal => parsec::canneal::INFO,
            Benchmark::Dedup => parsec::dedup::INFO,
            Benchmark::Freqmine => parsec::freqmine::INFO,
            Benchmark::Swaptions => parsec::swaptions::INFO,
            Benchmark::External(w) => w.info(),
        }
    }

    /// Generates the benchmark's task program at the given scale.
    ///
    /// External workloads replay a fixed recorded trace, so they ignore
    /// `scale`; their detailed streams additionally require the
    /// `RecordedTraces` bundle of the same trace (see the
    /// [`external`] module docs).
    pub fn generate(self, scale: &ScaleConfig) -> Program {
        match self {
            Benchmark::Conv2d => kernels::conv2d::generate(scale),
            Benchmark::Stencil3d => kernels::stencil3d::generate(scale),
            Benchmark::MonteCarlo => kernels::monte_carlo::generate(scale),
            Benchmark::Matmul => kernels::matmul::generate(scale),
            Benchmark::Histogram => kernels::histogram::generate(scale),
            Benchmark::Nbody => kernels::nbody::generate(scale),
            Benchmark::Reduction => kernels::reduction::generate(scale),
            Benchmark::Spmv => kernels::spmv::generate(scale),
            Benchmark::Vecop => kernels::vecop::generate(scale),
            Benchmark::SparseLu => apps::sparselu::generate(scale),
            Benchmark::Cholesky => apps::cholesky::generate(scale),
            Benchmark::Kmeans => apps::kmeans::generate(scale),
            Benchmark::Knn => apps::knn::generate(scale),
            Benchmark::Blackscholes => parsec::blackscholes::generate(scale),
            Benchmark::Bodytrack => parsec::bodytrack::generate(scale),
            Benchmark::Canneal => parsec::canneal::generate(scale),
            Benchmark::Dedup => parsec::dedup::generate(scale),
            Benchmark::Freqmine => parsec::freqmine::generate(scale),
            Benchmark::Swaptions => parsec::swaptions::generate(scale),
            Benchmark::External(w) => w.generate(),
        }
    }

    /// The paper's benchmark name (the fixture name for external
    /// workloads).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Looks a benchmark up by name, across Table I and the external
    /// family.
    pub fn by_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().chain(Benchmark::EXTERNAL).find(|b| b.name() == name)
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nineteen_benchmarks_with_unique_names() {
        assert_eq!(Benchmark::ALL.len(), 19);
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19);
    }

    #[test]
    fn every_benchmark_matches_its_table1_row() {
        let scale = ScaleConfig::quick();
        for b in Benchmark::ALL {
            let info = b.info();
            let p = b.generate(&scale);
            assert_eq!(p.num_types(), info.task_types, "{b}: types");
            assert_eq!(p.num_instances(), info.task_instances, "{b}: instances");
            assert_eq!(p.name(), info.name, "{b}: name");
        }
    }

    #[test]
    fn table1_instance_totals() {
        let expected: usize = [
            16384, 16370, 16384, 17576, 16384, 25000, 16384, 1024, 16400, 22058, 19600, 16337,
            18400, 24500, 21439, 16384, 15738, 1932, 16384,
        ]
        .iter()
        .sum();
        let total: usize = Benchmark::ALL.iter().map(|b| b.info().task_instances).sum();
        assert_eq!(total, expected);
    }

    #[test]
    fn by_name_round_trips() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
        }
        assert_eq!(Benchmark::by_name("not-a-benchmark"), None);
    }

    #[test]
    fn external_family_is_outside_table1_but_resolvable() {
        assert_eq!(Benchmark::EXTERNAL.len(), 2);
        for b in Benchmark::EXTERNAL {
            assert!(!Benchmark::ALL.contains(&b));
            assert_eq!(Benchmark::by_name(b.name()), Some(b));
            assert_eq!(b.info().class, BenchClass::External);
            let info = b.info();
            // generate() ignores the scale: a recorded trace has one size.
            let p = b.generate(&ScaleConfig::quick());
            let q = b.generate(&ScaleConfig::new());
            assert_eq!(p.num_types(), info.task_types);
            assert_eq!(p.num_instances(), info.task_instances);
            assert_eq!(p.total_instructions(), q.total_instructions());
        }
    }

    #[test]
    fn sensitivity_set_is_subset() {
        for b in Benchmark::SENSITIVITY_SET {
            assert!(Benchmark::ALL.contains(&b));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let scale = ScaleConfig::quick();
        let a = Benchmark::Freqmine.generate(&scale);
        let b = Benchmark::Freqmine.generate(&scale);
        let sa: Vec<u64> = a.instances().iter().map(|i| i.trace().seed()).collect();
        let sb: Vec<u64> = b.instances().iter().map(|i| i.trace().seed()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn every_benchmark_hands_out_working_trace_sources() {
        // The simulator consumes workloads through the batched block
        // pipeline: each instance must hand out a TraceSource whose
        // batched stream matches the per-instruction iterator exactly.
        use taskpoint_trace::InstBlock;
        let scale = ScaleConfig::quick();
        for b in Benchmark::ALL {
            let p = b.generate(&scale);
            let inst = &p.instances()[p.num_instances() / 2];
            let mut source = inst.trace_source();
            let mut block = InstBlock::new();
            let mut batched = Vec::new();
            while source.fill(&mut block) > 0 {
                batched.extend(block.iter());
            }
            assert_eq!(batched.len() as u64, inst.instructions(), "{b}");
            assert!(batched.iter().copied().eq(inst.trace().iter()), "{b}: stream mismatch");
        }
    }
}
