//! Workload scaling.
//!
//! The paper's benchmarks run for tens of simulated hours (Table I). To make
//! full detailed *reference* simulations feasible on one host, all dynamic
//! instruction counts are scaled down by a constant factor (the generators'
//! built-in baselines are roughly 1/1000 of the paper's sizes) while task
//! *instance counts are kept exactly as in Table I* — sampling behaviour
//! depends on the number and relative imbalance of task instances, not on
//! their absolute length, and imbalance ratios are preserved exactly.

use serde::{Deserialize, Serialize};

/// Global knobs every workload generator receives.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleConfig {
    /// Multiplier on every task's baseline instruction count (1.0 = the
    /// crate's default scaled-down sizes).
    pub instr_factor: f64,
    /// Master seed; all per-instance seeds derive from it.
    pub seed: u64,
}

impl ScaleConfig {
    /// The default evaluation scale (baseline sizes, master seed fixed for
    /// reproducibility).
    pub fn new() -> Self {
        Self { instr_factor: 1.0, seed: 0x7A5C_901E }
    }

    /// A much smaller scale for unit tests and smoke benches.
    pub fn quick() -> Self {
        Self { instr_factor: 0.05, ..Self::new() }
    }

    /// Applies the factor to a baseline instruction count (≥ 1 always).
    pub fn instructions(&self, baseline: f64) -> u64 {
        ((baseline * self.instr_factor).round() as u64).max(1)
    }

    /// Derives a reproducible per-instance seed.
    pub fn instance_seed(&self, benchmark: &str, type_idx: u32, instance_idx: u64) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV offset basis
        for b in benchmark.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        taskpoint_stats::rng::mix_seed(&[self.seed, h, type_idx as u64, instance_idx])
    }
}

impl Default for ScaleConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instructions_scale_and_floor() {
        let s = ScaleConfig::new();
        assert_eq!(s.instructions(1500.0), 1500);
        let q = ScaleConfig::quick();
        assert_eq!(q.instructions(1500.0), 75);
        assert_eq!(q.instructions(0.1), 1, "never zero instructions");
    }

    #[test]
    fn instance_seeds_are_unique_and_stable() {
        let s = ScaleConfig::new();
        let a = s.instance_seed("x", 0, 0);
        assert_eq!(a, s.instance_seed("x", 0, 0));
        assert_ne!(a, s.instance_seed("x", 0, 1));
        assert_ne!(a, s.instance_seed("x", 1, 0));
        assert_ne!(a, s.instance_seed("y", 0, 0));
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = ScaleConfig { seed: 1, ..ScaleConfig::new() };
        let b = ScaleConfig { seed: 2, ..ScaleConfig::new() };
        assert_ne!(a.instance_seed("x", 0, 0), b.instance_seed("x", 0, 0));
    }
}
