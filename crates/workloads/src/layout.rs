//! Synthetic address-space layout.
//!
//! Each workload lays its data structures out in a private 64-bit address
//! space. The allocator hands out aligned, non-overlapping regions; the
//! dependence analyzer relies on region identity, so generators allocate
//! each logical tile/block exactly once and reuse the handle.

use taskpoint_trace::MemRegion;

/// Bump allocator for non-overlapping aligned regions.
#[derive(Debug, Clone)]
pub struct AddressAllocator {
    next: u64,
}

impl AddressAllocator {
    /// Starts allocating at a conventional base well above zero.
    pub fn new() -> Self {
        Self { next: 0x1_0000_0000 }
    }

    /// Allocates `len` bytes aligned to `align`.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or `len` is zero.
    pub fn alloc(&mut self, len: u64, align: u64) -> MemRegion {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        assert!(len > 0, "zero-length allocation");
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + len;
        MemRegion::new(base, len)
    }

    /// Allocates a cache-line-aligned region (64 B).
    pub fn alloc_lines(&mut self, len: u64) -> MemRegion {
        self.alloc(len, 64)
    }

    /// Allocates `n` equally sized line-aligned regions.
    pub fn alloc_array(&mut self, n: usize, each: u64) -> Vec<MemRegion> {
        (0..n).map(|_| self.alloc_lines(each)).collect()
    }
}

impl Default for AddressAllocator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_do_not_overlap() {
        let mut a = AddressAllocator::new();
        let regions: Vec<MemRegion> = (0..100).map(|i| a.alloc(100 + i, 64)).collect();
        for (i, r1) in regions.iter().enumerate() {
            for r2 in &regions[i + 1..] {
                assert!(!r1.overlaps(r2), "{r1} overlaps {r2}");
            }
        }
    }

    #[test]
    fn alignment_respected() {
        let mut a = AddressAllocator::new();
        a.alloc(13, 8);
        let r = a.alloc(64, 4096);
        assert_eq!(r.base % 4096, 0);
    }

    #[test]
    fn alloc_array_produces_n_equal_regions() {
        let mut a = AddressAllocator::new();
        let v = a.alloc_array(5, 256);
        assert_eq!(v.len(), 5);
        assert!(v.iter().all(|r| r.len == 256));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_alignment_rejected() {
        AddressAllocator::new().alloc(8, 3);
    }
}
