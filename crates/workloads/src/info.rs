//! Benchmark metadata (the static columns of Table I).

use serde::{Deserialize, Serialize};

/// Which suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchClass {
    /// Synthetic/numeric kernel (top block of Table I).
    Kernel,
    /// HPC application (middle block).
    Application,
    /// Task-based port of a PARSEC benchmark (bottom block).
    Parsec,
    /// Externally ingested trace (not part of Table I; see the
    /// `external` module).
    External,
}

impl std::fmt::Display for BenchClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BenchClass::Kernel => "kernel",
            BenchClass::Application => "application",
            BenchClass::Parsec => "parsec",
            BenchClass::External => "external",
        })
    }
}

/// Static facts about one benchmark, matching its Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadInfo {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// Suite membership.
    pub class: BenchClass,
    /// Number of task types (Table I).
    pub task_types: usize,
    /// Number of task instances (Table I).
    pub task_instances: usize,
    /// The "Properties" column of Table I.
    pub property: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_display() {
        assert_eq!(BenchClass::Kernel.to_string(), "kernel");
        assert_eq!(BenchClass::Application.to_string(), "application");
        assert_eq!(BenchClass::Parsec.to_string(), "parsec");
        assert_eq!(BenchClass::External.to_string(), "external");
    }
}
